"""Shared character kernels for all spectral learners.

``repro.kernels`` is a leaf package: importing it pulls in numpy and
nothing else from ``repro`` (:func:`sign_of_expansion` imports
``BooleanFunction`` lazily), so every learner and the runtime can build
on it without import cycles.  ``repro.kernels.bench`` (the benchmark
cases, which do construct PUFs) is deliberately not imported here.
"""

from repro.kernels.blocking import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_CHARACTER_BLOCK,
    iter_blocks,
)
from repro.kernels.backend import (
    DTYPE_TIERS,
    KernelBackend,
    NumpyBackend,
    get_backend,
    set_backend,
    use_backend,
)
from repro.kernels.fleet import (
    batched_majority_vote,
    br_features,
    fleet_margins,
    linear_features,
    noisy_sign_responses,
    parity_features,
    sign_responses,
    xor_combine,
)
from repro.kernels.fwht import fwht, fwht_inplace, mobius_f2_inplace
from repro.kernels.character import (
    CharacterBasis,
    character_column,
    low_degree_subsets,
    num_low_degree_subsets,
    sign_of_expansion,
)

__all__ = [
    "DTYPE_TIERS",
    "KernelBackend",
    "NumpyBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "batched_majority_vote",
    "br_features",
    "fleet_margins",
    "linear_features",
    "noisy_sign_responses",
    "parity_features",
    "sign_responses",
    "xor_combine",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CHARACTER_BLOCK",
    "iter_blocks",
    "fwht",
    "fwht_inplace",
    "mobius_f2_inplace",
    "CharacterBasis",
    "character_column",
    "low_degree_subsets",
    "num_low_degree_subsets",
    "sign_of_expansion",
]

"""The shared character-kernel layer: spectral hot paths as blocked GEMMs.

Every spectral learner in this repository — LMN, Kushilevitz-Mansour, the
SQ parity probes, ``learn_poly`` — ultimately does one of two things with
the Fourier characters chi_S(x) = prod_{i in S} x_i:

* estimate coefficients  fhat(S) = E[y chi_S(x)]  from a sample, or
* evaluate a hypothesis  sign(sum_S fhat(S) chi_S(x)).

Both are matrix products against the same ``(m, N)`` character matrix
``C`` with ``C[t, j] = chi_{S_j}(x_t)``: coefficient estimation is
``C.T @ y / m`` and hypothesis evaluation is ``C @ coeffs``.  This module
builds ``C`` once, incrementally, and turns both operations into one GEMM
per example block:

* **Incremental construction.**  Columns are ordered so that every subset
  is preceded by its prefix ``S[:-1]``; the degree-k character is then a
  single elementwise multiply of its degree-(k-1) parent column by one
  input column — no ``np.prod`` over gathered columns, no recomputation
  of shared prefixes.  For the full degree-<=d family the lexicographic
  order additionally makes all children of a parent contiguous, so the
  whole level is built with one broadcast multiply per *parent*.
* **Blocking.**  Examples stream through fixed-size blocks (see
  :mod:`repro.kernels.blocking`) so the active character rows stay
  cache-resident; the per-block products are accumulated exactly.

Exactness: characters and +/-1 labels are integer-valued floats, so block
partial sums are exact integers (< 2^53) and the final ``/ m`` is a single
rounding — estimates are **bit-identical** to the historical per-subset
``np.mean(y * np.prod(...))`` loops, regardless of block size.

Subset convention (shared with :mod:`repro.booleanfuncs.fourier`): a
subset is a strictly increasing tuple of 0-based variable indices; the
empty tuple is the constant character.  ``fourier.subset_to_index`` /
``index_to_subset`` convert between this form and Walsh-Hadamard spectrum
indices.  :meth:`CharacterBasis.low_degree` orders columns by degree, then
lexicographically — the same order ``LMNLearner.low_degree_subsets`` has
always produced.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.blocking import DEFAULT_CHARACTER_BLOCK, iter_blocks
from repro.telemetry.spans import trace

Subset = Tuple[int, ...]


def num_low_degree_subsets(n: int, degree: int) -> int:
    """How many subsets of [n] have size <= degree."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    return sum(math.comb(n, i) for i in range(min(degree, n) + 1))


def low_degree_subsets(n: int, degree: int) -> List[Subset]:
    """All subsets of [n] of size <= degree, by degree then lexicographic."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if degree < 0:
        raise ValueError("degree must be non-negative")
    subsets: List[Subset] = []
    for size in range(min(degree, n) + 1):
        subsets.extend(itertools.combinations(range(n), size))
    return subsets


def _normalise_subset(subset: Iterable[int], n: int) -> Subset:
    idx = tuple(sorted({int(i) for i in subset}))
    if idx and (idx[0] < 0 or idx[-1] >= n):
        raise ValueError(f"subset {idx} out of range for n={n}")
    return idx


def character_column(x: np.ndarray, subset: Iterable[int]) -> np.ndarray:
    """chi_S on a batch of +/-1 rows, as float64 (the kernel's column type).

    Equivalent to ``np.prod(x[:, sorted(set(subset))], axis=1)`` but built
    by successive in-place multiplies — no gathered ``(m, |S|)`` copy.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError("character_column expects an (m, n) batch")
    idx = _normalise_subset(subset, x.shape[1])
    out = np.ones(x.shape[0], dtype=np.float64)
    for i in idx:
        out *= x[:, i]
    return out


class CharacterBasis:
    """An ordered family of Fourier characters with a blocked-GEMM engine.

    Construct with :meth:`low_degree` (the full degree-<=d family, the LMN
    case) or :meth:`from_subsets` (an arbitrary collection, the KM case —
    missing prefixes are added internally so construction stays
    incremental, but only the requested subsets appear in results).

    The instance caches one ``(columns, block_size)`` float64 work buffer
    across calls; instances are cheap but not thread-safe.  All inputs are
    +/-1 challenge rows; labels may be any real values, though the
    bit-identity guarantee versus per-subset loops assumes integer-valued
    labels (the +/-1 responses every consumer passes).
    """

    def __init__(self, n: int, subsets: Sequence[Iterable[int]]) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        requested = [_normalise_subset(s, n) for s in subsets]
        if len(set(requested)) != len(requested):
            raise ValueError("duplicate subsets in character basis")
        self.n = n
        self.subsets: Tuple[Subset, ...] = tuple(requested)
        closure = set(requested)
        closure.add(())
        for s in requested:
            for cut in range(1, len(s)):
                closure.add(s[:cut])
        self._columns: List[Subset] = sorted(closure, key=lambda s: (len(s), s))
        index = {s: j for j, s in enumerate(self._columns)}
        self._pairs: List[Tuple[int, int, int]] = [
            (j, index[s[:-1]], s[-1])
            for j, s in enumerate(self._columns)
            if s
        ]
        if tuple(self._columns) == tuple(self.subsets):
            self._select: Optional[np.ndarray] = None
        else:
            self._select = np.array([index[s] for s in self.subsets], dtype=np.intp)
        # Grouped schedule: one broadcast multiply per parent, usable when
        # every parent's children (all extensions by a larger variable) are
        # present and contiguous — true for the full low-degree family.
        self._grouped = self._build_grouped_schedule(index)
        self._buf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def low_degree(
        cls, n: int, degree: int, max_coefficients: Optional[int] = None
    ) -> "CharacterBasis":
        """The full degree-<=``degree`` family, in LMN column order."""
        count = num_low_degree_subsets(n, degree)
        if max_coefficients is not None and count > max_coefficients:
            raise ValueError(
                f"degree {degree} over n={n} variables needs {count} "
                f"character columns (> cap {max_coefficients})"
            )
        return cls(n, low_degree_subsets(n, degree))

    @classmethod
    def from_subsets(cls, n: int, subsets: Sequence[Iterable[int]]) -> "CharacterBasis":
        """A basis over an explicit subset collection (order preserved)."""
        return cls(n, subsets)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.subsets)

    @property
    def num_internal_columns(self) -> int:
        """Columns actually constructed (requested plus closure prefixes)."""
        return len(self._columns)

    def _build_grouped_schedule(
        self, index: Dict[Subset, int]
    ) -> Optional[List[Tuple[int, int, int, int]]]:
        covered = 0
        schedule: List[Tuple[int, int, int, int]] = []
        for j, s in enumerate(self._columns):
            top = s[-1] if s else -1
            if top >= self.n - 1:
                continue
            kids = [index.get(s + (v,)) for v in range(top + 1, self.n)]
            if all(k is None for k in kids):
                continue  # a leaf (e.g. a maximal-degree subset)
            if any(k is None for k in kids):
                return None
            if kids != list(range(kids[0], kids[0] + len(kids))):
                return None
            schedule.append((j, kids[0], kids[0] + len(kids), top + 1))
            covered += len(kids)
        if covered != len(self._columns) - 1:
            return None
        return schedule

    def _buffer(self, width: int) -> np.ndarray:
        if self._buf is None or self._buf.shape[1] < width:
            self._buf = np.empty((len(self._columns), width))
        return self._buf

    def _fill(self, c: np.ndarray, xb: np.ndarray) -> None:
        """Fill ``c`` (columns x width) with characters of the block ``xb``.

        ``xb`` is the transposed (n, width) view of the example block; row
        ``j`` of ``c`` becomes chi of internal column ``j``, each computed
        as one elementwise multiply of its parent row.
        """
        c[0] = 1.0
        if self._grouped is not None:
            for parent, lo, hi, first_var in self._grouped:
                np.multiply(xb[first_var : first_var + (hi - lo)], c[parent], out=c[lo:hi])
        else:
            for j, parent, var in self._pairs:
                np.multiply(c[parent], xb[var], out=c[j])

    def _validated(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != self.n:
            raise ValueError(f"x must be (m, {self.n}), got shape {x.shape}")
        return x

    # ------------------------------------------------------------------
    def character_matrix(self, x: np.ndarray) -> np.ndarray:
        """The dense ``(m, N)`` character matrix (small inputs / testing).

        Column ``j`` is chi of ``self.subsets[j]``.  The streaming methods
        below never materialise this full matrix; prefer them for large m.
        """
        x = self._validated(x)
        xt = np.ascontiguousarray(x.T, dtype=np.float64)
        c = np.empty((len(self._columns), x.shape[0]))
        self._fill(c, xt)
        if self._select is not None:
            c = c[self._select]
        return np.ascontiguousarray(c.T)

    def estimate_coefficients(
        self,
        x: np.ndarray,
        y: np.ndarray,
        block_size: int = DEFAULT_CHARACTER_BLOCK,
    ) -> np.ndarray:
        """All coefficient estimates ``E_hat[y chi_S]`` in one GEMM per block.

        Returns a float64 vector aligned with ``self.subsets``.  For +/-1
        labels the result is bit-identical to the per-subset
        ``np.mean(y * chi_S(x))`` loop for every ``block_size``.
        """
        x = self._validated(x)
        m = x.shape[0]
        y = np.asarray(y)
        if y.shape != (m,):
            raise ValueError(f"y must have shape ({m},), got {y.shape}")
        if m == 0:
            raise ValueError("need at least one example")
        # Traced at call granularity (one span per GEMM sweep, not per
        # block) so the instrumented hot loop stays allocation-free.
        with trace(
            "kernel.estimate_coefficients", rows=m, columns=len(self._columns)
        ):
            xt = np.ascontiguousarray(x.T, dtype=np.float64)
            yf = np.asarray(y, dtype=np.float64)
            acc = np.zeros(len(self._columns))
            buf = self._buffer(min(block_size, m))
            for start, stop in iter_blocks(m, block_size):
                c = buf[:, : stop - start]
                self._fill(c, xt[:, start:stop])
                acc += c @ yf[start:stop]
            estimates = acc / m
        if self._select is not None:
            estimates = estimates[self._select]
        return estimates

    def evaluate_expansion(
        self,
        x: np.ndarray,
        coeffs: np.ndarray,
        block_size: int = DEFAULT_CHARACTER_BLOCK,
    ) -> np.ndarray:
        """``sum_S coeffs[S] chi_S(x)`` for every row, one GEMM per block."""
        x = self._validated(x)
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape != (len(self.subsets),):
            raise ValueError(
                f"coeffs must have shape ({len(self.subsets)},), got {coeffs.shape}"
            )
        if self._select is None:
            full = coeffs
        else:
            full = np.zeros(len(self._columns))
            full[self._select] = coeffs
        m = x.shape[0]
        with trace(
            "kernel.evaluate_expansion", rows=m, columns=len(self._columns)
        ):
            xt = np.ascontiguousarray(x.T, dtype=np.float64)
            out = np.empty(m)
            buf = self._buffer(min(block_size, m) if m else block_size)
            for start, stop in iter_blocks(m, block_size):
                c = buf[:, : stop - start]
                self._fill(c, xt[:, start:stop])
                out[start:stop] = full @ c
        return out

    def predict_sign(
        self,
        x: np.ndarray,
        coeffs: np.ndarray,
        block_size: int = DEFAULT_CHARACTER_BLOCK,
    ) -> np.ndarray:
        """sign of the expansion as int8 +/-1 (ties at 0 map to +1)."""
        values = self.evaluate_expansion(x, coeffs, block_size=block_size)
        return np.where(values >= 0, 1, -1).astype(np.int8)


def sign_of_expansion(
    n: int,
    spectrum: Dict[Subset, float],
    name: str = "sign_of_expansion",
    block_size: int = DEFAULT_CHARACTER_BLOCK,
) -> "BooleanFunction":  # noqa: F821 - forward ref, imported lazily
    """sign(sum_S fhat(S) chi_S(x)) as a BooleanFunction (ties -> +1).

    The single kernel-backed implementation behind
    ``fourier.sign_of_expansion``, the LMN hypothesis, and the KM
    hypothesis.  Subset keys may be any iterables of variable indices.
    """
    from repro.booleanfuncs.function import BooleanFunction

    items = sorted(
        (_normalise_subset(s, n), float(v)) for s, v in spectrum.items()
    )
    basis = CharacterBasis.from_subsets(n, [s for s, _ in items])
    coeffs = np.array([v for _, v in items], dtype=np.float64)

    def evaluate(x: np.ndarray) -> np.ndarray:
        return basis.predict_sign(x, coeffs, block_size=block_size)

    return BooleanFunction(n, evaluate, name=name)

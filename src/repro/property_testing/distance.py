"""Empirical distance from a target function to the class of halfspaces.

The tester (:mod:`repro.property_testing.halfspace_tester`) gives a
one-sided farness certificate; the estimators here attack the distance
from the other side by *searching* for a good halfspace:

* :func:`best_ltf_agreement` — fit LTFs with several learners and report
  the best test agreement; 1 - agreement upper-bounds the distance.
* :func:`exact_min_distance_small_n` — brute-force over the Chow-optimal
  halfspace for tiny n (exact Fourier route).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF, chow_parameters_exact, ltf_from_chow_parameters
from repro.learning.chow import ChowLearner
from repro.learning.logistic import LogisticAttack
from repro.learning.perceptron import Perceptron
from repro.pufs.crp import CRPSet

Hypothesis = Callable[[np.ndarray], np.ndarray]


def best_ltf_agreement(
    train: CRPSet,
    test: CRPSet,
    rng: Optional[np.random.Generator] = None,
    perceptron_epochs: int = 40,
) -> Tuple[float, str]:
    """Best test-set agreement achieved by LTF learners on the CRPs.

    Runs the Perceptron (plain and averaged), logistic regression, and the
    Chow-parameter learner; returns (best agreement, learner name).
    ``1 - agreement`` is an empirical upper bound on the distance from the
    target to the nearest halfspace.
    """
    rng = np.random.default_rng() if rng is None else rng
    candidates: List[Tuple[str, Hypothesis]] = []

    plain = Perceptron(max_epochs=perceptron_epochs).fit(
        train.challenges, train.responses, rng
    )
    candidates.append(("perceptron", plain.predict))
    averaged = Perceptron(max_epochs=perceptron_epochs, averaged=True).fit(
        train.challenges, train.responses, rng
    )
    candidates.append(("averaged_perceptron", averaged.predict))
    logistic = LogisticAttack().fit(train.challenges, train.responses, rng)
    candidates.append(("logistic", logistic.predict))
    chow = ChowLearner(correction_rounds=6, estimation_sample=5000).fit(train, rng)
    candidates.append(("chow", chow.predict))

    best_name, best_acc = "", -1.0
    for name, predict in candidates:
        acc = float(np.mean(predict(test.challenges) == test.responses))
        if acc > best_acc:
            best_name, best_acc = name, acc
    return best_acc, best_name


def empirical_min_distance(
    train: CRPSet,
    test: CRPSet,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """1 - best LTF agreement: an upper bound on dist(f, halfspaces)."""
    acc, _ = best_ltf_agreement(train, test, rng)
    return 1.0 - acc


def exact_min_distance_small_n(
    f: BooleanFunction,
    extra_candidates: Sequence[LTF] = (),
    random_candidates: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Distance from ``f`` to the nearest halfspace among strong candidates.

    Exact minimisation over all halfspaces is intractable, but for small n
    the Chow-optimal LTF is provably the best *linear* sign approximator in
    a broad regime; we evaluate it exactly, plus random perturbations of it
    and any supplied candidates, and return the minimum exact distance.
    The result is an upper bound on the true minimum that is tight for
    near-regular targets.
    """
    rng = np.random.default_rng() if rng is None else rng
    chow = chow_parameters_exact(f)
    candidates: List[LTF] = [ltf_from_chow_parameters(chow)]
    candidates.extend(extra_candidates)
    base = chow[1:]
    norm = float(np.linalg.norm(base)) or 1.0
    for _ in range(random_candidates):
        weights = base + rng.normal(0.0, 0.3 * norm / max(1, f.n) ** 0.5, size=f.n)
        threshold = -chow[0] + rng.normal(0.0, 0.1)
        candidates.append(LTF(weights, threshold))
    return min(f.distance(c) for c in candidates)

"""The Matulef-O'Donnell-Rubinfeld-Servedio (MORS) halfspace tester [28].

The tester rests on a Fourier characterisation: a +/-1 function f that *is*
a (regular) halfspace with bias nu = E[f] has degree-1 Fourier weight

    W1[f] = sum_i fhat(i)^2  ~=  W(nu) := 4 phi(Phi^{-1}((1 - nu)/2))^2,

where phi/Phi are the standard normal pdf/cdf (for the majority-like case
nu = 0 this is the familiar 2/pi).  A function that is eps-far from every
halfspace must show a gap between its measured W1 and W(nu).  The tester
therefore estimates nu and W1 from uniformly chosen examples and rejects
when the gap exceeds a threshold.

W1 is estimated without enumerating coordinates via the pair U-statistic

    E_{x,y}[f(x) f(y) (x . y)] = sum_i fhat(i)^2,

which needs only uniformly chosen labelled examples — exactly the
"poly(1/eps) uniformly chosen examples - noiseless CRPs in our case" the
paper feeds its MATLAB implementation.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np
from scipy import stats

from repro.pufs.crp import CRPSet


def expected_degree1_weight(nu: float) -> float:
    """W(nu): the degree-1 Fourier weight of a regular halfspace with bias nu."""
    if not -1.0 <= nu <= 1.0:
        raise ValueError(f"bias must be in [-1, 1], got {nu}")
    if abs(nu) >= 1.0:
        return 0.0
    theta = stats.norm.ppf((1.0 - nu) / 2.0)
    return float(4.0 * stats.norm.pdf(theta) ** 2)


def degree1_weight_ustat(
    challenges: np.ndarray, responses: np.ndarray, rng: Optional[np.random.Generator] = None
) -> float:
    """Estimate W1[f] = sum_i fhat(i)^2 from labelled examples.

    Splits the sample into disjoint pairs (x, y) and averages
    f(x) f(y) (x . y); with m examples this gives m/2 i.i.d. terms.
    """
    challenges = np.asarray(challenges, dtype=np.float64)
    responses = np.asarray(responses, dtype=np.float64)
    m = challenges.shape[0]
    if m < 2:
        raise ValueError("need at least two examples for the pair statistic")
    rng = np.random.default_rng() if rng is None else rng
    order = rng.permutation(m)
    half = m // 2
    xa, xb = challenges[order[:half]], challenges[order[half : 2 * half]]
    ya, yb = responses[order[:half]], responses[order[half : 2 * half]]
    terms = ya * yb * np.sum(xa * xb, axis=1)
    return float(np.mean(terms))


def degree1_weight_coordinate(
    challenges: np.ndarray, responses: np.ndarray
) -> float:
    """Estimate W1[f] coordinate-wise with bias correction.

    Each fhat(i) is estimated as mean(y x_i); squaring adds a 1/m bias per
    coordinate, so n/m is subtracted.  Far lower variance than the pair
    U-statistic when m is small relative to n — this matches the paper's
    n=16 / 100-CRP Table III row being informative at all.
    """
    challenges = np.asarray(challenges, dtype=np.float64)
    responses = np.asarray(responses, dtype=np.float64)
    m, n = challenges.shape
    if m < 2:
        raise ValueError("need at least two examples")
    coeffs = (challenges * responses[:, None]).mean(axis=0)
    return float(np.sum(coeffs**2) - n / m)


@dataclasses.dataclass
class HalfspaceTestResult:
    """Outcome of one MORS test."""

    accepted: bool  # True: consistent with being a halfspace
    bias: float  # estimated E[f]
    degree1_weight: float  # estimated W1
    expected_weight: float  # W(nu) for a true halfspace of that bias
    gap: float  # expected_weight - degree1_weight (positive = missing weight)
    threshold: float  # rejection threshold used
    farness_estimate: float  # crude lower-bound estimate of dist(f, halfspaces)
    examples_used: int

    def summary(self) -> str:
        verdict = "halfspace-consistent" if self.accepted else "far from halfspaces"
        return (
            f"{verdict}: W1={self.degree1_weight:.3f} vs W(nu)={self.expected_weight:.3f} "
            f"(gap {self.gap:+.3f}, threshold {self.threshold:.3f}), "
            f"farness >= {self.farness_estimate:.0%}"
        )


class HalfspaceTester:
    """MORS-style tester over uniformly chosen labelled examples.

    Parameters
    ----------
    eps:
        Farness parameter: the tester distinguishes halfspaces from
        functions eps-far from every halfspace.
    delta:
        Confidence; the rejection threshold includes a
        sqrt(ln(1/delta)/m)-scale sampling slack (the n-dependent variance
        of the pair statistic is accounted for with the observed sample
        standard deviation).
    """

    def __init__(self, eps: float = 0.05, delta: float = 0.01) -> None:
        if not 0 < eps < 1 or not 0 < delta < 1:
            raise ValueError("eps and delta must be in (0, 1)")
        self.eps = eps
        self.delta = delta

    def test_crps(
        self, crps: CRPSet, rng: Optional[np.random.Generator] = None
    ) -> HalfspaceTestResult:
        """Run the tester on a set of uniformly collected CRPs."""
        if len(crps) < 4:
            raise ValueError("need at least four CRPs")
        rng = np.random.default_rng() if rng is None else rng
        challenges = crps.challenges.astype(np.float64)
        responses = crps.responses.astype(np.float64)
        m, n = challenges.shape

        nu = float(np.mean(responses))
        w1 = degree1_weight_coordinate(challenges, responses)
        expected = expected_degree1_weight(np.clip(nu, -0.999999, 0.999999))
        gap = expected - w1

        # Sampling slack of the coordinate estimator: each fhat(i) estimate
        # carries 1/m variance; the bias-corrected sum of squares has
        # variance ~ 4 W1 / m + 2 n / m^2.
        z = math.sqrt(2.0 * math.log(2.0 / self.delta))
        slack = z * math.sqrt(
            4.0 * max(w1, 0.02) / m + 2.0 * n / (m * m)
        )

        # An eps-far function is missing Omega(eps) degree-1 weight relative
        # to the halfspace value (MORS Theorem 1 regime); we use eps/2 as
        # the detection margin.  Rejection is one-sided: only *deficient*
        # degree-1 weight indicates farness (excess W1 means the function
        # is close to a dictator-like LTF — FKN theorem), so irregular but
        # genuine halfspaces are not rejected.
        threshold = self.eps / 2.0 + slack
        accepted = gap <= threshold

        # Crude farness estimate: fraction of missing weight, halved (each
        # disagreement point moves W1 by at most 4/m-scale contributions).
        rel_missing = max(0.0, gap - slack) / max(expected, 1e-12)
        farness = min(0.5, 0.5 * rel_missing)
        return HalfspaceTestResult(
            accepted=accepted,
            bias=nu,
            degree1_weight=w1,
            expected_weight=expected,
            gap=gap,
            threshold=threshold,
            farness_estimate=farness,
            examples_used=len(crps),
        )

    def test_function(
        self,
        n: int,
        target,
        m: int,
        rng: Optional[np.random.Generator] = None,
    ) -> HalfspaceTestResult:
        """Draw ``m`` uniform examples of ``target`` and run the tester."""
        if m < 4:
            raise ValueError("need at least four examples")
        rng = np.random.default_rng() if rng is None else rng
        x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
        y = np.asarray(target(x), dtype=np.int8)
        return self.test_crps(CRPSet(x, y), rng)

"""Property testing: is the device's response function close to a halfspace?

Implements the Matulef-O'Donnell-Rubinfeld-Servedio halfspace tester [28]
used in the paper's Table III experiment, plus empirical distance
estimators used to cross-check its verdicts.
"""

from repro.property_testing.halfspace_tester import (
    HalfspaceTester,
    HalfspaceTestResult,
    degree1_weight_ustat,
    expected_degree1_weight,
)
from repro.property_testing.halfspace_tester import degree1_weight_coordinate
from repro.property_testing.junta_tester import JuntaTester, JuntaTestResult
from repro.property_testing.distance import (
    best_ltf_agreement,
    empirical_min_distance,
    exact_min_distance_small_n,
)

__all__ = [
    "HalfspaceTester",
    "HalfspaceTestResult",
    "degree1_weight_ustat",
    "expected_degree1_weight",
    "degree1_weight_coordinate",
    "JuntaTester",
    "JuntaTestResult",
    "best_ltf_agreement",
    "empirical_min_distance",
    "exact_min_distance_small_n",
]

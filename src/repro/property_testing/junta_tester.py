"""Testing juntas: does f depend on at most k coordinates?

The companion to the halfspace tester on the representation axis, and the
property behind Corollary 2's first step (every LTF is close to an
O(eps^{-3/2})-junta, Bourgain [23]).  The tester estimates each
coordinate's influence by pair sampling, takes the k most influential
coordinates as the candidate junta, and measures the *residual* influence
outside it: a true k-junta has residual 0, while a function eps-far from
every k-junta has residual Omega(eps) (flipping off-junta coordinates
changes the value with noticeable probability).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Tuple

import numpy as np

Target = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class JuntaTestResult:
    """Outcome of a junta test."""

    accepted: bool
    k: int
    candidate_coordinates: List[int]
    residual_influence: float  # Pr[f changes] when off-candidate bits resample
    threshold: float
    queries_used: int

    def summary(self) -> str:
        verdict = f"consistent with a {self.k}-junta" if self.accepted else (
            f"far from every {self.k}-junta"
        )
        return (
            f"{verdict}: candidate {self.candidate_coordinates}, residual "
            f"influence {self.residual_influence:.4f} "
            f"(threshold {self.threshold:.4f})"
        )


class JuntaTester:
    """Influence-based k-junta tester over membership queries.

    Parameters
    ----------
    k:
        Junta size under test.
    eps:
        Farness parameter.
    delta:
        Confidence.
    influence_samples:
        Pairs per single-coordinate influence estimate.
    residual_samples:
        Pairs for the residual-influence estimate.
    """

    def __init__(
        self,
        k: int,
        eps: float = 0.05,
        delta: float = 0.05,
        influence_samples: int = 2048,
        residual_samples: int = 8192,
    ) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        if not 0 < eps < 1 or not 0 < delta < 1:
            raise ValueError("eps and delta must be in (0, 1)")
        if influence_samples < 1 or residual_samples < 1:
            raise ValueError("sample counts must be positive")
        self.k = k
        self.eps = eps
        self.delta = delta
        self.influence_samples = influence_samples
        self.residual_samples = residual_samples

    def test(
        self,
        n: int,
        target: Target,
        rng: Optional[np.random.Generator] = None,
    ) -> JuntaTestResult:
        """Run the tester against a +/-1 membership oracle of arity n."""
        if self.k >= n:
            raise ValueError("k must be smaller than the arity n")
        rng = np.random.default_rng() if rng is None else rng
        queries = 0

        # Estimate each coordinate's influence.
        influences = np.zeros(n)
        m = self.influence_samples
        for i in range(n):
            x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
            x_flip = x.copy()
            x_flip[:, i] = -x_flip[:, i]
            influences[i] = float(np.mean(target(x) != target(x_flip)))
            queries += 2 * m

        candidate = sorted(np.argsort(influences)[::-1][: self.k].tolist())

        # Residual influence: resample all off-candidate coordinates at once.
        mask = np.ones(n, dtype=bool)
        mask[candidate] = False
        mr = self.residual_samples
        x = (1 - 2 * rng.integers(0, 2, size=(mr, n))).astype(np.int8)
        y = x.copy()
        resampled = (1 - 2 * rng.integers(0, 2, size=(mr, int(mask.sum())))).astype(
            np.int8
        )
        y[:, mask] = resampled
        residual = float(np.mean(target(x) != target(y)))
        queries += 2 * mr

        slack = math.sqrt(math.log(2.0 / self.delta) / (2.0 * mr))
        threshold = self.eps / 4.0 + slack
        return JuntaTestResult(
            accepted=residual <= threshold,
            k=self.k,
            candidate_coordinates=[int(c) for c in candidate],
            residual_influence=residual,
            threshold=threshold,
            queries_used=queries,
        )

"""Statistical conformance: calibrated oracles, differential and
metamorphic relations, and a family-wise error budget.

The test suite's stochastic assertions all flow through this package so
that every tolerance is an explicit false-failure probability and the
whole suite's flake rate is a documented bound (``<= 1e-6`` per run; see
``docs/TESTING.md``).  Three layers:

* :mod:`~repro.conformance.oracles` — Hoeffding / Clopper-Pearson
  interval checks and the Bonferroni :class:`ErrorBudget`;
* :mod:`~repro.conformance.differential` and
  :mod:`~repro.conformance.relations` — the differential harnesses
  (optimised paths vs :mod:`repro.kernels.reference`) and metamorphic
  relations, run by :func:`~repro.conformance.suite.run_suite` behind
  ``python -m repro conformance``;
* :mod:`~repro.conformance.pytest_plugin` — the ``@statistical_test``
  marker, ``stat`` fixture, and seed-capture failure sections for the
  pytest tier.
"""

from repro.conformance.differential import differential_relations
from repro.conformance.oracles import (
    BudgetConflict,
    BudgetExceeded,
    CheckResult,
    ErrorBudget,
    binomial_pvalue,
    check_at_least,
    check_at_most,
    check_bernoulli,
    check_two_sample_equal,
    check_two_sample_less,
    check_within,
    clopper_pearson_interval,
    hoeffding_halfwidth,
    hoeffding_interval,
    holm_rejections,
)
from repro.conformance.relations import (
    ConformanceViolation,
    Relation,
    RelationContext,
    RelationReport,
    metamorphic_relations,
)
from repro.conformance.seeds import (
    SeedRegistry,
    format_seed,
    note_seed,
    reproduction_line,
    seed_identity,
)
from repro.conformance.suite import (
    DEFAULT_FAMILY_ALPHA,
    SuiteReport,
    all_relations,
    relation_seed,
    run_suite,
)

__all__ = [
    "BudgetConflict",
    "BudgetExceeded",
    "CheckResult",
    "ConformanceViolation",
    "DEFAULT_FAMILY_ALPHA",
    "ErrorBudget",
    "Relation",
    "RelationContext",
    "RelationReport",
    "SeedRegistry",
    "SuiteReport",
    "all_relations",
    "binomial_pvalue",
    "check_at_least",
    "check_at_most",
    "check_bernoulli",
    "check_two_sample_equal",
    "check_two_sample_less",
    "check_within",
    "clopper_pearson_interval",
    "differential_relations",
    "format_seed",
    "hoeffding_halfwidth",
    "hoeffding_interval",
    "holm_rejections",
    "metamorphic_relations",
    "note_seed",
    "relation_seed",
    "reproduction_line",
    "run_suite",
    "seed_identity",
]

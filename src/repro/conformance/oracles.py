"""Statistical oracles with explicit, accountable error probabilities.

Every stochastic contract in this codebase — "the oracle flips labels at
rate p", "uniform challenges are fair coins", "noise makes flip rates
*rise*" — used to be asserted with a hand-tuned tolerance (a 4-sigma
band, a magic ``< 0.02``).  Each such tolerance hides an unquantified
false-failure probability, and the probabilities compound across the
suite.  This module replaces them with interval checks whose
false-failure probability is an explicit ``alpha`` argument, plus an
:class:`ErrorBudget` that allocates a *family-wise* alpha across a whole
test tier (Bonferroni), so the suite's total flake probability is a
documented number (``<= 1e-6`` per CI run; derivation in
``docs/TESTING.md``) instead of folklore.

Two interval constructions are offered:

* **Hoeffding** — distribution-free half-width ``sqrt(ln(2/alpha)/2m)``.
  Conservative but closed-form; used for two-sample comparisons where
  the exact construction has no clean analogue.
* **Clopper-Pearson** — the exact binomial interval via Beta quantiles.
  Tighter for small m or extreme p; the default for one-sample checks.

Check semantics (all guarantee false-failure probability ``<= alpha``
*when the claimed property is true*):

* :func:`check_bernoulli` — the true rate *is* ``p``: fail iff ``p``
  falls outside the confidence interval.
* :func:`check_within` / ``check_at_most`` / ``check_at_least`` — the
  true rate lies in ``[lo, hi]``: fail iff the interval and the claimed
  band are disjoint.
* :func:`check_two_sample_equal` / :func:`check_two_sample_less` —
  two independent Bernoulli samples have equal (resp. ordered) rates:
  fail iff the Hoeffding intervals separate the wrong way.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple


class BudgetExceeded(RuntimeError):
    """Registering a check would push the family-wise alpha past its cap."""


class BudgetConflict(RuntimeError):
    """A check name was re-registered with a *different* alpha.

    Re-registration with the same alpha is legal and idempotent — that is
    exactly what happens when a failed run is resumed or a test is
    retried — but silently changing a registered alpha would invalidate
    the family-wise accounting, so it fails loudly.
    """


# ----------------------------------------------------------------------
# Interval constructions
# ----------------------------------------------------------------------
def hoeffding_halfwidth(trials: int, alpha: float) -> float:
    """Two-sided Hoeffding half-width: ``sqrt(ln(2/alpha) / (2 m))``.

    ``P(|p_hat - p| >= t) <= 2 exp(-2 m t^2) = alpha`` solved for t.
    """
    _check_alpha(alpha)
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    return math.sqrt(math.log(2.0 / alpha) / (2.0 * trials))


def hoeffding_interval(
    successes: int, trials: int, alpha: float
) -> Tuple[float, float]:
    """Two-sided Hoeffding confidence interval for a Bernoulli rate."""
    p_hat = _check_counts(successes, trials)
    t = hoeffding_halfwidth(trials, alpha)
    return (max(0.0, p_hat - t), min(1.0, p_hat + t))


def clopper_pearson_interval(
    successes: int, trials: int, alpha: float
) -> Tuple[float, float]:
    """Exact (Clopper-Pearson) two-sided binomial confidence interval.

    Endpoints are Beta quantiles: ``lo = Beta(alpha/2; k, m-k+1)`` and
    ``hi = Beta(1-alpha/2; k+1, m-k)``, with the conventional closed ends
    at k=0 and k=m.  Coverage is *at least* ``1 - alpha`` for every true
    p — the construction is conservative, never anti-conservative.
    """
    _check_counts(successes, trials)
    _check_alpha(alpha)
    from scipy import stats

    k, m = successes, trials
    lo = 0.0 if k == 0 else float(stats.beta.ppf(alpha / 2.0, k, m - k + 1))
    hi = 1.0 if k == m else float(stats.beta.ppf(1.0 - alpha / 2.0, k + 1, m - k))
    return (lo, hi)


def binomial_pvalue(successes: int, trials: int, p: float) -> float:
    """Exact two-sided binomial p-value for H0: rate == p."""
    _check_counts(successes, trials)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    from scipy import stats

    return float(stats.binomtest(successes, trials, p).pvalue)


# ----------------------------------------------------------------------
# Check results
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CheckResult:
    """Outcome of one statistical check, with its full audit trail."""

    name: str  #: what was checked (shown in failure messages and reports)
    passed: bool  #: True unless the data refutes the claimed property
    alpha: float  #: the check's false-failure probability when the claim holds
    method: str  #: interval construction ("clopper-pearson" / "hoeffding")
    claim: str  #: the stochastic contract being asserted, human-readable
    estimate: float  #: the observed rate (or rate difference)
    interval: Tuple[float, float]  #: the confidence interval used
    successes: int = 0  #: observed success count
    trials: int = 0  #: sample size
    p_value: Optional[float] = None  #: exact p-value where computable

    def message(self) -> str:
        """One-line verdict suitable for an assertion message."""
        lo, hi = self.interval
        verdict = "ok" if self.passed else "VIOLATED"
        return (
            f"[{verdict}] {self.name}: {self.claim}; observed "
            f"{self.successes}/{self.trials} = {self.estimate:.5f}, "
            f"{self.method} CI({self.alpha:.2e}) = [{lo:.5f}, {hi:.5f}]"
            + (f", p-value {self.p_value:.3e}" if self.p_value is not None else "")
        )

    def require(self) -> "CheckResult":
        """Raise ``AssertionError`` with the audit trail unless passed."""
        if not self.passed:
            raise AssertionError(self.message())
        return self

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form for ledger records."""
        payload = dataclasses.asdict(self)
        payload["interval"] = list(self.interval)
        return payload


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")


def _check_counts(successes: int, trials: int) -> float:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    return successes / trials


def _interval(
    successes: int, trials: int, alpha: float, method: str
) -> Tuple[float, float]:
    if method == "clopper-pearson":
        return clopper_pearson_interval(successes, trials, alpha)
    if method == "hoeffding":
        return hoeffding_interval(successes, trials, alpha)
    raise ValueError(f"unknown interval method {method!r}")


# ----------------------------------------------------------------------
# One-sample checks
# ----------------------------------------------------------------------
def check_bernoulli(
    successes: int,
    trials: int,
    p: float,
    alpha: float,
    name: str = "bernoulli",
    method: str = "clopper-pearson",
) -> CheckResult:
    """Check that the true success rate is exactly ``p``.

    Fails iff ``p`` lies outside the two-sided confidence interval, so
    when the rate really is ``p`` the failure probability is ``<= alpha``
    (exactly the interval's non-coverage probability).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    lo, hi = _interval(successes, trials, alpha, method)
    return CheckResult(
        name=name,
        passed=lo <= p <= hi,
        alpha=alpha,
        method=method,
        claim=f"true rate == {p:g}",
        estimate=successes / trials,
        interval=(lo, hi),
        successes=successes,
        trials=trials,
        p_value=binomial_pvalue(successes, trials, p),
    )


def check_within(
    successes: int,
    trials: int,
    lo_bound: float,
    hi_bound: float,
    alpha: float,
    name: str = "within",
    method: str = "clopper-pearson",
) -> CheckResult:
    """Check that the true rate lies in ``[lo_bound, hi_bound]``.

    Fails iff the confidence interval is disjoint from the claimed band;
    when the true rate is inside the band, the interval covers it with
    probability ``>= 1 - alpha`` and therefore intersects the band, so
    false failures have probability ``<= alpha``.
    """
    if not 0.0 <= lo_bound <= hi_bound <= 1.0:
        raise ValueError(f"need 0 <= lo <= hi <= 1, got [{lo_bound}, {hi_bound}]")
    lo, hi = _interval(successes, trials, alpha, method)
    return CheckResult(
        name=name,
        passed=not (hi < lo_bound or lo > hi_bound),
        alpha=alpha,
        method=method,
        claim=f"true rate in [{lo_bound:g}, {hi_bound:g}]",
        estimate=successes / trials,
        interval=(lo, hi),
        successes=successes,
        trials=trials,
    )


def check_at_most(
    successes: int,
    trials: int,
    bound: float,
    alpha: float,
    name: str = "at_most",
    method: str = "clopper-pearson",
) -> CheckResult:
    """Check that the true rate is ``<= bound`` (one-sided band)."""
    return dataclasses.replace(
        check_within(successes, trials, 0.0, bound, alpha, name, method),
        claim=f"true rate <= {bound:g}",
    )


def check_at_least(
    successes: int,
    trials: int,
    bound: float,
    alpha: float,
    name: str = "at_least",
    method: str = "clopper-pearson",
) -> CheckResult:
    """Check that the true rate is ``>= bound`` (one-sided band)."""
    return dataclasses.replace(
        check_within(successes, trials, bound, 1.0, alpha, name, method),
        claim=f"true rate >= {bound:g}",
    )


# ----------------------------------------------------------------------
# Two-sample checks (Hoeffding; distribution-free)
# ----------------------------------------------------------------------
def check_two_sample_equal(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    alpha: float,
    name: str = "two_sample_equal",
) -> CheckResult:
    """Check that two independent Bernoulli samples share one true rate.

    Splits alpha across the two samples (alpha/2 each); with probability
    ``>= 1 - alpha`` both empirical rates are within their Hoeffding
    half-widths of the (common) truth, so the check — fail iff
    ``|p_hat_a - p_hat_b|`` exceeds the summed half-widths — has
    false-failure probability ``<= alpha``.
    """
    pa = _check_counts(successes_a, trials_a)
    pb = _check_counts(successes_b, trials_b)
    ta = hoeffding_halfwidth(trials_a, alpha / 2.0)
    tb = hoeffding_halfwidth(trials_b, alpha / 2.0)
    diff = pa - pb
    return CheckResult(
        name=name,
        passed=abs(diff) <= ta + tb,
        alpha=alpha,
        method="hoeffding",
        claim="true rates equal",
        estimate=diff,
        interval=(-(ta + tb), ta + tb),
        successes=successes_a + successes_b,
        trials=trials_a + trials_b,
    )


def check_two_sample_less(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    alpha: float,
    name: str = "two_sample_less",
) -> CheckResult:
    """Check the ordering ``rate_a <= rate_b`` across two samples.

    One-sided Hoeffding bounds at alpha/2 each: under ``p_a <= p_b`` the
    event ``p_hat_a - t_a > p_hat_b + t_b`` requires one of the two
    one-sided deviations, so false failures have probability ``<= alpha``.
    """
    pa = _check_counts(successes_a, trials_a)
    pb = _check_counts(successes_b, trials_b)
    # One-sided half-widths: P(p_hat - p >= t) <= exp(-2 m t^2) = alpha/2.
    ta = math.sqrt(math.log(2.0 / alpha) / (2.0 * trials_a))
    tb = math.sqrt(math.log(2.0 / alpha) / (2.0 * trials_b))
    diff = pa - pb
    return CheckResult(
        name=name,
        passed=diff <= ta + tb,
        alpha=alpha,
        method="hoeffding",
        claim="true rate_a <= rate_b",
        estimate=diff,
        interval=(-1.0, ta + tb),
        successes=successes_a + successes_b,
        trials=trials_a + trials_b,
    )


# ----------------------------------------------------------------------
# Family-wise error budget
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Registration:
    """One named alpha allocation inside an :class:`ErrorBudget`."""

    name: str  #: unique key (test nodeid or relation name)
    alpha: float  #: this check's false-failure probability
    count: int = 1  #: how many times the name was (re-)registered


class ErrorBudget:
    """Bonferroni allocator for a suite-level family-wise error bound.

    Every statistical check registers ``(name, alpha)`` before running;
    the union bound guarantees the probability of *any* false failure in
    the family is at most the sum of registered alphas, which this class
    caps at ``total``.  Registration is **idempotent per name**: a
    resumed run or retried test re-registers the same (name, alpha) pair
    without double-counting — the regression the runtime-resume tests pin
    — while re-registering a name with a *different* alpha raises
    :class:`BudgetConflict`.
    """

    def __init__(self, total: float = 1e-6) -> None:
        _check_alpha(total)
        self.total = float(total)
        self._registrations: Dict[str, Registration] = {}

    # ------------------------------------------------------------------
    @property
    def registrations(self) -> Dict[str, Registration]:
        """Read-only view of the named allocations."""
        return dict(self._registrations)

    def spent(self) -> float:
        """Sum of registered alphas (the family-wise bound so far)."""
        return sum(r.alpha for r in self._registrations.values())

    def remaining(self) -> float:
        """Unallocated family-wise probability mass."""
        return self.total - self.spent()

    def split(self, count: int) -> float:
        """An even Bonferroni share: ``remaining() / count``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return self.remaining() / count

    # ------------------------------------------------------------------
    def register(self, name: str, alpha: float) -> float:
        """Allocate ``alpha`` to ``name``; idempotent per name.

        Returns the registered alpha.  Raises :class:`BudgetConflict` if
        ``name`` already holds a different alpha and
        :class:`BudgetExceeded` if a *new* registration would push the
        family-wise total past the cap.
        """
        _check_alpha(alpha)
        existing = self._registrations.get(name)
        if existing is not None:
            if not math.isclose(existing.alpha, alpha, rel_tol=1e-12):
                raise BudgetConflict(
                    f"{name!r} already registered with alpha={existing.alpha:g}, "
                    f"cannot re-register with alpha={alpha:g}"
                )
            existing.count += 1
            return existing.alpha
        if self.spent() + alpha > self.total * (1.0 + 1e-12):
            raise BudgetExceeded(
                f"registering {name!r} at alpha={alpha:g} would spend "
                f"{self.spent() + alpha:g} of the {self.total:g} family-wise budget"
            )
        self._registrations[name] = Registration(name=name, alpha=alpha)
        return alpha

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-serialisable accounting of the whole family."""
        return {
            "total": self.total,
            "spent": self.spent(),
            "remaining": self.remaining(),
            "checks": len(self._registrations),
            "registrations": {
                r.name: {"alpha": r.alpha, "count": r.count}
                for r in self._registrations.values()
            },
        }

    def __repr__(self) -> str:
        return (
            f"ErrorBudget(total={self.total:g}, spent={self.spent():g}, "
            f"checks={len(self._registrations)})"
        )


def holm_rejections(pvalues: Dict[str, float], alpha: float) -> Dict[str, bool]:
    """Holm step-down: which hypotheses to reject at family-wise ``alpha``.

    Strictly more powerful than plain Bonferroni at the same family-wise
    error rate; used by the suite report to flag which *violations* are
    family-significant (the pass/fail decision itself stays with the
    pre-allocated Bonferroni alphas, which need no p-values).
    """
    _check_alpha(alpha)
    ordered: List[Tuple[str, float]] = sorted(pvalues.items(), key=lambda kv: kv[1])
    rejected: Dict[str, bool] = {name: False for name in pvalues}
    m = len(ordered)
    for rank, (name, p) in enumerate(ordered):
        if p <= alpha / (m - rank):
            rejected[name] = True
        else:
            break  # step-down stops at the first acceptance
    return rejected

"""Seed capture: make every stochastic failure reproducible by hand.

Hypothesis shrinks and replays its *own* draws, but the PUFs and oracles
in this codebase are seeded through ``numpy.random.SeedSequence`` — when
a property fails, the hypothesis database remembers the strategy inputs,
not the numpy entropy, so a failure seen in CI could not be replayed in
a plain REPL.  These helpers close that gap: every statistical test and
conformance relation records the exact ``SeedSequence`` identity it
used, and failure output prints a copy-pasteable reconstruction line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.runtime.seeding import SeedLike, as_seed_sequence


def seed_identity(seed: SeedLike) -> Dict[str, object]:
    """The (entropy, spawn_key) pair that fully determines a SeedSequence."""
    ss = as_seed_sequence(seed)
    return {"entropy": ss.entropy, "spawn_key": list(ss.spawn_key)}


def format_seed(seed: SeedLike) -> str:
    """A copy-pasteable ``SeedSequence`` reconstruction expression."""
    ss = as_seed_sequence(seed)
    if ss.spawn_key:
        return (
            f"np.random.SeedSequence({ss.entropy!r}, "
            f"spawn_key={tuple(ss.spawn_key)!r})"
        )
    return f"np.random.SeedSequence({ss.entropy!r})"


def reproduction_line(label: str, seed: SeedLike) -> str:
    """One human-readable line tying a label to its exact seed."""
    return f"{label}: rng = np.random.default_rng({format_seed(seed)})"


def note_seed(label: str, seed: SeedLike) -> str:
    """Record a seed so a failing test prints how to rebuild its rng.

    Inside a hypothesis-driven test the line goes through
    ``hypothesis.note`` (printed with the falsifying example); elsewhere
    it is simply returned for the caller to embed in an assertion
    message.  Always returns the formatted line.
    """
    line = reproduction_line(label, seed)
    try:  # hypothesis is a test-only dependency; never required at runtime
        from hypothesis import note
        from hypothesis.errors import InvalidArgument

        try:
            note(line)
        except InvalidArgument:
            pass  # not inside a hypothesis test — nothing to attach to
    except ImportError:
        pass
    return line


class SeedRegistry:
    """Ordered record of every seed a test touched, for failure reports."""

    def __init__(self) -> None:
        self._entries: List[Tuple[str, np.random.SeedSequence]] = []

    def capture(self, label: str, seed: SeedLike) -> np.random.SeedSequence:
        """Record ``seed`` under ``label`` and return it as a SeedSequence."""
        ss = as_seed_sequence(seed)
        self._entries.append((label, ss))
        return ss

    def rng(self, label: str, seed: SeedLike) -> np.random.Generator:
        """Record the seed and hand back a Generator built from it."""
        return np.random.default_rng(self.capture(label, seed))

    @property
    def entries(self) -> List[Tuple[str, np.random.SeedSequence]]:
        """All captured (label, SeedSequence) pairs, in capture order."""
        return list(self._entries)

    def report(self) -> str:
        """Multi-line reproduction recipe for every captured seed."""
        if not self._entries:
            return "(no seeds captured)"
        return "\n".join(
            reproduction_line(label, ss) for label, ss in self._entries
        )

    def __len__(self) -> int:
        return len(self._entries)

"""Differential harnesses: optimized hot paths vs frozen references.

Each relation here drives a production code path (the blocked-GEMM
character kernel, the in-place FWHT / Moebius butterflies, the
vectorised PUF margin evaluators, LTF evaluation) and its independent
re-implementation from :mod:`repro.kernels.reference` over *shared
seeded inputs*, then asserts agreement:

* **bit-identical** wherever both paths compute with integer-valued
  intermediates (characters, +/-1 FWHT tables, GF(2) Moebius, parity
  transform) — any difference is a logic bug, full stop;
* **interval-bounded** for float margins, where the reference
  accumulates with ``math.fsum`` (correct rounding) and the production
  path uses BLAS: margins must agree to a few ulps of the row scale,
  and the *signs* must agree on every row whose reference margin
  clears a tolerance-sized guard band around zero (rows inside the
  band are counted and reported, never silently passed).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.conformance.relations import (
    ConformanceViolation,
    Relation,
    RelationContext,
)
from repro.kernels import reference as ref


def _random_challenges(rng: np.random.Generator, m: int, n: int) -> np.ndarray:
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


def _compare_margins(
    name: str,
    production: np.ndarray,
    reference: np.ndarray,
    production_signs: np.ndarray,
    scale: np.ndarray,
) -> Dict[str, object]:
    """Interval-bounded margin agreement plus guard-banded sign identity.

    ``scale`` is a per-row magnitude bound (sum of absolute terms); the
    tolerance is ``1e-9 * scale`` — generous against ulp accumulation,
    vanishingly small against any real logic difference.
    """
    tol = 1e-9 * np.maximum(scale, 1.0)
    err = np.abs(production - reference)
    if np.any(err > tol):
        worst = int(np.argmax(err - tol))
        raise ConformanceViolation(
            f"{name}: margin mismatch at row {worst}: "
            f"production {production[worst]!r} vs reference {reference[worst]!r} "
            f"(tolerance {tol[worst]:.3e})"
        )
    clear = np.abs(reference) > tol
    ref_signs = np.where(reference >= 0, 1, -1).astype(np.int8)
    if not np.array_equal(production_signs[clear], ref_signs[clear]):
        raise ConformanceViolation(
            f"{name}: response signs differ outside the guard band"
        )
    return {
        "rows": int(reference.size),
        "guard_band_rows": int(np.sum(~clear)),
        "max_margin_error": float(np.max(err)) if err.size else 0.0,
    }


# ----------------------------------------------------------------------
# Exact (integer-valued) paths
# ----------------------------------------------------------------------
def _diff_character_estimates(ctx: RelationContext) -> Dict[str, object]:
    """Character-kernel coefficient estimation is bit-identical to the
    per-subset loops across degrees and block boundaries."""
    from repro.kernels import CharacterBasis

    rng = ctx.rng()
    cases = 0
    for n, degree, m, block in (
        (10, 3, 257, 16),
        (6, 0, 100, 7),
        (8, 8, 64, 100),
        (1, 1, 1, 1),
        (12, 2, 999, 31),
    ):
        x = _random_challenges(rng, m, n)
        y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
        basis = CharacterBasis.low_degree(n, min(degree, n))
        kernel = basis.estimate_coefficients(x, y, block_size=block)
        naive = ref.naive_estimate_coefficients(x, y, list(basis.subsets))
        if not np.array_equal(kernel, naive):
            raise ConformanceViolation(
                f"estimate_coefficients(n={n}, d={degree}, m={m}, block={block}) "
                "differs from the reference loop"
            )
        cases += 1
    return {"cases": cases}


def _diff_expansion_sign(ctx: RelationContext) -> Dict[str, object]:
    """Expansion evaluation and sign prediction match the reference on
    dyadic spectra (both paths exact, so equality is bit-level)."""
    from repro.kernels import CharacterBasis

    rng = ctx.rng()
    cases = 0
    for n, degree, log2_m, block in ((8, 3, 9, 13), (5, 5, 6, 1), (1, 0, 0, 8)):
        m = 2**log2_m
        x = _random_challenges(rng, m, n)
        y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
        basis = CharacterBasis.low_degree(n, min(degree, n))
        coeffs = basis.estimate_coefficients(x, y)
        spectrum = dict(zip(basis.subsets, coeffs))
        if not np.array_equal(
            basis.evaluate_expansion(x, coeffs, block_size=block),
            ref.naive_expansion_values(x, spectrum),
        ):
            raise ConformanceViolation(
                f"evaluate_expansion(n={n}, d={degree}, m={m}) differs"
            )
        if not np.array_equal(
            basis.predict_sign(x, coeffs, block_size=block),
            ref.naive_sign_of_expansion(x, spectrum),
        ):
            raise ConformanceViolation(f"predict_sign(n={n}, d={degree}) differs")
        cases += 1
    return {"cases": cases}


def _diff_fwht(ctx: RelationContext) -> Dict[str, object]:
    """Batched in-place FWHT is bit-identical to the copying butterfly."""
    from repro.kernels import fwht

    rng = ctx.rng()
    cases = 0
    for n, batch in ((0, 1), (1, 3), (6, 4), (10, 2)):
        tables = (1 - 2 * rng.integers(0, 2, size=(batch, 2**n))).astype(np.float64)
        batched = fwht(tables)
        for row_in, row_out in zip(tables, batched):
            if not np.array_equal(ref.naive_walsh_hadamard(row_in), row_out):
                raise ConformanceViolation(f"fwht differs at n={n}, batch={batch}")
        cases += 1
    return {"cases": cases}


def _diff_mobius(ctx: RelationContext) -> Dict[str, object]:
    """The GF(2) Moebius butterfly matches the submask-sum definition
    and is an involution."""
    from repro.kernels import mobius_f2_inplace

    rng = ctx.rng()
    cases = 0
    for n in (0, 1, 4, 8):
        values = rng.integers(0, 2, size=2**n).astype(np.uint8)
        butterfly = mobius_f2_inplace(values.copy())
        if not np.array_equal(butterfly, ref.naive_mobius_f2(values)):
            raise ConformanceViolation(f"mobius_f2 differs at n={n}")
        if not np.array_equal(mobius_f2_inplace(butterfly.copy()), values):
            raise ConformanceViolation(f"mobius_f2 not an involution at n={n}")
        cases += 1
    return {"cases": cases}


def _diff_parity_transform(ctx: RelationContext) -> Dict[str, object]:
    """Vectorised cumprod parity transform equals the per-stage loops."""
    from repro.pufs.arbiter import parity_transform

    rng = ctx.rng()
    cases = 0
    for m, n in ((64, 16), (1, 1), (7, 3), (128, 48)):
        c = _random_challenges(rng, m, n)
        if not np.array_equal(parity_transform(c), ref.naive_parity_transform(c)):
            raise ConformanceViolation(f"parity_transform differs at (m={m}, n={n})")
        cases += 1
    return {"cases": cases}


# ----------------------------------------------------------------------
# Interval-bounded (float-margin) paths
# ----------------------------------------------------------------------
def _diff_arbiter_response(ctx: RelationContext) -> Dict[str, object]:
    """Arbiter margins/responses agree with the fsum reference path."""
    from repro.pufs.arbiter import ArbiterPUF, parity_transform

    rng = ctx.rng()
    n = 48
    weights = rng.normal(0.0, 1.0, size=n + 1)
    puf = ArbiterPUF(n, weights=weights)
    c = _random_challenges(ctx.rng(), ctx.samples(2_000, minimum=256), n)
    scale = np.abs(parity_transform(c)) @ np.abs(weights)
    return _compare_margins(
        "arbiter",
        puf.raw_margin(c),
        ref.naive_arbiter_margin(weights, c),
        puf.eval(c),
        scale,
    )


def _diff_xor_response(ctx: RelationContext) -> Dict[str, object]:
    """Per-chain XOR margins agree with the fsum reference; responses
    match wherever every chain clears the guard band."""
    from repro.pufs.arbiter import parity_transform
    from repro.pufs.xor_arbiter import XORArbiterPUF

    n, k = 32, 4
    puf = XORArbiterPUF(n, k, ctx.rng())
    c = _random_challenges(ctx.rng(), ctx.samples(1_500, minimum=256), n)
    margins = puf.chain_margins(c)
    phi_abs = np.abs(parity_transform(c))
    guard_clear = np.ones(c.shape[0], dtype=bool)
    details: Dict[str, object] = {"chains": k}
    for idx, chain in enumerate(puf.chains):
        reference = ref.naive_arbiter_margin(chain.weights, c)
        scale = phi_abs @ np.abs(chain.weights)
        chain_signs = np.where(margins[:, idx] >= 0, 1, -1).astype(np.int8)
        sub = _compare_margins(
            f"xor_chain[{idx}]", margins[:, idx], reference, chain_signs, scale
        )
        guard_clear &= np.abs(reference) > 1e-9 * np.maximum(scale, 1.0)
        details[f"chain_{idx}_max_error"] = sub["max_margin_error"]
    expected = ref.naive_xor_arbiter_response(
        [chain.weights for chain in puf.chains], c
    )
    if not np.array_equal(puf.eval(c)[guard_clear], expected[guard_clear]):
        raise ConformanceViolation("XOR responses differ outside the guard band")
    details["guard_band_rows"] = int(np.sum(~guard_clear))
    return details


def _diff_cdc_xor_response(ctx: RelationContext) -> Dict[str, object]:
    """CDC-XOR per-chain margins over *rotated* challenges agree with the
    fsum reference; the combined response matches the pure-python
    rotate-then-sign reference wherever every chain clears the band."""
    from repro.pufs.arbiter import parity_transform
    from repro.pufs.cdc_xor import CDCXORArbiterPUF, derive_component_challenges

    n, k = 24, 3
    puf = CDCXORArbiterPUF(n, k, ctx.rng())
    c = _random_challenges(ctx.rng(), ctx.samples(1_200, minimum=256), n)
    components = derive_component_challenges(c, k, puf.shifts)
    margins = puf.chain_margins(c)
    guard_clear = np.ones(c.shape[0], dtype=bool)
    details: Dict[str, object] = {"chains": k, "shifts": list(puf.shifts)}
    for idx, chain in enumerate(puf.chains):
        reference = ref.naive_arbiter_margin(chain.weights, components[idx])
        scale = np.abs(parity_transform(components[idx])) @ np.abs(chain.weights)
        chain_signs = np.where(margins[:, idx] >= 0, 1, -1).astype(np.int8)
        sub = _compare_margins(
            f"cdc_chain[{idx}]", margins[:, idx], reference, chain_signs, scale
        )
        guard_clear &= np.abs(reference) > 1e-9 * np.maximum(scale, 1.0)
        details[f"chain_{idx}_max_error"] = sub["max_margin_error"]
    expected = ref.naive_cdc_xor_response(
        [chain.weights for chain in puf.chains], puf.shifts, c
    )
    if not np.array_equal(puf.eval(c)[guard_clear], expected[guard_clear]):
        raise ConformanceViolation(
            "CDC-XOR responses differ outside the guard band"
        )
    details["guard_band_rows"] = int(np.sum(~guard_clear))
    return details


def _diff_cdc_xor_k1_eq_arbiter(ctx: RelationContext) -> Dict[str, object]:
    """A k=1 CDC-XOR collapses to the plain arbiter chain bit for bit.

    Component 0's rotation is zero by construction, so the single-chain
    CDC instance must reproduce its own chain's ``ArbiterPUF`` margins
    and responses *bit-identically* — same GEMV, same operand order, no
    tolerance.  Any drift means the CDC margin path reassociated the
    arithmetic and the k=1 anchor to the validated arbiter is lost.
    """
    from repro.pufs.arbiter import ArbiterPUF
    from repro.pufs.cdc_xor import CDCXORArbiterPUF

    cases = 0
    for n in (8, 24, 48):
        puf = CDCXORArbiterPUF(n, 1, ctx.rng())
        plain = ArbiterPUF(n, weights=puf.chains[0].weights)
        c = _random_challenges(ctx.rng(), 512, n)
        if not np.array_equal(puf.raw_margin(c), plain.raw_margin(c)):
            raise ConformanceViolation(
                f"k=1 CDC-XOR margins differ from the plain arbiter at n={n}"
            )
        if not np.array_equal(puf.eval(c), plain.eval(c)):
            raise ConformanceViolation(
                f"k=1 CDC-XOR responses differ from the plain arbiter at n={n}"
            )
        cases += 1
    return {"cases": cases}


def _diff_br_margin(ctx: RelationContext) -> Dict[str, object]:
    """Bistable Ring margins agree with the per-term fsum reference."""
    from repro.pufs.bistable_ring import BistableRingPUF

    n = 24
    puf = BistableRingPUF(n, ctx.rng())
    c = _random_challenges(ctx.rng(), ctx.samples(1_000, minimum=256), n)
    reference = ref.naive_br_margin(
        c,
        puf.bias_terms,
        puf.linear_weights,
        puf.global_offset,
        puf.pair_indices,
        puf.pair_weights,
        puf.triple_indices,
        puf.triple_weights,
    )
    scale = np.full(
        c.shape[0],
        abs(puf.global_offset)
        + float(np.sum(np.abs(puf.bias_terms)))
        + float(np.sum(np.abs(puf.linear_weights)))
        + float(np.sum(np.abs(puf.pair_weights)))
        + float(np.sum(np.abs(puf.triple_weights))),
    )
    return _compare_margins(
        "bistable_ring", puf.raw_margin(c), reference, puf.eval(c), scale
    )


def _diff_ltf_eval(ctx: RelationContext) -> Dict[str, object]:
    """LTF margins and signs agree with the fsum reference evaluator."""
    from repro.booleanfuncs.ltf import LTF

    rng = ctx.rng()
    n = 40
    ltf = LTF(rng.normal(0.0, 1.0, size=n), threshold=rng.normal())
    x = _random_challenges(ctx.rng(), ctx.samples(2_000, minimum=256), n)
    reference = ref.naive_ltf_margin(ltf.weights, ltf.threshold, x)
    scale = np.full(
        x.shape[0], float(np.sum(np.abs(ltf.weights))) + abs(ltf.threshold)
    )
    return _compare_margins("ltf", ltf.margin(x), reference, ltf(x), scale)


# ----------------------------------------------------------------------
# Fleet (stacked-GEMM) paths vs the per-instance loop
# ----------------------------------------------------------------------
def _fleet_seed(ctx: RelationContext) -> int:
    """A replayable fleet root seed drawn from the relation's own stream."""
    return int(ctx.rng().integers(0, 2**63))


def _diff_fleet_arbiter(ctx: RelationContext) -> Dict[str, object]:
    """An arbiter fleet's stacked-GEMM margins agree with the fsum
    reference run per instance, and the stacked weight matrix is
    bit-identical to the standalone constructors' weights."""
    from repro.pufs.arbiter import parity_transform
    from repro.pufs.fleet import Fleet, FleetSpec

    spec = FleetSpec("arbiter", 32, 12)
    fleet = Fleet.build(spec, _fleet_seed(ctx))
    instances = fleet.instances()
    stacked = np.column_stack([p.weights for p in instances])
    if not np.array_equal(stacked, fleet.weights):
        raise ConformanceViolation(
            "fleet weight columns differ from the standalone constructors'"
        )
    c = _random_challenges(ctx.rng(), ctx.samples(1_000, minimum=256), spec.n)
    margins = fleet.margins(c)
    responses = fleet.eval(c)
    reference = np.column_stack(
        [ref.naive_arbiter_margin(p.weights, c) for p in instances]
    )
    scale = np.abs(parity_transform(c)).astype(np.float64) @ np.abs(fleet.weights)
    details = _compare_margins(
        "fleet_arbiter",
        margins.ravel(),
        reference.ravel(),
        responses.ravel(),
        scale.ravel(),
    )
    details["instances"] = spec.size
    return details


def _diff_fleet_xor(ctx: RelationContext) -> Dict[str, object]:
    """A mixed-k XOR fleet's per-chain margins agree with the fsum
    reference, and the ±1 integer combine path (reduceat over chain
    slices) matches the per-instance loop bit-identically on every row
    whose chains all clear the guard band."""
    from repro.pufs.arbiter import parity_transform
    from repro.pufs.fleet import Fleet, FleetSpec, eval_instance

    spec = FleetSpec("xor", 24, 6, k=(1, 2, 3, 5, 2, 4))
    fleet = Fleet.build(spec, _fleet_seed(ctx))
    instances = fleet.instances()
    c = _random_challenges(ctx.rng(), ctx.samples(800, minimum=256), spec.n)
    chain_margins = fleet.margins(c)
    chains = [chain for puf in instances for chain in puf.chains]
    reference = np.column_stack(
        [ref.naive_arbiter_margin(chain.weights, c) for chain in chains]
    )
    scale = np.abs(parity_transform(c)).astype(np.float64) @ np.abs(fleet.weights)
    chain_signs = np.where(chain_margins >= 0, 1, -1).astype(np.int8)
    details = _compare_margins(
        "fleet_xor_chains",
        chain_margins.ravel(),
        reference.ravel(),
        chain_signs.ravel(),
        scale.ravel(),
    )
    guard_clear = np.all(np.abs(reference) > 1e-9 * np.maximum(scale, 1.0), axis=1)
    loop = np.column_stack([eval_instance(p, c) for p in instances])
    if not np.array_equal(fleet.eval(c)[guard_clear], loop[guard_clear]):
        raise ConformanceViolation(
            "mixed-k XOR fleet responses differ from the per-instance "
            "loop outside the guard band"
        )
    details["chains"] = len(chains)
    details["guard_band_challenge_rows"] = int(np.sum(~guard_clear))
    return details


def _diff_fleet_br_ltf(ctx: RelationContext) -> Dict[str, object]:
    """BR and LTF fleet margins agree with their fsum references."""
    from repro.pufs.fleet import Fleet, FleetSpec

    details: Dict[str, object] = {}
    br = Fleet.build(FleetSpec("br", 16, 5), _fleet_seed(ctx))
    c = _random_challenges(ctx.rng(), ctx.samples(600, minimum=256), 16)
    br_instances = br.instances()
    reference = np.column_stack(
        [
            ref.naive_br_margin(
                c,
                p.bias_terms,
                p.linear_weights,
                p.global_offset,
                p.pair_indices,
                p.pair_weights,
                p.triple_indices,
                p.triple_weights,
            )
            for p in br_instances
        ]
    )
    scale = np.broadcast_to(
        np.array(
            [
                abs(p.global_offset)
                + float(np.sum(np.abs(p.bias_terms)))
                + float(np.sum(np.abs(p.linear_weights)))
                + float(np.sum(np.abs(p.pair_weights)))
                + float(np.sum(np.abs(p.triple_weights)))
                for p in br_instances
            ]
        ),
        reference.shape,
    )
    sub = _compare_margins(
        "fleet_br",
        br.margins(c).ravel(),
        reference.ravel(),
        br.eval(c).ravel(),
        scale.ravel(),
    )
    details["br_max_margin_error"] = sub["max_margin_error"]
    details["br_guard_band_rows"] = sub["guard_band_rows"]

    ltf = Fleet.build(FleetSpec("ltf", 20, 8), _fleet_seed(ctx))
    x = _random_challenges(ctx.rng(), ctx.samples(600, minimum=256), 20)
    ltf_instances = ltf.instances()
    reference = np.column_stack(
        [ref.naive_ltf_margin(f.weights, f.threshold, x) for f in ltf_instances]
    )
    scale = np.broadcast_to(
        np.array(
            [
                float(np.sum(np.abs(f.weights))) + abs(f.threshold)
                for f in ltf_instances
            ]
        ),
        reference.shape,
    )
    sub = _compare_margins(
        "fleet_ltf",
        ltf.margins(x).ravel(),
        reference.ravel(),
        ltf.eval(x).ravel(),
        scale.ravel(),
    )
    details["ltf_max_margin_error"] = sub["max_margin_error"]
    details["ltf_guard_band_rows"] = sub["guard_band_rows"]
    return details


def _diff_fleet_tier_identity(ctx: RelationContext) -> Dict[str, object]:
    """Dtype tiers keep their exactness promises.

    The int8 tier stores ±1 features in int8 but multiplies against the
    same float64 weights, so its margins must be *bit-identical* to the
    float64 tier's for every family.  With integer-valued weights all
    three tiers (float32 included: products and sums stay far below
    2^24) must agree bit-exactly with an integer-arithmetic reference.
    """
    from repro.pufs.arbiter import parity_transform
    from repro.pufs.fleet import Fleet, FleetSpec

    cases = 0
    for family, n, size, k in (
        ("arbiter", 24, 8, 1),
        ("xor", 16, 5, (1, 2, 3, 2, 4)),
        ("br", 12, 4, 1),
        ("ltf", 20, 6, 1),
    ):
        seed = _fleet_seed(ctx)
        f64 = Fleet.build(FleetSpec(family, n, size, k=k), seed)
        i8 = Fleet.build(FleetSpec(family, n, size, k=k, tier="int8"), seed)
        c = _random_challenges(ctx.rng(), 512, n)
        if not np.array_equal(f64.margins(c), i8.margins(c)):
            raise ConformanceViolation(
                f"int8-tier margins differ from float64's for family {family!r}"
            )
        if not np.array_equal(f64.eval(c), i8.eval(c)):
            raise ConformanceViolation(
                f"int8-tier responses differ from float64's for family {family!r}"
            )
        cases += 1

    n, size = 16, 6
    int_weights = ctx.rng().integers(-8, 9, size=(n + 1, size)).astype(np.float64)
    c = _random_challenges(ctx.rng(), 512, n)
    root = np.random.SeedSequence(0)
    exact = parity_transform(c).astype(np.int64) @ int_weights.astype(np.int64)
    exact_signs = np.where(exact >= 0, 1, -1).astype(np.int8)
    for tier in ("float64", "float32", "int8"):
        fl = Fleet(FleetSpec("arbiter", n, size, tier=tier), root, int_weights)
        if not np.array_equal(fl.margins(c).astype(np.float64), exact):
            raise ConformanceViolation(
                f"{tier}-tier margins differ from exact integer arithmetic "
                "on integer-valued weights"
            )
        if not np.array_equal(fl.eval(c), exact_signs):
            raise ConformanceViolation(
                f"{tier}-tier responses differ from exact integer arithmetic"
            )
        cases += 1
    return {"cases": cases}


def _diff_fleet_majority_vote(ctx: RelationContext) -> Dict[str, object]:
    """Batched noisy measurement and majority vote are bit-identical to
    a per-instance reference fed the *same* noise stream.

    The batched path and the reference consume identical ``(M, chains)``
    normal slabs (same generator seed, same draw order), so the ±1
    integer post-processing — sign, per-instance XOR combine, int16 vote
    accumulation, the ties-to-+1 rule — must agree bit-for-bit.
    """
    from repro.kernels.fleet import batched_majority_vote, noisy_sign_responses
    from repro.pufs.fleet import Fleet, FleetSpec

    spec = FleetSpec("xor", 16, 5, k=(1, 2, 3, 2, 4), noise_sigma=0.6)
    fleet = Fleet.build(spec, _fleet_seed(ctx))
    c = _random_challenges(ctx.rng(), ctx.samples(400, minimum=128), spec.n)
    margins = fleet.margins(c)
    counts = spec.chain_counts
    offsets = np.asarray(fleet.chain_offsets)
    repetitions = 9
    entropy = _fleet_seed(ctx)

    def combine_loop(signs: np.ndarray) -> np.ndarray:
        cols = []
        for i in range(spec.size):
            lo = int(offsets[i])
            cols.append(np.prod(signs[:, lo : lo + counts[i]], axis=1))
        return np.column_stack(cols).astype(np.int8)

    noise = np.random.default_rng(entropy).normal(
        0.0, spec.noise_sigma, size=margins.shape
    )
    single = noisy_sign_responses(margins, noise, offsets)
    if not np.array_equal(
        single, combine_loop(np.where(margins + noise >= 0, 1, -1))
    ):
        raise ConformanceViolation(
            "batched noisy measurement differs from the per-instance "
            "loop under the same noise tensor"
        )

    voted = batched_majority_vote(
        margins,
        spec.noise_sigma,
        repetitions,
        np.random.default_rng(entropy),
        offsets,
    )
    replay = np.random.default_rng(entropy)
    votes = np.zeros((c.shape[0], spec.size), dtype=np.int64)
    for _ in range(repetitions):
        slab = replay.normal(0.0, spec.noise_sigma, size=margins.shape)
        votes += combine_loop(np.where(margins + slab >= 0, 1, -1))
    if not np.array_equal(voted, np.where(votes >= 0, 1, -1).astype(np.int8)):
        raise ConformanceViolation(
            "batched majority vote differs from the per-instance reference "
            "under the same noise stream"
        )
    if not np.array_equal(
        batched_majority_vote(
            margins, 0.0, 3, np.random.default_rng(entropy), offsets
        ),
        noisy_sign_responses(margins, None, offsets),
    ):
        raise ConformanceViolation(
            "zero-noise majority vote differs from the ideal response"
        )
    return {
        "rows": int(c.shape[0]),
        "chains": int(sum(counts)),
        "repetitions": repetitions,
    }


def _diff_active_committee_of_one(ctx: RelationContext) -> Dict[str, object]:
    """A committee of one is uncertainty sampling, bit for bit.

    Query-by-committee with ``committee=1`` fits exactly one hypothesis
    (the full labelled set) and scores candidates by ``|margin / 1|`` —
    definitionally the uncertainty rule.  Both strategies are driven
    from one seed against one arbiter instance; the selected challenge
    sequence, the answered labels, and every checkpoint accuracy must
    be bit-identical.  Any drift means the committee's scoring or its
    generator consumption silently diverged from the uncertainty path.
    """
    from repro.learning.active import (
        CommitteeStrategy,
        UncertaintyStrategy,
        run_active_attack,
    )
    from repro.pufs.arbiter import ArbiterPUF

    n = 20
    puf = ArbiterPUF(n, ctx.rng())
    seed = int(ctx.rng().integers(0, 2**63))
    budgets = (32, 96)
    runs = {}
    for label, strategy in (
        ("uncertainty", UncertaintyStrategy()),
        ("committee_of_one", CommitteeStrategy(committee=1)),
    ):
        runs[label] = run_active_attack(
            n,
            puf.eval,
            strategy,
            budgets,
            batch=16,
            pool_size=256,
            test_size=500,
            seed=seed,
        )
    unc, com = runs["uncertainty"], runs["committee_of_one"]
    if not np.array_equal(
        unc.trajectory.challenges, com.trajectory.challenges
    ):
        raise ConformanceViolation(
            "committee-of-one selected a different challenge sequence "
            "than uncertainty sampling"
        )
    if not np.array_equal(unc.trajectory.responses, com.trajectory.responses):
        raise ConformanceViolation(
            "committee-of-one collected different labels than uncertainty"
        )
    if unc.accuracies != com.accuracies:
        raise ConformanceViolation(
            f"checkpoint accuracies diverge: {unc.accuracies} "
            f"vs {com.accuracies}"
        )
    return {
        "n": n,
        "budgets": list(budgets),
        "accuracies": unc.accuracies,
    }


def differential_relations() -> List[Relation]:
    """The registry of differential relations, in stable order."""
    return [
        Relation(
            "diff_character_estimates",
            "differential",
            "character kernel coefficient estimates are bit-identical to "
            "the per-subset reference loops",
            _diff_character_estimates,
        ),
        Relation(
            "diff_expansion_sign",
            "differential",
            "expansion evaluation and sign prediction are bit-identical "
            "to the reference on dyadic spectra",
            _diff_expansion_sign,
        ),
        Relation(
            "diff_fwht",
            "differential",
            "in-place batched FWHT is bit-identical to the copying butterfly",
            _diff_fwht,
        ),
        Relation(
            "diff_mobius_f2",
            "differential",
            "GF(2) Moebius butterfly matches the submask-sum definition",
            _diff_mobius,
        ),
        Relation(
            "diff_parity_transform",
            "differential",
            "vectorised parity transform equals the per-stage loops",
            _diff_parity_transform,
        ),
        Relation(
            "diff_arbiter_response",
            "differential",
            "arbiter margins agree with the fsum reference within ulp bounds",
            _diff_arbiter_response,
        ),
        Relation(
            "diff_xor_response",
            "differential",
            "XOR arbiter chain margins and responses agree with the reference",
            _diff_xor_response,
        ),
        Relation(
            "diff_cdc_xor_response",
            "differential",
            "CDC-XOR chain margins over rotated challenges and the combined "
            "response agree with the pure-python reference",
            _diff_cdc_xor_response,
        ),
        Relation(
            "diff_cdc_xor_k1_eq_arbiter",
            "differential",
            "a k=1 CDC-XOR is bit-identical to its plain arbiter chain",
            _diff_cdc_xor_k1_eq_arbiter,
        ),
        Relation(
            "diff_br_margin",
            "differential",
            "Bistable Ring margins agree with the per-term fsum reference",
            _diff_br_margin,
        ),
        Relation(
            "diff_ltf_eval",
            "differential",
            "LTF margins and signs agree with the fsum reference evaluator",
            _diff_ltf_eval,
        ),
        Relation(
            "diff_fleet_arbiter",
            "differential",
            "arbiter fleet stacked-GEMM margins agree with the per-instance "
            "fsum reference and stack bit-identical weights",
            _diff_fleet_arbiter,
        ),
        Relation(
            "diff_fleet_xor",
            "differential",
            "mixed-k XOR fleet chain margins agree with the reference; the "
            "reduceat combine matches the per-instance loop",
            _diff_fleet_xor,
        ),
        Relation(
            "diff_fleet_br_ltf",
            "differential",
            "BR and LTF fleet margins agree with their fsum references",
            _diff_fleet_br_ltf,
        ),
        Relation(
            "diff_fleet_tier_identity",
            "differential",
            "int8-tier fleet margins are bit-identical to float64's; all "
            "tiers are exact on integer-valued weights",
            _diff_fleet_tier_identity,
        ),
        Relation(
            "diff_fleet_majority_vote",
            "differential",
            "batched noisy eval and majority vote are bit-identical to the "
            "per-instance loop under the same noise stream",
            _diff_fleet_majority_vote,
        ),
        Relation(
            "diff_active_committee_of_one",
            "differential",
            "a committee of one selects, labels, and scores bit-identically "
            "to uncertainty sampling",
            _diff_active_committee_of_one,
        ),
    ]

"""Differential harnesses: optimized hot paths vs frozen references.

Each relation here drives a production code path (the blocked-GEMM
character kernel, the in-place FWHT / Moebius butterflies, the
vectorised PUF margin evaluators, LTF evaluation) and its independent
re-implementation from :mod:`repro.kernels.reference` over *shared
seeded inputs*, then asserts agreement:

* **bit-identical** wherever both paths compute with integer-valued
  intermediates (characters, +/-1 FWHT tables, GF(2) Moebius, parity
  transform) — any difference is a logic bug, full stop;
* **interval-bounded** for float margins, where the reference
  accumulates with ``math.fsum`` (correct rounding) and the production
  path uses BLAS: margins must agree to a few ulps of the row scale,
  and the *signs* must agree on every row whose reference margin
  clears a tolerance-sized guard band around zero (rows inside the
  band are counted and reported, never silently passed).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.conformance.relations import (
    ConformanceViolation,
    Relation,
    RelationContext,
)
from repro.kernels import reference as ref


def _random_challenges(rng: np.random.Generator, m: int, n: int) -> np.ndarray:
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


def _compare_margins(
    name: str,
    production: np.ndarray,
    reference: np.ndarray,
    production_signs: np.ndarray,
    scale: np.ndarray,
) -> Dict[str, object]:
    """Interval-bounded margin agreement plus guard-banded sign identity.

    ``scale`` is a per-row magnitude bound (sum of absolute terms); the
    tolerance is ``1e-9 * scale`` — generous against ulp accumulation,
    vanishingly small against any real logic difference.
    """
    tol = 1e-9 * np.maximum(scale, 1.0)
    err = np.abs(production - reference)
    if np.any(err > tol):
        worst = int(np.argmax(err - tol))
        raise ConformanceViolation(
            f"{name}: margin mismatch at row {worst}: "
            f"production {production[worst]!r} vs reference {reference[worst]!r} "
            f"(tolerance {tol[worst]:.3e})"
        )
    clear = np.abs(reference) > tol
    ref_signs = np.where(reference >= 0, 1, -1).astype(np.int8)
    if not np.array_equal(production_signs[clear], ref_signs[clear]):
        raise ConformanceViolation(
            f"{name}: response signs differ outside the guard band"
        )
    return {
        "rows": int(reference.size),
        "guard_band_rows": int(np.sum(~clear)),
        "max_margin_error": float(np.max(err)) if err.size else 0.0,
    }


# ----------------------------------------------------------------------
# Exact (integer-valued) paths
# ----------------------------------------------------------------------
def _diff_character_estimates(ctx: RelationContext) -> Dict[str, object]:
    """Character-kernel coefficient estimation is bit-identical to the
    per-subset loops across degrees and block boundaries."""
    from repro.kernels import CharacterBasis

    rng = ctx.rng()
    cases = 0
    for n, degree, m, block in (
        (10, 3, 257, 16),
        (6, 0, 100, 7),
        (8, 8, 64, 100),
        (1, 1, 1, 1),
        (12, 2, 999, 31),
    ):
        x = _random_challenges(rng, m, n)
        y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
        basis = CharacterBasis.low_degree(n, min(degree, n))
        kernel = basis.estimate_coefficients(x, y, block_size=block)
        naive = ref.naive_estimate_coefficients(x, y, list(basis.subsets))
        if not np.array_equal(kernel, naive):
            raise ConformanceViolation(
                f"estimate_coefficients(n={n}, d={degree}, m={m}, block={block}) "
                "differs from the reference loop"
            )
        cases += 1
    return {"cases": cases}


def _diff_expansion_sign(ctx: RelationContext) -> Dict[str, object]:
    """Expansion evaluation and sign prediction match the reference on
    dyadic spectra (both paths exact, so equality is bit-level)."""
    from repro.kernels import CharacterBasis

    rng = ctx.rng()
    cases = 0
    for n, degree, log2_m, block in ((8, 3, 9, 13), (5, 5, 6, 1), (1, 0, 0, 8)):
        m = 2**log2_m
        x = _random_challenges(rng, m, n)
        y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
        basis = CharacterBasis.low_degree(n, min(degree, n))
        coeffs = basis.estimate_coefficients(x, y)
        spectrum = dict(zip(basis.subsets, coeffs))
        if not np.array_equal(
            basis.evaluate_expansion(x, coeffs, block_size=block),
            ref.naive_expansion_values(x, spectrum),
        ):
            raise ConformanceViolation(
                f"evaluate_expansion(n={n}, d={degree}, m={m}) differs"
            )
        if not np.array_equal(
            basis.predict_sign(x, coeffs, block_size=block),
            ref.naive_sign_of_expansion(x, spectrum),
        ):
            raise ConformanceViolation(f"predict_sign(n={n}, d={degree}) differs")
        cases += 1
    return {"cases": cases}


def _diff_fwht(ctx: RelationContext) -> Dict[str, object]:
    """Batched in-place FWHT is bit-identical to the copying butterfly."""
    from repro.kernels import fwht

    rng = ctx.rng()
    cases = 0
    for n, batch in ((0, 1), (1, 3), (6, 4), (10, 2)):
        tables = (1 - 2 * rng.integers(0, 2, size=(batch, 2**n))).astype(np.float64)
        batched = fwht(tables)
        for row_in, row_out in zip(tables, batched):
            if not np.array_equal(ref.naive_walsh_hadamard(row_in), row_out):
                raise ConformanceViolation(f"fwht differs at n={n}, batch={batch}")
        cases += 1
    return {"cases": cases}


def _diff_mobius(ctx: RelationContext) -> Dict[str, object]:
    """The GF(2) Moebius butterfly matches the submask-sum definition
    and is an involution."""
    from repro.kernels import mobius_f2_inplace

    rng = ctx.rng()
    cases = 0
    for n in (0, 1, 4, 8):
        values = rng.integers(0, 2, size=2**n).astype(np.uint8)
        butterfly = mobius_f2_inplace(values.copy())
        if not np.array_equal(butterfly, ref.naive_mobius_f2(values)):
            raise ConformanceViolation(f"mobius_f2 differs at n={n}")
        if not np.array_equal(mobius_f2_inplace(butterfly.copy()), values):
            raise ConformanceViolation(f"mobius_f2 not an involution at n={n}")
        cases += 1
    return {"cases": cases}


def _diff_parity_transform(ctx: RelationContext) -> Dict[str, object]:
    """Vectorised cumprod parity transform equals the per-stage loops."""
    from repro.pufs.arbiter import parity_transform

    rng = ctx.rng()
    cases = 0
    for m, n in ((64, 16), (1, 1), (7, 3), (128, 48)):
        c = _random_challenges(rng, m, n)
        if not np.array_equal(parity_transform(c), ref.naive_parity_transform(c)):
            raise ConformanceViolation(f"parity_transform differs at (m={m}, n={n})")
        cases += 1
    return {"cases": cases}


# ----------------------------------------------------------------------
# Interval-bounded (float-margin) paths
# ----------------------------------------------------------------------
def _diff_arbiter_response(ctx: RelationContext) -> Dict[str, object]:
    """Arbiter margins/responses agree with the fsum reference path."""
    from repro.pufs.arbiter import ArbiterPUF, parity_transform

    rng = ctx.rng()
    n = 48
    weights = rng.normal(0.0, 1.0, size=n + 1)
    puf = ArbiterPUF(n, weights=weights)
    c = _random_challenges(ctx.rng(), ctx.samples(2_000, minimum=256), n)
    scale = np.abs(parity_transform(c)) @ np.abs(weights)
    return _compare_margins(
        "arbiter",
        puf.raw_margin(c),
        ref.naive_arbiter_margin(weights, c),
        puf.eval(c),
        scale,
    )


def _diff_xor_response(ctx: RelationContext) -> Dict[str, object]:
    """Per-chain XOR margins agree with the fsum reference; responses
    match wherever every chain clears the guard band."""
    from repro.pufs.arbiter import parity_transform
    from repro.pufs.xor_arbiter import XORArbiterPUF

    n, k = 32, 4
    puf = XORArbiterPUF(n, k, ctx.rng())
    c = _random_challenges(ctx.rng(), ctx.samples(1_500, minimum=256), n)
    margins = puf.chain_margins(c)
    phi_abs = np.abs(parity_transform(c))
    guard_clear = np.ones(c.shape[0], dtype=bool)
    details: Dict[str, object] = {"chains": k}
    for idx, chain in enumerate(puf.chains):
        reference = ref.naive_arbiter_margin(chain.weights, c)
        scale = phi_abs @ np.abs(chain.weights)
        chain_signs = np.where(margins[:, idx] >= 0, 1, -1).astype(np.int8)
        sub = _compare_margins(
            f"xor_chain[{idx}]", margins[:, idx], reference, chain_signs, scale
        )
        guard_clear &= np.abs(reference) > 1e-9 * np.maximum(scale, 1.0)
        details[f"chain_{idx}_max_error"] = sub["max_margin_error"]
    expected = ref.naive_xor_arbiter_response(
        [chain.weights for chain in puf.chains], c
    )
    if not np.array_equal(puf.eval(c)[guard_clear], expected[guard_clear]):
        raise ConformanceViolation("XOR responses differ outside the guard band")
    details["guard_band_rows"] = int(np.sum(~guard_clear))
    return details


def _diff_br_margin(ctx: RelationContext) -> Dict[str, object]:
    """Bistable Ring margins agree with the per-term fsum reference."""
    from repro.pufs.bistable_ring import BistableRingPUF

    n = 24
    puf = BistableRingPUF(n, ctx.rng())
    c = _random_challenges(ctx.rng(), ctx.samples(1_000, minimum=256), n)
    reference = ref.naive_br_margin(
        c,
        puf.bias_terms,
        puf.linear_weights,
        puf.global_offset,
        puf.pair_indices,
        puf.pair_weights,
        puf.triple_indices,
        puf.triple_weights,
    )
    scale = np.full(
        c.shape[0],
        abs(puf.global_offset)
        + float(np.sum(np.abs(puf.bias_terms)))
        + float(np.sum(np.abs(puf.linear_weights)))
        + float(np.sum(np.abs(puf.pair_weights)))
        + float(np.sum(np.abs(puf.triple_weights))),
    )
    return _compare_margins(
        "bistable_ring", puf.raw_margin(c), reference, puf.eval(c), scale
    )


def _diff_ltf_eval(ctx: RelationContext) -> Dict[str, object]:
    """LTF margins and signs agree with the fsum reference evaluator."""
    from repro.booleanfuncs.ltf import LTF

    rng = ctx.rng()
    n = 40
    ltf = LTF(rng.normal(0.0, 1.0, size=n), threshold=rng.normal())
    x = _random_challenges(ctx.rng(), ctx.samples(2_000, minimum=256), n)
    reference = ref.naive_ltf_margin(ltf.weights, ltf.threshold, x)
    scale = np.full(
        x.shape[0], float(np.sum(np.abs(ltf.weights))) + abs(ltf.threshold)
    )
    return _compare_margins("ltf", ltf.margin(x), reference, ltf(x), scale)


def differential_relations() -> List[Relation]:
    """The registry of differential relations, in stable order."""
    return [
        Relation(
            "diff_character_estimates",
            "differential",
            "character kernel coefficient estimates are bit-identical to "
            "the per-subset reference loops",
            _diff_character_estimates,
        ),
        Relation(
            "diff_expansion_sign",
            "differential",
            "expansion evaluation and sign prediction are bit-identical "
            "to the reference on dyadic spectra",
            _diff_expansion_sign,
        ),
        Relation(
            "diff_fwht",
            "differential",
            "in-place batched FWHT is bit-identical to the copying butterfly",
            _diff_fwht,
        ),
        Relation(
            "diff_mobius_f2",
            "differential",
            "GF(2) Moebius butterfly matches the submask-sum definition",
            _diff_mobius,
        ),
        Relation(
            "diff_parity_transform",
            "differential",
            "vectorised parity transform equals the per-stage loops",
            _diff_parity_transform,
        ),
        Relation(
            "diff_arbiter_response",
            "differential",
            "arbiter margins agree with the fsum reference within ulp bounds",
            _diff_arbiter_response,
        ),
        Relation(
            "diff_xor_response",
            "differential",
            "XOR arbiter chain margins and responses agree with the reference",
            _diff_xor_response,
        ),
        Relation(
            "diff_br_margin",
            "differential",
            "Bistable Ring margins agree with the per-term fsum reference",
            _diff_br_margin,
        ),
        Relation(
            "diff_ltf_eval",
            "differential",
            "LTF margins and signs agree with the fsum reference evaluator",
            _diff_ltf_eval,
        ),
    ]

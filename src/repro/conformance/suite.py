"""The conformance suite runner: enumerate, seed, budget, report.

``run_suite`` is the single entry point behind ``python -m repro
conformance`` and the conformance tests: it takes the relation registry
(differential harnesses first, then metamorphic relations), fans the
master ``SeedSequence`` out into one child per relation (so any single
relation can be replayed in isolation from its printed seed identity),
registers every *statistical* relation with a family-wise
:class:`~repro.conformance.oracles.ErrorBudget`, runs each relation,
and writes one JSONL record per relation through the telemetry
:class:`~repro.telemetry.ledger.RunLedger`.

Error accounting: the family budget (default 1e-6 per suite run) is
split evenly across the statistical relations *by registered name* —
registration is idempotent, so re-running the suite over an existing
ledger (resume) cannot double-charge the budget.  Deterministic
relations assert exact facts and consume no alpha; the suite's total
false-failure probability is therefore exactly the family alpha, by the
union bound over the per-relation allocations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.conformance.differential import differential_relations
from repro.conformance.oracles import ErrorBudget
from repro.conformance.relations import Relation, RelationContext, RelationReport
from repro.conformance.seeds import seed_identity
from repro.runtime.seeding import SeedLike, as_seed_sequence
from repro.telemetry.ledger import RunLedger

#: The documented family-wise false-failure probability per suite run.
DEFAULT_FAMILY_ALPHA = 1e-6


def all_relations() -> List[Relation]:
    """Differential harnesses first, then metamorphic relations."""
    from repro.conformance.relations import metamorphic_relations

    return differential_relations() + metamorphic_relations()


def relation_seed(master: SeedLike, index: int) -> np.random.SeedSequence:
    """Child seed for relation ``index``: master fan-out, position-stable.

    Seeds are keyed by registry *position* so that replaying relation i
    needs only the master entropy and the index — the identity each
    report records.
    """
    ss = as_seed_sequence(master)
    return np.random.SeedSequence(
        ss.entropy, spawn_key=tuple(ss.spawn_key) + (index,)
    )


@dataclasses.dataclass
class SuiteReport:
    """Aggregate outcome of one conformance suite run."""

    reports: List[RelationReport]
    family_alpha: float
    master_seed: Dict[str, object]
    scale: float

    @property
    def passed(self) -> bool:
        """True iff every relation held."""
        return all(r.passed for r in self.reports)

    @property
    def violations(self) -> List[RelationReport]:
        """The failing relations, in registry order."""
        return [r for r in self.reports if not r.passed]

    @property
    def num_statistical(self) -> int:
        """How many relations carried a share of the family alpha."""
        return sum(1 for r in self.reports if r.alpha > 0.0)

    def as_dict(self) -> Dict[str, object]:
        """Summary record (the ledger's ``meta.json`` payload)."""
        return {
            "family_alpha": self.family_alpha,
            "master_seed": self.master_seed,
            "num_relations": len(self.reports),
            "num_statistical": self.num_statistical,
            "num_violations": len(self.violations),
            "passed": self.passed,
            "scale": self.scale,
        }


def run_suite(
    relations: Optional[Sequence[Relation]] = None,
    master_seed: SeedLike = 0,
    family_alpha: float = DEFAULT_FAMILY_ALPHA,
    ledger: Optional[RunLedger] = None,
    budget: Optional[ErrorBudget] = None,
    scale: float = 1.0,
) -> SuiteReport:
    """Run the conformance relations and return the aggregate report.

    Parameters
    ----------
    relations:
        Relations to run; defaults to the full registry (differential
        then metamorphic).  Order determines each relation's seed.
    master_seed:
        Entropy for the suite-level seed fan-out.  Every relation's
        exact child seed is recorded in its report.
    family_alpha:
        Total false-failure probability for the whole run, split evenly
        across the statistical relations.
    ledger:
        When given, one JSONL record is appended per relation as it
        completes (crash-safe, like trial runs) and the suite summary
        is written to ``meta.json`` at the end.
    budget:
        The family :class:`ErrorBudget` to register against.  Passing
        an existing budget (e.g. across a resume) exercises the
        idempotent-registration guarantee: each relation name registers
        its alpha exactly once no matter how many times the suite runs.
    scale:
        Sample-size multiplier forwarded to every
        :class:`RelationContext` (the ``--smoke`` tier runs at 0.1).
    """
    if relations is None:
        relations = all_relations()
    names = [r.name for r in relations]
    if len(set(names)) != len(names):
        raise ValueError("relation names must be unique")
    budget = ErrorBudget(total=family_alpha) if budget is None else budget
    num_statistical = sum(1 for r in relations if r.statistical)
    per_relation = family_alpha / num_statistical if num_statistical else 0.0

    master = as_seed_sequence(master_seed)
    reports: List[RelationReport] = []
    for index, relation in enumerate(relations):
        alpha = 0.0
        if relation.statistical:
            alpha = budget.register(relation.name, per_relation)
        ctx = RelationContext(
            relation_seed(master, index), alpha=alpha, scale=scale
        )
        report = relation.run(ctx)
        reports.append(report)
        if ledger is not None:
            record = report.as_dict()
            record["index"] = index
            ledger.append(record)

    suite = SuiteReport(
        reports=reports,
        family_alpha=family_alpha,
        master_seed=seed_identity(master),
        scale=scale,
    )
    if ledger is not None:
        meta = suite.as_dict()
        meta["kind"] = "conformance"
        meta["budget"] = budget.summary()
        ledger.write_meta(meta)
    return suite

"""Pytest integration for the conformance oracles.

Loaded via ``pytest_plugins = ["repro.conformance.pytest_plugin"]`` in
``tests/conftest.py``, this plugin gives the statistical test tier three
things:

* an ``@statistical_test(alpha=...)`` marker that declares a test's
  false-failure probability and registers it — by nodeid, idempotently —
  with one session-wide :class:`~repro.conformance.oracles.ErrorBudget`
  whose cap is the ini option ``conformance_family_alpha`` (default
  1e-6, matching docs/TESTING.md);
* a ``stat`` fixture: a :class:`StatContext` bound to the test's
  registered alpha, with ``stat.check(...)`` routing through the oracle
  constructors and ``stat.rng(label)`` capturing every numpy seed the
  test draws;
* failure forensics: when a statistical test fails, its report grows a
  ``conformance seeds`` section with copy-pasteable ``SeedSequence``
  reconstruction lines, and the terminal summary prints the family-wise
  alpha accounting for the whole run.

A test that requests ``stat`` without the marker fails collection-time
semantics loudly (errors in the fixture), so nobody consumes family
budget implicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.conformance import oracles as orc
from repro.conformance.seeds import SeedRegistry
from repro.runtime.seeding import SeedLike

#: Marker name; ``@statistical_test(alpha=...)`` is sugar for it.
MARKER = "statistical"

#: Default family-wise false-failure probability per pytest run.
DEFAULT_FAMILY_ALPHA = 1e-6

#: Per-test default when the marker gives no alpha: 1/50th of the family
#: cap, leaving headroom for ~50 statistical tests per run.
DEFAULT_TEST_ALPHA = 2e-8


def statistical_test(alpha: float = DEFAULT_TEST_ALPHA):
    """Decorator declaring a statistical test and its alpha.

    ``@statistical_test(alpha=2e-8)`` is ``@pytest.mark.statistical(
    alpha=2e-8)`` with the conformance default spelled out; the plugin
    registers the alpha against the session budget before the test runs.
    For a hypothesis-driven test the declared alpha must cover *all*
    examples the strategy draws (split it across max_examples inside the
    test body when each example performs its own check).
    """
    return pytest.mark.statistical(alpha=alpha)


class StatContext:
    """Per-test statistical context: alpha, seed capture, check routing."""

    def __init__(self, nodeid: str, alpha: float) -> None:
        self.nodeid = nodeid
        self.alpha = float(alpha)
        self.seeds = SeedRegistry()
        self.results: List[orc.CheckResult] = []
        self._alpha_spent = 0.0

    # -- seeding -------------------------------------------------------
    def rng(self, label: str, seed: SeedLike):
        """A Generator whose exact seed is captured for failure output."""
        return self.seeds.rng(label, seed)

    def capture(self, label: str, seed: SeedLike):
        """Record a seed used indirectly (e.g. handed to an oracle)."""
        return self.seeds.capture(label, seed)

    # -- alpha accounting ----------------------------------------------
    def split_alpha(self, parts: int) -> float:
        """An even share of this test's alpha for one of ``parts`` checks."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        return self.alpha / parts

    def check(self, result: orc.CheckResult) -> orc.CheckResult:
        """Record a check, enforce the test's alpha ledger, and assert it."""
        self._alpha_spent += result.alpha
        if self._alpha_spent > self.alpha * (1.0 + 1e-12):
            raise RuntimeError(
                f"{self.nodeid} overspent its declared alpha: "
                f"{self._alpha_spent:g} > {self.alpha:g} — raise the marker "
                "alpha or split it across fewer checks"
            )
        self.results.append(result)
        return result.require()

    # -- sugar over the oracle constructors ----------------------------
    def check_bernoulli(self, successes, trials, p, **kw) -> orc.CheckResult:
        """Assert the true rate is ``p`` at this test's (split) alpha."""
        kw.setdefault("alpha", self.alpha)
        return self.check(orc.check_bernoulli(successes, trials, p, **kw))

    def check_within(self, successes, trials, lo, hi, **kw) -> orc.CheckResult:
        """Assert the true rate lies in ``[lo, hi]``."""
        kw.setdefault("alpha", self.alpha)
        return self.check(orc.check_within(successes, trials, lo, hi, **kw))

    def check_at_most(self, successes, trials, bound, **kw) -> orc.CheckResult:
        """Assert the true rate is at most ``bound``."""
        kw.setdefault("alpha", self.alpha)
        return self.check(orc.check_at_most(successes, trials, bound, **kw))

    def check_at_least(self, successes, trials, bound, **kw) -> orc.CheckResult:
        """Assert the true rate is at least ``bound``."""
        kw.setdefault("alpha", self.alpha)
        return self.check(orc.check_at_least(successes, trials, bound, **kw))

    def check_two_sample_less(self, sa, ma, sb, mb, **kw) -> orc.CheckResult:
        """Assert ``rate_a <= rate_b`` across two independent samples."""
        kw.setdefault("alpha", self.alpha)
        return self.check(orc.check_two_sample_less(sa, ma, sb, mb, **kw))

    def check_two_sample_equal(self, sa, ma, sb, mb, **kw) -> orc.CheckResult:
        """Assert two independent samples share one true rate."""
        kw.setdefault("alpha", self.alpha)
        return self.check(orc.check_two_sample_equal(sa, ma, sb, mb, **kw))


# ----------------------------------------------------------------------
# Plugin hooks
# ----------------------------------------------------------------------
def pytest_addoption(parser) -> None:
    """Register the family-wise alpha ini option."""
    parser.addini(
        "conformance_family_alpha",
        help="family-wise false-failure probability cap for one pytest run "
        "(all @statistical_test alphas must sum below it)",
        default=str(DEFAULT_FAMILY_ALPHA),
    )


def pytest_configure(config) -> None:
    """Create the session budget and document the marker."""
    config.addinivalue_line(
        "markers",
        "statistical(alpha): statistical test whose false-failure "
        "probability is alpha; registered with the session-wide "
        "conformance ErrorBudget",
    )
    total = float(config.getini("conformance_family_alpha"))
    config._conformance_budget = orc.ErrorBudget(total=total)


def _marker_alpha(item) -> Optional[float]:
    marker = item.get_closest_marker(MARKER)
    if marker is None:
        return None
    return float(marker.kwargs.get("alpha", DEFAULT_TEST_ALPHA))


def pytest_runtest_setup(item) -> None:
    """Register every marked test's alpha before it runs.

    Registration is keyed by nodeid and idempotent, so reruns (pytest
    ``--lf``, flaky-retry plugins) never double-charge the family budget,
    while two tests can never silently share one allocation.  Hypothesis
    tests therefore need only the marker, not the ``stat`` fixture — the
    budget sees them either way.
    """
    alpha = _marker_alpha(item)
    if alpha is None:
        return
    budget: orc.ErrorBudget = item.config._conformance_budget
    budget.register(item.nodeid, alpha)


@pytest.fixture
def stat(request) -> StatContext:
    """The statistical context for a ``@statistical_test`` item."""
    alpha = _marker_alpha(request.node)
    if alpha is None:
        raise RuntimeError(
            "the `stat` fixture requires the @statistical_test(alpha=...) "
            "marker — statistical checks must declare their alpha so the "
            "family-wise budget stays accountable"
        )
    budget: orc.ErrorBudget = request.config._conformance_budget
    registered = budget.register(request.node.nodeid, alpha)
    ctx = StatContext(request.node.nodeid, registered)
    request.node._conformance_stat = ctx
    return ctx


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach the seed-reproduction recipe to failing statistical tests."""
    outcome = yield
    report = outcome.get_result()
    ctx: Optional[StatContext] = getattr(item, "_conformance_stat", None)
    if ctx is None or report.when != "call" or not report.failed:
        return
    lines = [f"declared alpha: {ctx.alpha:g}"]
    if ctx.results:
        lines.append("checks:")
        lines.extend(f"  {r.message()}" for r in ctx.results)
    lines.append("seeds:")
    lines.append(
        "  " + ctx.seeds.report().replace("\n", "\n  ")
        if len(ctx.seeds)
        else "  (no seeds captured)"
    )
    report.sections.append(("conformance seeds", "\n".join(lines)))


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    """Print the family-wise alpha accounting for the run."""
    budget: Optional[orc.ErrorBudget] = getattr(
        config, "_conformance_budget", None
    )
    if budget is None or not budget.registrations:
        return
    summary: Dict[str, object] = budget.summary()
    terminalreporter.write_sep("-", "conformance error budget")
    terminalreporter.write_line(
        f"statistical tests: {summary['checks']}; family-wise alpha spent "
        f"{summary['spent']:.3e} of {summary['total']:.1e} "
        f"({summary['remaining']:.3e} unallocated)"
    )

"""Declarative metamorphic relations over PUFs, oracles, and bounds.

A *metamorphic relation* is an executable identity that must hold
between two runs of the system under a known input transformation —
"negating the last challenge bit negates an unbiased arbiter's margin",
"a 1-XOR PUF is an arbiter PUF", "more noise means more flips".  Each
relation here is a :class:`Relation` object: a name, a kind, a claim,
and a check function that receives a seeded :class:`RelationContext`
and either returns a details dict or raises.  The suite runner
(:mod:`repro.conformance.suite`) enumerates them, derives each one's
seed from the master ``SeedSequence`` fan-out, allocates statistical
relations an alpha from the family-wise :class:`~repro.conformance
.oracles.ErrorBudget`, and writes one ledger record per relation.

Deterministic relations assert exact (bit-identical) facts and consume
no alpha; statistical relations route every stochastic comparison
through the :mod:`repro.conformance.oracles` checks, so the suite's
total false-failure probability is the documented family bound.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.conformance import oracles as orc
from repro.conformance.seeds import seed_identity
from repro.runtime.seeding import SeedLike, as_seed_sequence


class ConformanceViolation(AssertionError):
    """A relation's contract is refuted by the system under test."""


class RelationContext:
    """Per-relation execution context: seeding, alpha, and scale.

    Parameters
    ----------
    seed:
        The relation's own :class:`~numpy.random.SeedSequence` (a child
        of the suite's master seed fan-out).  Sub-streams are spawned
        deterministically via :meth:`rng`.
    alpha:
        The relation's total false-failure budget; 0.0 for deterministic
        relations (any statistical check request then fails loudly).
    scale:
        Sample-size multiplier; the smoke tier runs at ``scale < 1``.
    """

    def __init__(
        self, seed: SeedLike, alpha: float = 0.0, scale: float = 1.0
    ) -> None:
        self.seed = as_seed_sequence(seed)
        self.alpha = float(alpha)
        self.scale = float(scale)
        self.checks: List[orc.CheckResult] = []
        self._spawned = 0
        self._alpha_spent = 0.0

    def rng(self) -> np.random.Generator:
        """A fresh Generator from the next spawned child seed."""
        child = np.random.SeedSequence(
            self.seed.entropy,
            spawn_key=tuple(self.seed.spawn_key) + (self._spawned,),
        )
        self._spawned += 1
        return np.random.default_rng(child)

    def samples(self, full: int, minimum: int = 512) -> int:
        """Scale a full-tier sample size, never below ``minimum``."""
        return max(minimum, int(full * self.scale))

    def split_alpha(self, parts: int) -> float:
        """An even share of this relation's alpha for one of ``parts`` checks."""
        if self.alpha <= 0.0:
            raise ConformanceViolation(
                "deterministic relation attempted a statistical check "
                "(no alpha allocated)"
            )
        if parts <= 0:
            raise ValueError("parts must be positive")
        return self.alpha / parts

    def check(self, result: orc.CheckResult) -> orc.CheckResult:
        """Record a statistical check, enforce the alpha ledger, require it."""
        self._alpha_spent += result.alpha
        if self._alpha_spent > self.alpha * (1.0 + 1e-12):
            raise ConformanceViolation(
                f"relation overspent its alpha: {self._alpha_spent:g} > {self.alpha:g}"
            )
        self.checks.append(result)
        return result.require()


@dataclasses.dataclass
class Relation:
    """One conformance relation: a named, seeded, reportable contract."""

    name: str  #: unique id, used for ledger records and budget registration
    kind: str  #: "metamorphic" or "differential"
    description: str  #: the contract in one sentence
    check: Callable[[RelationContext], Optional[Dict[str, object]]]
    statistical: bool = False  #: True iff the relation consumes alpha

    def run(self, ctx: RelationContext) -> "RelationReport":
        """Execute against the installed package; never raises."""
        start = time.perf_counter()
        details: Dict[str, object] = {}
        error: Optional[str] = None
        try:
            returned = self.check(ctx)
            if returned:
                details.update(returned)
            passed = True
        except AssertionError as exc:  # includes ConformanceViolation
            passed, error = False, str(exc)
        except Exception as exc:  # a crash is a violation, not a skip
            passed, error = False, f"{type(exc).__name__}: {exc}"
        return RelationReport(
            name=self.name,
            kind=self.kind,
            description=self.description,
            passed=passed,
            error=error,
            alpha=ctx.alpha,
            seed=seed_identity(ctx.seed),
            seconds=time.perf_counter() - start,
            details=details,
            checks=[c.as_dict() for c in ctx.checks],
        )


@dataclasses.dataclass
class RelationReport:
    """JSON-ready outcome of one relation run."""

    name: str
    kind: str
    description: str
    passed: bool
    error: Optional[str]
    alpha: float
    seed: Dict[str, object]
    seconds: float
    details: Dict[str, object]
    checks: List[Dict[str, object]]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for the JSONL ledger."""
        return dataclasses.asdict(self)

    def summary(self) -> str:
        """One status line for the CLI table."""
        status = "ok" if self.passed else "VIOLATED"
        return f"{status:8s} {self.kind:12s} {self.name}"


# ----------------------------------------------------------------------
# Metamorphic relations
# ----------------------------------------------------------------------
def _random_challenges(rng: np.random.Generator, m: int, n: int) -> np.ndarray:
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


def _arbiter_negation_symmetry(ctx: RelationContext) -> Dict[str, object]:
    """Flipping the last challenge bit negates an unbiased arbiter margin.

    Every parity feature ``phi_i = prod_{j>=i} c_j`` (i < n) contains the
    last bit, so negating it negates the whole feature vector except the
    bias column; with the bias weight pinned to zero the delay margin —
    and hence the response — must negate *bit-exactly* (IEEE negation
    commutes with addition).
    """
    from repro.pufs.arbiter import ArbiterPUF

    rng = ctx.rng()
    n = 32
    weights = rng.normal(0.0, 1.0, size=n + 1)
    weights[-1] = 0.0  # unbiased: kill the constant column
    puf = ArbiterPUF(n, weights=weights)
    c = _random_challenges(ctx.rng(), 2048, n)
    flipped = c.copy()
    flipped[:, -1] = -flipped[:, -1]
    margin, margin_f = puf.raw_margin(c), puf.raw_margin(flipped)
    if np.any(margin == 0.0):
        raise ConformanceViolation("degenerate zero margin in negation check")
    if not np.array_equal(margin_f, -margin):
        raise ConformanceViolation(
            "last-bit flip did not negate the unbiased arbiter margin bit-exactly"
        )
    if not np.array_equal(puf.eval(flipped), -puf.eval(c)):
        raise ConformanceViolation("responses did not negate under last-bit flip")
    return {"challenges": int(c.shape[0]), "n": n}


def _xor_k1_is_arbiter(ctx: RelationContext) -> Dict[str, object]:
    """A 1-chain XOR arbiter PUF is exactly its single arbiter chain."""
    from repro.pufs.arbiter import ArbiterPUF
    from repro.pufs.xor_arbiter import XORArbiterPUF

    n = 48
    xor = XORArbiterPUF(n, 1, ctx.rng())
    plain = ArbiterPUF(n, weights=xor.chains[0].weights)
    c = _random_challenges(ctx.rng(), 4096, n)
    if not np.array_equal(xor.eval(c), plain.eval(c)):
        raise ConformanceViolation("XOR k=1 response differs from its arbiter chain")
    if not np.array_equal(xor.eval(c), xor.chains[0].eval(c)):
        raise ConformanceViolation("XOR k=1 response differs from chains[0].eval")
    return {"challenges": int(c.shape[0]), "n": n}


def _br_ablation_is_ltf(ctx: RelationContext) -> Dict[str, object]:
    """At ``interaction_scale=0`` the BR PUF collapses to an explicit LTF.

    The ablated device's settling margin is the affine form
    ``offset + sum(a_i) + c . b`` — the same two addends the LTF
    ``sgn(c . b - theta)`` with ``theta = -(offset + sum(a_i))``
    computes, so the responses must agree on every challenge.
    """
    from repro.booleanfuncs.ltf import LTF
    from repro.pufs.bistable_ring import BistableRingPUF

    n = 24
    puf = BistableRingPUF(n, ctx.rng(), interaction_scale=0.0)
    theta = -(puf.global_offset + float(np.sum(puf.bias_terms)))
    ltf = LTF(puf.linear_weights, theta, name="br_ablation")
    c = _random_challenges(ctx.rng(), 4096, n)
    if not np.array_equal(puf.eval(c), ltf(c)):
        raise ConformanceViolation(
            "interaction-free BR PUF disagrees with its explicit LTF form"
        )
    return {"challenges": int(c.shape[0]), "n": n}


def _br_ablation_passes_halfspace_test(ctx: RelationContext) -> Dict[str, object]:
    """The halfspace tester must *accept* the interaction-free BR PUF.

    The property-testing side of the ablation: with the non-linear terms
    off, the device is a halfspace, so a MORS tester run at confidence
    ``delta = alpha`` accepts except with probability ``<= alpha``.
    """
    from repro.property_testing.halfspace_tester import HalfspaceTester
    from repro.pufs.bistable_ring import BistableRingPUF

    puf = BistableRingPUF(32, ctx.rng(), interaction_scale=0.0)
    tester = HalfspaceTester(eps=0.1, delta=ctx.alpha)
    result = tester.test_function(
        32, puf.eval, m=ctx.samples(60_000, minimum=20_000), rng=ctx.rng()
    )
    if not result.accepted:
        raise ConformanceViolation(
            f"tester rejected an actual halfspace: {result.summary()}"
        )
    return {"tester": result.summary(), "m": result.examples_used}


def _br_default_far_from_halfspace(ctx: RelationContext) -> Dict[str, object]:
    """With interactions on, the BR PUF is epsilon-far from every LTF.

    The Table III effect the paper reproduces: the tester must *reject*
    a strongly-interacting BR PUF.  (Rejection power comes from the
    MORS completeness guarantee at this sample size.)
    """
    from repro.property_testing.halfspace_tester import HalfspaceTester
    from repro.pufs.bistable_ring import BistableRingPUF

    puf = BistableRingPUF(32, ctx.rng(), interaction_scale=0.9)
    tester = HalfspaceTester(eps=0.05, delta=0.05)
    result = tester.test_function(
        32, puf.eval, m=ctx.samples(120_000, minimum=30_000), rng=ctx.rng()
    )
    if result.accepted:
        raise ConformanceViolation(
            f"tester accepted a far-from-halfspace BR PUF: {result.summary()}"
        )
    return {"tester": result.summary(), "m": result.examples_used}


def _oracle_noise_conformance(ctx: RelationContext) -> Dict[str, object]:
    """``ExampleOracle(noise_rate=p)`` flips labels at exactly rate p."""
    from repro.learning.oracles import ExampleOracle

    def parity(x: np.ndarray) -> np.ndarray:
        return np.prod(x, axis=1).astype(np.int8)

    rates = (0.05, 0.2, 0.4)
    alpha_each = ctx.split_alpha(len(rates))
    m = ctx.samples(40_000, minimum=8_000)
    observed = {}
    for p in rates:
        oracle = ExampleOracle(8, parity, ctx.rng(), noise_rate=p)
        x, y = oracle.draw(m)
        flips = int(np.sum(y != parity(x)))
        ctx.check(
            orc.check_bernoulli(
                flips, m, p, alpha_each, name=f"oracle_noise_rate[p={p}]"
            )
        )
        observed[str(p)] = flips / m
    return {"m": m, "observed": observed}


def _oracle_noise_monotonicity(ctx: RelationContext) -> Dict[str, object]:
    """A noisier example oracle flips strictly more labels."""
    from repro.learning.oracles import ExampleOracle

    def parity(x: np.ndarray) -> np.ndarray:
        return np.prod(x, axis=1).astype(np.int8)

    m = ctx.samples(20_000, minimum=4_000)
    counts = []
    for p in (0.1, 0.3):
        oracle = ExampleOracle(8, parity, ctx.rng(), noise_rate=p)
        x, y = oracle.draw(m)
        counts.append(int(np.sum(y != parity(x))))
    ctx.check(
        orc.check_two_sample_less(
            counts[0], m, counts[1], m, ctx.alpha, name="noise_rate_monotone"
        )
    )
    return {"m": m, "flips": counts}


def _puf_noise_sigma_monotonicity(ctx: RelationContext) -> Dict[str, object]:
    """A louder measurement process flips more arbiter responses."""
    from repro.pufs.arbiter import ArbiterPUF

    n = 32
    weights = ctx.rng().normal(0.0, 1.0, size=n + 1)
    m = ctx.samples(20_000, minimum=4_000)
    c = _random_challenges(ctx.rng(), m, n)
    counts = []
    for sigma in (0.2, 1.0):
        puf = ArbiterPUF(n, weights=weights, noise_sigma=sigma)
        flips = int(np.sum(puf.eval(c) != puf.eval_noisy(c, ctx.rng())))
        counts.append(flips)
    ctx.check(
        orc.check_two_sample_less(
            counts[0], m, counts[1], m, ctx.alpha, name="noise_sigma_monotone"
        )
    )
    return {"m": m, "flips": counts}


def _majority_vote_denoises(ctx: RelationContext) -> Dict[str, object]:
    """Majority-voted measurements err no more often than single shots."""
    from repro.pufs.arbiter import ArbiterPUF
    from repro.pufs.noise import majority_vote

    n = 32
    puf = ArbiterPUF(n, ctx.rng(), noise_sigma=0.5)
    m = ctx.samples(8_000, minimum=2_000)
    c = _random_challenges(ctx.rng(), m, n)
    ideal = puf.eval(c)
    single = int(np.sum(puf.eval_noisy(c, ctx.rng()) != ideal))
    voted = int(
        np.sum(majority_vote(puf, c, repetitions=15, rng=ctx.rng()) != ideal)
    )
    ctx.check(
        orc.check_two_sample_less(
            voted, m, single, m, ctx.alpha, name="majority_vote_denoises"
        )
    )
    return {"m": m, "single_flips": single, "voted_flips": voted}


def _fleet_majority_vote_denoises(ctx: RelationContext) -> Dict[str, object]:
    """Batched fleet majority voting errs no more than single shots.

    The fleet analogue of :func:`_majority_vote_denoises`: over the whole
    ``(m, N)`` response plane, majority-voted measurements disagree with
    the ideal plane no more often than one noisy measurement does.
    """
    from repro.pufs.fleet import Fleet, FleetSpec

    spec = FleetSpec("arbiter", 32, 8, noise_sigma=0.5)
    fleet = Fleet.build(spec, int(ctx.rng().integers(0, 2**63)))
    m = ctx.samples(2_000, minimum=500)
    c = _random_challenges(ctx.rng(), m, spec.n)
    ideal = fleet.eval(c)
    cells = m * spec.size
    single = int(np.sum(fleet.eval_noisy(c, ctx.rng()) != ideal))
    voted = int(
        np.sum(fleet.majority_vote(c, repetitions=15, rng=ctx.rng()) != ideal)
    )
    ctx.check(
        orc.check_two_sample_less(
            voted, cells, single, cells, ctx.alpha, name="fleet_majority_vote"
        )
    )
    return {"cells": cells, "single_flips": single, "voted_flips": voted}


def _challenge_sampler_conformance(ctx: RelationContext) -> Dict[str, object]:
    """Uniform challenges are fair; ``biased_challenges(p)`` hits rate p."""
    from repro.pufs.crp import biased_challenges, uniform_challenges

    m, n = ctx.samples(2_000, minimum=500), 32
    alpha_each = ctx.split_alpha(2)
    uniform = uniform_challenges(m, n, ctx.rng())
    ctx.check(
        orc.check_bernoulli(
            int(np.sum(uniform == -1)), m * n, 0.5, alpha_each, name="uniform_fair"
        )
    )
    p = 0.7
    biased = biased_challenges(p)(m, n, ctx.rng())
    ctx.check(
        orc.check_bernoulli(
            int(np.sum(biased == -1)), m * n, p, alpha_each, name=f"biased[p={p}]"
        )
    )
    return {"bits": m * n}


def _bounds_monotone(ctx: RelationContext) -> Dict[str, object]:
    """Every Table I bound shrinks as eps or delta grows (easier targets).

    Sample complexity is monotone non-increasing in both PAC parameters;
    a violation would mean a bound formula was transcribed wrong.
    """
    from repro.pac import PACParameters
    from repro.pac.bounds import (
        general_vc_bound,
        learnpoly_bound,
        lmn_bound_log10,
        perceptron_bound,
        sq_chow_example_bound,
    )

    n, k = 64, 4
    eps_grid = (0.01, 0.05, 0.1, 0.2)
    delta_grid = (0.001, 0.01, 0.1, 0.3)
    bounds = {
        "perceptron": lambda p: perceptron_bound(n, k, p),
        "general_vc": lambda p: general_vc_bound(n, k, p),
        "lmn_log10": lambda p: lmn_bound_log10(n, k, p),
        "learnpoly": lambda p: learnpoly_bound(n, k, p, junta_size=4),
    }
    checked = 0
    for name, fn in bounds.items():
        for delta in delta_grid:
            values = [fn(PACParameters(eps=e, delta=delta)) for e in eps_grid]
            if any(a < b for a, b in zip(values, values[1:])):
                raise ConformanceViolation(f"{name} not monotone in eps: {values}")
            checked += 1
        for eps in eps_grid:
            values = [fn(PACParameters(eps=eps, delta=d)) for d in delta_grid]
            if any(a < b for a, b in zip(values, values[1:])):
                raise ConformanceViolation(f"{name} not monotone in delta: {values}")
            checked += 1
    tau_values = [sq_chow_example_bound(n, t) for t in (0.01, 0.05, 0.2)]
    if any(a < b for a, b in zip(tau_values, tau_values[1:])):
        raise ConformanceViolation(f"sq bound not monotone in tau: {tau_values}")
    return {"grids_checked": checked}


def _eq_sample_growth(ctx: RelationContext) -> Dict[str, object]:
    """Simulated-EQ sample sizes grow with the round and with 1/eps, 1/delta."""
    from repro.learning.oracles import angluin_eq_sample_size

    rounds = [angluin_eq_sample_size(0.05, 0.05, i) for i in range(12)]
    if any(a > b for a, b in zip(rounds, rounds[1:])):
        raise ConformanceViolation(f"EQ sample size not monotone in round: {rounds}")
    if not (
        angluin_eq_sample_size(0.01, 0.05, 3) >= angluin_eq_sample_size(0.1, 0.05, 3)
        and angluin_eq_sample_size(0.05, 0.001, 3)
        >= angluin_eq_sample_size(0.05, 0.1, 3)
    ):
        raise ConformanceViolation("EQ sample size not monotone in (eps, delta)")
    return {"round_sizes": rounds[:5]}


def _parseval_exact(ctx: RelationContext) -> Dict[str, object]:
    """FWHT of a +/-1 truth table satisfies Parseval *exactly*.

    Fourier coefficients of a 2^n table are dyadic rationals with
    denominator 2^n; their squares and sum are exactly representable in
    binary64 at n=8, so ``sum fhat^2 == 1.0`` must hold bit-exactly, and
    the unnormalised transform applied twice must give ``2^n * table``.
    """
    from repro.kernels import fwht

    n = 8
    table = (1 - 2 * ctx.rng().integers(0, 2, size=2**n)).astype(np.float64)
    coeffs = fwht(table)
    energy = float(np.sum(coeffs**2))
    if energy != 1.0:
        raise ConformanceViolation(f"Parseval violated: sum fhat^2 = {energy!r}")
    twice = fwht(fwht(table, normalise=False), normalise=False)
    if not np.array_equal(twice, table * 2**n):
        raise ConformanceViolation("unnormalised FWHT is not a scaled involution")
    return {"n": n}


def _xor_response_is_chain_product(ctx: RelationContext) -> Dict[str, object]:
    """A k-XOR response equals the product of its chains' responses."""
    from repro.pufs.xor_arbiter import XORArbiterPUF

    n, k = 24, 5
    puf = XORArbiterPUF(n, k, ctx.rng())
    c = _random_challenges(ctx.rng(), 2048, n)
    product = np.prod(
        np.stack([chain.eval(c) for chain in puf.chains]), axis=0
    ).astype(np.int8)
    if not np.array_equal(puf.eval(c), product):
        raise ConformanceViolation("XOR response is not the product of chain signs")
    return {"n": n, "k": k, "challenges": int(c.shape[0])}


def _active_adaptive_beats_passive(ctx: RelationContext) -> Dict[str, object]:
    """Adaptive selection is no less accurate than passive at equal budget.

    Over several fresh arbiter instances, uncertainty sampling and the
    passive baseline each spend the same total query budget (metered MQ
    vs EX) against the same held-out test set; the adaptive runs' pooled
    error count must not significantly exceed the passive runs' — the
    access-model ordering of Section IV, measured.  One-sided: the check
    only fires on significant evidence that adaptivity *hurts*.
    """
    from repro.learning.active import make_strategy, run_active_attack
    from repro.pufs.arbiter import ArbiterPUF

    n, total, rounds = 24, 160, 3
    test_size = ctx.samples(1_500, minimum=600)
    adaptive_errors = passive_errors = 0
    for _ in range(rounds):
        puf = ArbiterPUF(n, ctx.rng())
        # One seed per round: both strategies then share the held-out
        # test draw (their selection/fit streams stay independent), so
        # the comparison is paired on everything but the access model.
        seed = int(ctx.rng().integers(0, 2**63))
        runs = {
            name: run_active_attack(
                n,
                puf.eval,
                make_strategy(name),
                (total,),
                batch=20,
                pool_size=512,
                test_size=test_size,
                seed=seed,
            )
            for name in ("uncertainty", "passive")
        }
        adaptive_errors += int(
            round((1.0 - runs["uncertainty"].final_accuracy()) * test_size)
        )
        passive_errors += int(
            round((1.0 - runs["passive"].final_accuracy()) * test_size)
        )
    cells = rounds * test_size
    ctx.check(
        orc.check_two_sample_less(
            adaptive_errors,
            cells,
            passive_errors,
            cells,
            ctx.alpha,
            name="active_adaptive_beats_passive",
        )
    )
    return {
        "budget": total,
        "cells": cells,
        "adaptive_errors": adaptive_errors,
        "passive_errors": passive_errors,
    }


def _reliability_attack_beats_chance(ctx: RelationContext) -> Dict[str, object]:
    """The reliability side channel models noisy XOR PUFs above chance.

    Over several fresh noisy 2-XOR arbiter instances, the CMA-ES
    reliability attack trains from repeated measurements alone and
    predicts a noise-free held-out set; the pooled accuracy must clear
    0.6 — far above the 0.5 of a response-only attacker that ignored
    the side channel, far below the attack's typical 0.9+, so the band
    only fires when the covariance adaptation or the chain-peeling
    recursion actually breaks.  One-sided ``check_at_least`` under the
    relation's share of the family alpha.
    """
    from repro.learning.reliability_attack import CMAReliabilityAttack
    from repro.pufs.xor_arbiter import XORArbiterPUF

    n, k, rounds = 16, 2, 3
    test_size = ctx.samples(1_200, minimum=400)
    correct = 0
    accuracies = []
    for _ in range(rounds):
        puf = XORArbiterPUF(n, k, ctx.rng(), noise_sigma=0.4)
        attack = CMAReliabilityAttack(
            crps=3_000,
            repetitions=9,
            generations=30,
            restarts=3,
            refinement_rounds=2,
        )
        result = attack.run(puf, ctx.rng())
        c = _random_challenges(ctx.rng(), test_size, n)
        hits = int(np.sum(result.predict(c) == puf.eval(c)))
        correct += hits
        accuracies.append(hits / test_size)
    cells = rounds * test_size
    ctx.check(
        orc.check_at_least(
            correct,
            cells,
            0.6,
            ctx.alpha,
            name="reliability_attack_beats_chance",
        )
    )
    return {
        "n": n,
        "k": k,
        "cells": cells,
        "accuracies": [round(a, 4) for a in accuracies],
    }


def metamorphic_relations() -> List[Relation]:
    """The registry of metamorphic relations, in stable order."""
    return [
        Relation(
            "arbiter_last_bit_negation",
            "metamorphic",
            "flipping the last challenge bit negates an unbiased arbiter "
            "margin bit-exactly",
            _arbiter_negation_symmetry,
        ),
        Relation(
            "xor_k1_equals_arbiter",
            "metamorphic",
            "a 1-chain XOR arbiter PUF is exactly its arbiter chain",
            _xor_k1_is_arbiter,
        ),
        Relation(
            "br_ablation_is_ltf",
            "metamorphic",
            "interaction_scale=0 collapses the BR PUF to an explicit LTF",
            _br_ablation_is_ltf,
        ),
        Relation(
            "br_ablation_passes_halfspace_test",
            "metamorphic",
            "the MORS tester accepts the interaction-free BR PUF",
            _br_ablation_passes_halfspace_test,
            statistical=True,
        ),
        Relation(
            "br_default_far_from_halfspace",
            "metamorphic",
            "the MORS tester rejects a strongly-interacting BR PUF (Table III)",
            _br_default_far_from_halfspace,
            statistical=True,
        ),
        Relation(
            "oracle_noise_rate_conformance",
            "metamorphic",
            "ExampleOracle(noise_rate=p) flips labels at exactly rate p",
            _oracle_noise_conformance,
            statistical=True,
        ),
        Relation(
            "oracle_noise_rate_monotonicity",
            "metamorphic",
            "higher oracle noise_rate means more label flips",
            _oracle_noise_monotonicity,
            statistical=True,
        ),
        Relation(
            "puf_noise_sigma_monotonicity",
            "metamorphic",
            "higher measurement noise_sigma means more response flips",
            _puf_noise_sigma_monotonicity,
            statistical=True,
        ),
        Relation(
            "majority_vote_denoises",
            "metamorphic",
            "majority-voted measurements err no more than single shots",
            _majority_vote_denoises,
            statistical=True,
        ),
        Relation(
            "fleet_majority_vote_denoises",
            "metamorphic",
            "batched fleet majority voting errs no more than single shots",
            _fleet_majority_vote_denoises,
            statistical=True,
        ),
        Relation(
            "challenge_sampler_conformance",
            "metamorphic",
            "uniform challenges are fair coins; biased_challenges hits its p",
            _challenge_sampler_conformance,
            statistical=True,
        ),
        Relation(
            "bounds_monotone_in_eps_delta",
            "metamorphic",
            "every Table I bound is monotone non-increasing in eps and delta",
            _bounds_monotone,
        ),
        Relation(
            "eq_sample_size_growth",
            "metamorphic",
            "simulated-EQ sample sizes grow with round index, 1/eps, 1/delta",
            _eq_sample_growth,
        ),
        Relation(
            "parseval_exact",
            "metamorphic",
            "FWHT of a +/-1 truth table satisfies Parseval bit-exactly",
            _parseval_exact,
        ),
        Relation(
            "xor_response_is_chain_product",
            "metamorphic",
            "a k-XOR response is the product of its chains' responses",
            _xor_response_is_chain_product,
        ),
        Relation(
            "active_adaptive_beats_passive",
            "metamorphic",
            "adaptive uncertainty sampling is no less accurate than the "
            "passive baseline at equal query budget",
            _active_adaptive_beats_passive,
            statistical=True,
        ),
        Relation(
            "reliability_attack_beats_chance",
            "metamorphic",
            "the CMA-ES reliability side channel models noisy XOR PUFs "
            "well above chance from repeated measurements alone",
            _reliability_attack_beats_chance,
            statistical=True,
        ),
    ]

"""XOR Arbiter PUFs — composed hardware in the paper's sense.

k arbiter chains receive the same challenge; their responses are XORed
(multiplied in the +/-1 encoding) [Suh & Devadas 2007].  Two regimes matter
for the paper:

* **Uncorrelated chains** (default) — the setting of the bound in [9] and
  of Corollaries 1 and 2: learnability collapses as k grows.
* **Correlated chains** — the RocknRoll setting of [17], where the chains
  intentionally share delay structure; the effective noise sensitivity is
  lower and the LMN algorithm keeps working for large k (the ~75 % accuracy
  result the paper reconciles in Section V-B).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.base import PUF


class XORArbiterPUF(PUF):
    """k-chain XOR Arbiter PUF.

    Parameters
    ----------
    n:
        Challenge length (stages per chain).
    k:
        Number of chains.
    rng:
        Manufacturing randomness.
    correlation:
        In [0, 1).  0 gives independent chains; rho > 0 mixes a shared
        weight vector into every chain: ``w_i = sqrt(1-rho^2) u_i + rho s``
        with u_i, s independent Gaussians, so any two chains' weights have
        correlation rho^2.
    noise_sigma:
        Per-chain measurement noise (each chain's arbiter flips
        independently, which is why XOR PUF reliability degrades with k).
    """

    def __init__(
        self,
        n: int,
        k: int,
        rng: Optional[np.random.Generator] = None,
        correlation: float = 0.0,
        weight_sigma: float = 1.0,
        noise_sigma: float = 0.0,
    ) -> None:
        super().__init__(n, noise_sigma)
        if k <= 0:
            raise ValueError(f"chain count k must be positive, got {k}")
        if not 0.0 <= correlation < 1.0:
            raise ValueError(f"correlation must be in [0, 1), got {correlation}")
        self.k = k
        self.correlation = float(correlation)
        rng = np.random.default_rng() if rng is None else rng
        shared = rng.normal(0.0, weight_sigma, size=n + 1)
        mix = np.sqrt(1.0 - correlation**2)
        self.chains: List[ArbiterPUF] = []
        for _ in range(k):
            own = rng.normal(0.0, weight_sigma, size=n + 1)
            weights = mix * own + correlation * shared
            self.chains.append(ArbiterPUF(n, weights=weights, noise_sigma=noise_sigma))

    # ------------------------------------------------------------------
    def component_features(self, challenges: np.ndarray) -> np.ndarray:
        """Per-component parity features, shape ``(k, m, n+1)``.

        Every chain of a plain XOR arbiter sees the master challenge, so
        this is one ``parity_transform`` broadcast k times (a view, no
        copy).  Subclasses with per-component challenge derivation (the
        CDC-XOR construction) override it; the reliability side-channel
        attack correlates against these features chain by chain, which
        is what lets one attack implementation cover both families.
        """
        challenges = self._check(challenges)
        phi = parity_transform(challenges)
        return np.broadcast_to(phi, (self.k,) + phi.shape)

    def chain_margins(self, challenges: np.ndarray) -> np.ndarray:
        """(m, k) matrix of per-chain noise-free margins."""
        challenges = self._check(challenges)
        phi = parity_transform(challenges)
        weights = np.stack([c.weights for c in self.chains], axis=1)
        return phi @ weights

    def raw_margin(self, challenges: np.ndarray) -> np.ndarray:
        """Product of per-chain margins — its sign is the XOR of chain signs.

        Only the sign of this quantity is meaningful; the magnitude is not
        a physical delay (each chain has its own arbiter).  Noise is
        therefore injected per chain in :meth:`eval_noisy`, not here.
        """
        margins = self.chain_margins(challenges)
        return np.prod(margins, axis=1)

    def eval_noisy(
        self, challenges: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Noisy measurement: each chain's margin is perturbed independently."""
        challenges = self._check(challenges)
        rng = np.random.default_rng() if rng is None else rng
        margins = self.chain_margins(challenges)
        if self.noise_sigma > 0:
            margins = margins + rng.normal(0.0, self.noise_sigma, size=margins.shape)
        signs = np.where(margins >= 0, 1, -1).astype(np.int8)
        return np.prod(signs, axis=1).astype(np.int8)

    @classmethod
    def rocknroll(
        cls,
        n: int,
        k: int,
        rng: Optional[np.random.Generator] = None,
        correlation: float = 0.95,
        noise_sigma: float = 0.0,
    ) -> "XORArbiterPUF":
        """The RocknRoll construction of [17]: intentionally correlated chains.

        [17] crafts 'provably secure PUFs from less secure ones' by rolling
        one master chain into k strongly correlated copies.  The paper uses
        this to reconcile the bound of [9] (which assumes independent
        chains) with [17]'s successful LMN attacks at k >> ln n: the
        correlation keeps the effective noise sensitivity — and hence the
        LMN degree — low.  See benchmarks/test_lmn_xorpuf.py.
        """
        return cls(
            n,
            k,
            rng=rng,
            correlation=correlation,
            noise_sigma=noise_sigma,
        )

    def __repr__(self) -> str:
        return (
            f"XORArbiterPUF(n={self.n}, k={self.k}, "
            f"correlation={self.correlation:g}, noise_sigma={self.noise_sigma:g})"
        )

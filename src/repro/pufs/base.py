"""The common PUF interface.

A PUF is modelled as a deterministic *ideal* Boolean function plus a
measurement noise process.  The ideal function is what the PAC analysis is
about; the noise process produces the "attribute noise" (metastability,
aging, thermal effects — footnote 1 of the paper) that real CRP collection
has to contend with and that the LMN algorithm tolerates.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.booleanfuncs.function import BooleanFunction


class PUF(abc.ABC):
    """Abstract base class for simulated PUFs.

    Subclasses implement :meth:`raw_margin`, the real-valued analog quantity
    (a delay difference or settling tendency) whose sign is the response.
    Measurement noise is modelled as additive Gaussian noise on that margin,
    so challenges with small margins are exactly the metastable ones — the
    same mechanism silicon exhibits.
    """

    #: standard deviation of the additive measurement noise on the margin;
    #: 0.0 gives a perfectly stable device.
    noise_sigma: float = 0.0

    def __init__(self, n: int, noise_sigma: float = 0.0) -> None:
        if n <= 0:
            raise ValueError(f"challenge length must be positive, got {n}")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.n = n
        self.noise_sigma = float(noise_sigma)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def raw_margin(self, challenges: np.ndarray) -> np.ndarray:
        """The noise-free analog margin for each +/-1 challenge row."""

    # ------------------------------------------------------------------
    def eval(self, challenges: np.ndarray) -> np.ndarray:
        """Ideal (noise-free) +/-1 responses."""
        challenges = self._check(challenges)
        margin = self.raw_margin(challenges)
        return np.where(margin >= 0, 1, -1).astype(np.int8)

    def eval_noisy(
        self, challenges: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """One noisy measurement per challenge row.

        Gaussian noise of standard deviation ``noise_sigma`` is added to the
        margin before taking the sign, so the flip probability of a
        challenge depends on its ideal margin — near-threshold challenges
        are metastable, large-margin challenges are stable.
        """
        challenges = self._check(challenges)
        margin = self.raw_margin(challenges)
        if self.noise_sigma > 0:
            rng = np.random.default_rng() if rng is None else rng
            margin = margin + rng.normal(0.0, self.noise_sigma, size=margin.shape)
        return np.where(margin >= 0, 1, -1).astype(np.int8)

    def as_boolean_function(self) -> BooleanFunction:
        """The ideal response function as a :class:`BooleanFunction`."""
        return BooleanFunction(
            self.n, lambda x: self.eval(x), name=type(self).__name__
        )

    # ------------------------------------------------------------------
    def _check(self, challenges: np.ndarray) -> np.ndarray:
        challenges = np.asarray(challenges)
        if challenges.ndim == 1:
            challenges = challenges[None, :]
        if challenges.ndim != 2 or challenges.shape[1] != self.n:
            raise ValueError(
                f"{type(self).__name__} expects (m, {self.n}) challenges, "
                f"got shape {challenges.shape}"
            )
        return challenges

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, noise_sigma={self.noise_sigma:g})"

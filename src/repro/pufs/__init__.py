"""Simulated Physically Unclonable Functions (PUFs).

The paper's experiments run against silicon PUFs (Arbiter / XOR Arbiter
PUFs, and Bistable Ring PUFs on a Cyclone IV FPGA).  We have no silicon, so
this package implements the standard behavioural models from the
literature:

* :class:`ArbiterPUF` — the additive delay model [Gassend et al. 2004],
  which makes the PUF a linear threshold function over the parity-
  transformed challenge.
* :class:`XORArbiterPUF` — k parallel arbiter chains XORed [Suh & Devadas
  2007], with an option for *correlated* chains (the RocknRoll construction
  of [17] that the paper contrasts with the bound of [9]).
* :class:`BistableRingPUF` — a behavioural model with tunable non-linear
  stage interactions; at zero interaction it degenerates to an LTF, at the
  default setting it reproduces the "far from any halfspace" behaviour the
  paper measures (Tables II and III).
* :class:`FeedForwardArbiterPUF` — a classic non-linear arbiter variant,
  included as an additional non-LTF target.

All PUFs share the :class:`PUF` interface: challenges and responses are
+/-1 arrays (chi(0)=+1, chi(1)=-1), and every PUF exposes both a noise-free
ideal evaluation and a noisy measurement model.
"""

from repro.pufs.base import PUF
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.pufs.cdc_xor import (
    CDCXORArbiterPUF,
    default_shifts,
    derive_component_challenges,
)
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.feed_forward import FeedForwardArbiterPUF
from repro.pufs.interpose import InterposePUF
from repro.pufs.ring_oscillator import (
    RingOscillatorPUF,
    predict_from_scores,
    sorting_attack,
)
from repro.pufs.crp import CRPSet, generate_crps, uniform_challenges, biased_challenges
from repro.pufs.fleet import (
    FLEET_FAMILIES,
    Fleet,
    FleetSpec,
    eval_instance,
    instance_margin,
)
from repro.pufs.noise import majority_vote, stable_challenge_mask, collect_stable_crps
from repro.pufs.io import load_puf, save_puf
from repro.pufs.metrics import (
    uniformity,
    response_bias,
    reliability,
    uniqueness,
    expected_bias,
    bit_aliasing,
    fleet_bit_aliasing,
    fleet_reliability,
    fleet_uniformity,
    fleet_uniqueness,
    response_plane_uniqueness,
    xor_reliability_prediction,
)

__all__ = [
    "PUF",
    "ArbiterPUF",
    "XORArbiterPUF",
    "CDCXORArbiterPUF",
    "default_shifts",
    "derive_component_challenges",
    "BistableRingPUF",
    "FeedForwardArbiterPUF",
    "InterposePUF",
    "RingOscillatorPUF",
    "predict_from_scores",
    "sorting_attack",
    "parity_transform",
    "FLEET_FAMILIES",
    "Fleet",
    "FleetSpec",
    "eval_instance",
    "instance_margin",
    "CRPSet",
    "generate_crps",
    "uniform_challenges",
    "biased_challenges",
    "majority_vote",
    "stable_challenge_mask",
    "collect_stable_crps",
    "load_puf",
    "save_puf",
    "uniformity",
    "response_bias",
    "reliability",
    "uniqueness",
    "expected_bias",
    "bit_aliasing",
    "fleet_bit_aliasing",
    "fleet_reliability",
    "fleet_uniformity",
    "fleet_uniqueness",
    "response_plane_uniqueness",
    "xor_reliability_prediction",
]

"""Standard PUF quality metrics.

These are the figures of merit hardware papers report (uniformity,
reliability, uniqueness) plus the *expected bias* notion from [17] that the
paper invokes when reconciling the LMN results of [17] with the bound of
[9] (Section III-A, point 2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.kernels.backend import get_backend
from repro.pufs.base import PUF
from repro.pufs.crp import uniform_challenges
from repro.pufs.fleet import Fleet
from repro.pufs.noise import repeated_measurements
from repro.telemetry.meter import unmetered


def uniformity(responses: np.ndarray) -> float:
    """Fraction of -1 responses (i.e. logical 1s); ideal is 0.5."""
    responses = np.asarray(responses)
    if responses.size == 0:
        raise ValueError("need at least one response")
    return float(np.mean(responses == -1))


def response_bias(responses: np.ndarray) -> float:
    """E[f] estimated from responses; 0 is unbiased, +/-1 is constant."""
    responses = np.asarray(responses)
    if responses.size == 0:
        raise ValueError("need at least one response")
    return float(np.mean(responses))


def reliability(
    puf: PUF,
    m: int = 1000,
    repetitions: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Average agreement of noisy measurements with the majority response.

    1.0 means perfectly stable; silicon arbiter PUFs are typically ~0.95+.
    """
    rng = np.random.default_rng() if rng is None else rng
    challenges = uniform_challenges(m, puf.n, rng)
    meas = repeated_measurements(puf, challenges, repetitions, rng)
    sums = np.sum(meas.astype(np.int32), axis=0)
    majority = np.where(sums >= 0, 1, -1)
    return float(np.mean(meas == majority[None, :]))


def uniqueness(
    pufs: Sequence[PUF],
    m: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Mean pairwise inter-chip Hamming distance of responses; ideal 0.5."""
    if len(pufs) < 2:
        raise ValueError("uniqueness needs at least two PUF instances")
    n = pufs[0].n
    if any(p.n != n for p in pufs):
        raise ValueError("all PUF instances must share the challenge length")
    rng = np.random.default_rng() if rng is None else rng
    challenges = uniform_challenges(m, n, rng)
    responses = [p.eval(challenges) for p in pufs]
    dists = []
    for i in range(len(pufs)):
        for j in range(i + 1, len(pufs)):
            dists.append(np.mean(responses[i] != responses[j]))
    return float(np.mean(dists))


def bit_aliasing(
    pufs: Sequence[PUF],
    m: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-challenge aliasing across instances: fraction of chips answering -1.

    Values near 0 or 1 flag challenges whose response is determined by the
    design rather than by manufacturing variation (an attacker predicts
    them without any per-chip learning); ideal is 0.5 everywhere.
    Returns a length-``m`` vector for ``m`` shared random challenges.
    """
    if len(pufs) < 2:
        raise ValueError("bit aliasing needs at least two PUF instances")
    n = pufs[0].n
    if any(p.n != n for p in pufs):
        raise ValueError("all PUF instances must share the challenge length")
    rng = np.random.default_rng() if rng is None else rng
    challenges = uniform_challenges(m, n, rng)
    responses = np.stack([p.eval(challenges) for p in pufs], axis=0)
    return np.mean(responses == -1, axis=0)


def _fleet_challenges(
    fleet: Fleet, m: int, rng: Optional[np.random.Generator]
) -> np.ndarray:
    if m <= 0:
        raise ValueError("challenge count must be positive")
    rng = np.random.default_rng() if rng is None else rng
    return uniform_challenges(m, fleet.n, rng)


def fleet_uniformity(
    fleet: Fleet,
    m: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-instance uniformity of a fleet — a length-N vector of the
    fraction of -1 responses, from one stacked evaluation (ideal 0.5).

    Quality metrics are not adversary queries, so the evaluation is
    unmetered (matching the per-instance metric helpers, which never
    recorded into the QueryMeter either).
    """
    challenges = _fleet_challenges(fleet, m, rng)
    with unmetered():
        responses = fleet.eval(challenges)
    return np.mean(responses == -1, axis=0)


def response_plane_uniqueness(responses: np.ndarray) -> float:
    """Mean pairwise inter-chip Hamming distance of an ``(m, N)`` ±1
    response plane.

    Computed from the plane's Gram matrix:
    ``disagreements_ij = (m - (R^T R)_ij) / 2`` — exact integers, since
    ±1 dot products are integers and m < 2^53.  Pairs are averaged in
    the same i < j order as :func:`uniqueness`, so for the same
    challenge draw the result is bit-identical to the per-instance loop.
    """
    responses = np.asarray(responses)
    if responses.ndim != 2 or responses.shape[1] < 2:
        raise ValueError("uniqueness needs an (m, N >= 2) response plane")
    m, size = responses.shape
    r = responses.astype(np.float64)
    gram = get_backend().gemm(np.ascontiguousarray(r.T), r)
    diff = (m - gram) / 2.0  # exact pairwise disagreement counts
    upper = diff[np.triu_indices(size, k=1)]
    return float(np.mean(upper / m))


def fleet_uniqueness(
    fleet: Fleet,
    m: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Mean pairwise inter-chip Hamming distance over the fleet; ideal 0.5.

    One stacked evaluation, then :func:`response_plane_uniqueness`.
    """
    if len(fleet) < 2:
        raise ValueError("uniqueness needs at least two PUF instances")
    challenges = _fleet_challenges(fleet, m, rng)
    with unmetered():
        responses = fleet.eval(challenges)
    return response_plane_uniqueness(responses)


def fleet_bit_aliasing(
    fleet: Fleet,
    m: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-challenge aliasing across the fleet (fraction of chips answering
    -1), from one stacked evaluation; ideal 0.5 everywhere."""
    if len(fleet) < 2:
        raise ValueError("bit aliasing needs at least two PUF instances")
    challenges = _fleet_challenges(fleet, m, rng)
    with unmetered():
        responses = fleet.eval(challenges)
    return np.mean(responses == -1, axis=1)


def fleet_reliability(
    fleet: Fleet,
    m: int = 1000,
    repetitions: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-instance reliability of the whole fleet in one batched pass.

    A length-N vector: instance i's mean agreement of its noisy
    measurements with its per-challenge majority response, the same
    statistic :func:`reliability` computes per PUF.  Only the repetition
    axis is a Python loop.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    challenges = _fleet_challenges(fleet, m, rng)
    rng = np.random.default_rng() if rng is None else rng
    with unmetered():
        meas = np.stack(
            [fleet.eval_noisy(challenges, rng) for _ in range(repetitions)],
            axis=0,
        )  # (repetitions, m, N)
    sums = np.sum(meas.astype(np.int32), axis=0)
    majority = np.where(sums >= 0, 1, -1)
    return np.mean(meas == majority[None, :, :], axis=(0, 1))


def xor_reliability_prediction(chain_flip_rate: float, k: int) -> float:
    """Predicted reliability of a k-XOR PUF from the per-chain flip rate.

    Independent chain flips of rate p compose as
    ``P[XOR stable] = (1 + (1 - 2p)^k) / 2`` — the analytic reason XOR PUF
    reliability collapses with k, which in turn caps the k a designer can
    deploy and puts the bounds of Table I in tension with manufacturability
    (cf. the discussion in [17]).
    """
    if not 0.0 <= chain_flip_rate <= 0.5:
        raise ValueError("chain flip rate must be in [0, 0.5]")
    if k < 1:
        raise ValueError("k must be at least 1")
    return 0.5 * (1.0 + (1.0 - 2.0 * chain_flip_rate) ** k)


def expected_bias(
    puf: PUF,
    m: int = 5000,
    repetitions: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Bias of the *noisy* response function — E[f~] in the sense of [17].

    The attribute noise makes the observable function a randomised one; its
    expectation over measurement noise and uniform challenges is the
    'expected bias' [17] uses to assess hardness.  Estimated by averaging
    noisy measurements.
    """
    rng = np.random.default_rng() if rng is None else rng
    challenges = uniform_challenges(m, puf.n, rng)
    meas = repeated_measurements(puf, challenges, repetitions, rng)
    return float(np.mean(meas))

"""The Arbiter PUF under the additive delay model.

An n-stage arbiter PUF races a rising edge through n switch stages; the
challenge bit of each stage decides whether the two paths go straight or
cross.  Under the standard additive delay model [Gassend et al. 2004] the
final delay difference is linear in the *parity-transformed* challenge

    phi_i(c) = prod_{j=i}^{n-1} c_j   (c in {-1,+1}^n),  phi_n = 1,

so the response ``sgn(w . phi(c))`` is a linear threshold function — the
representation all of Section III of the paper builds on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.booleanfuncs.ltf import LTF
from repro.pufs.base import PUF


def parity_transform(challenges: np.ndarray) -> np.ndarray:
    """Map +/-1 challenges to the (m, n+1) arbiter feature vectors.

    Column ``i`` is ``prod_{j >= i} c_j`` and the last column is the
    constant 1 (it multiplies the bias/threshold weight).
    """
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    m, n = challenges.shape
    phi = np.ones((m, n + 1), dtype=np.float64)
    # Cumulative product from the right: phi[:, i] = prod_{j>=i} c_j.
    phi[:, :n] = np.cumprod(challenges[:, ::-1], axis=1)[:, ::-1]
    return phi


class ArbiterPUF(PUF):
    """A single arbiter chain with Gaussian stage delays.

    Parameters
    ----------
    n:
        Number of stages (challenge bits).
    rng:
        Source of manufacturing randomness; each instance drawn from a
        fresh generator is a distinct "chip".
    weight_sigma:
        Standard deviation of the stage delay differences.
    noise_sigma:
        Measurement noise on the final delay difference (see
        :class:`repro.pufs.base.PUF`).
    weights:
        Explicit ``(n+1,)`` delay weights; overrides ``rng`` when given.
    """

    def __init__(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        weight_sigma: float = 1.0,
        noise_sigma: float = 0.0,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(n, noise_sigma)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (n + 1,):
                raise ValueError(
                    f"explicit weights must have shape ({n + 1},), got {weights.shape}"
                )
            self.weights = weights
        else:
            rng = np.random.default_rng() if rng is None else rng
            self.weights = rng.normal(0.0, weight_sigma, size=n + 1)

    def raw_margin(self, challenges: np.ndarray) -> np.ndarray:
        return parity_transform(challenges) @ self.weights

    def as_feature_ltf(self) -> LTF:
        """The PUF as an LTF *over the feature space* phi(c).

        Note the subtlety the paper leans on: the arbiter PUF is an LTF in
        phi(c), and because phi is a bijection on the hypercube the PUF is
        also expressible as an LTF over a transformed challenge — this is
        what "Arbiter PUFs can be represented by LTFs" [6], [8] means.
        """
        return LTF(self.weights[:-1], -self.weights[-1], name="arbiter_ltf")

"""Ring-Oscillator (RO) PUFs.

An RO PUF compares the frequencies of two challenge-selected ring
oscillators; the response is the sign of the frequency difference.  Unlike
arbiter-type PUFs the challenge space is only the set of oscillator pairs,
and the device leaks a *total order*: an attacker who observes enough
comparisons sorts the oscillators and predicts every remaining pair — a
non-parametric 'ML' attack needing O(m log m) of the m(m-1)/2 possible
CRPs.  Included as the clearest example that CRP-count security arguments
depend on the primitive's structure, not only on generic bounds.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class RingOscillatorPUF:
    """An RO PUF with ``m`` oscillators.

    Challenges are index pairs (i, j), i != j; the response is +1 when
    oscillator i is faster than j (noise-free), with Gaussian measurement
    noise on the frequency difference otherwise.
    """

    def __init__(
        self,
        m: int,
        rng: Optional[np.random.Generator] = None,
        freq_sigma: float = 1.0,
        noise_sigma: float = 0.0,
    ) -> None:
        if m < 2:
            raise ValueError("need at least two oscillators")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        rng = np.random.default_rng() if rng is None else rng
        self.m = m
        self.frequencies = rng.normal(0.0, freq_sigma, size=m)
        self.noise_sigma = float(noise_sigma)

    @property
    def num_pairs(self) -> int:
        """Number of distinct comparisons (unordered pairs)."""
        return self.m * (self.m - 1) // 2

    def _check(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.atleast_2d(np.asarray(pairs))
        if pairs.shape[1] != 2:
            raise ValueError("challenges are (i, j) index pairs")
        if np.any(pairs < 0) or np.any(pairs >= self.m):
            raise ValueError("oscillator index out of range")
        if np.any(pairs[:, 0] == pairs[:, 1]):
            raise ValueError("a pair must name two distinct oscillators")
        return pairs

    def eval(self, pairs: np.ndarray) -> np.ndarray:
        """Ideal +/-1 responses for (k, 2) index pairs."""
        pairs = self._check(pairs)
        diff = self.frequencies[pairs[:, 0]] - self.frequencies[pairs[:, 1]]
        return np.where(diff >= 0, 1, -1).astype(np.int8)

    def eval_noisy(
        self, pairs: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """One noisy comparison per pair."""
        pairs = self._check(pairs)
        rng = np.random.default_rng() if rng is None else rng
        diff = self.frequencies[pairs[:, 0]] - self.frequencies[pairs[:, 1]]
        if self.noise_sigma > 0:
            diff = diff + rng.normal(0.0, self.noise_sigma, size=diff.shape)
        return np.where(diff >= 0, 1, -1).astype(np.int8)

    def random_pairs(
        self, k: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """``k`` uniformly random distinct-index pairs."""
        if k < 1:
            raise ValueError("pair count must be positive")
        rng = np.random.default_rng() if rng is None else rng
        first = rng.integers(0, self.m, size=k)
        offset = rng.integers(1, self.m, size=k)
        second = (first + offset) % self.m
        return np.stack([first, second], axis=1).astype(np.int64)

    def __repr__(self) -> str:
        return f"RingOscillatorPUF(m={self.m}, noise_sigma={self.noise_sigma:g})"


def sorting_attack(
    puf: RingOscillatorPUF,
    observed_pairs: np.ndarray,
    observed_responses: np.ndarray,
) -> Tuple[np.ndarray, float]:
    """Model an RO PUF from observed comparisons by rank estimation.

    Builds a Borda-style score for every oscillator (wins minus losses over
    observed comparisons) and predicts unseen comparisons from the induced
    order.  Returns (scores, training agreement).  With O(m log m) random
    comparisons the recovered order predicts almost all of the
    m(m-1)/2 pairs — the RO PUF's CRP space is exponentially redundant.
    """
    observed_pairs = np.atleast_2d(np.asarray(observed_pairs))
    observed_responses = np.asarray(observed_responses)
    if observed_pairs.shape[0] != observed_responses.shape[0]:
        raise ValueError("pairs/responses length mismatch")
    scores = np.zeros(puf.m)
    for (i, j), r in zip(observed_pairs, observed_responses):
        scores[i] += float(r)
        scores[j] -= float(r)
    diff = scores[observed_pairs[:, 0]] - scores[observed_pairs[:, 1]]
    predictions = np.where(diff >= 0, 1, -1)
    agreement = float(np.mean(predictions == observed_responses))
    return scores, agreement


def predict_from_scores(scores: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Predict comparisons from Borda scores (ties -> +1)."""
    pairs = np.atleast_2d(np.asarray(pairs))
    diff = scores[pairs[:, 0]] - scores[pairs[:, 1]]
    return np.where(diff >= 0, 1, -1).astype(np.int8)

"""Component-differentially-challenged (CDC) XOR Arbiter PUFs.

A CDC-XOR PUF [arXiv:2206.01314] is a k-XOR arbiter in which each
component chain receives a *different* challenge derived from the master
challenge, instead of all chains seeing the same bits.  The derivation
modelled here is the circular-rotation layout: component ``i`` evaluates
the master challenge rotated left by ``shifts[i]`` stages (component 0
uses shift 0, so k = 1 collapses bit-exactly to a plain arbiter chain).

Why this matters for the paper's pitfall taxonomy: the derivation breaks
the shared-feature structure every gradient attack on XOR PUFs exploits.
A logistic or MLP model over ``parity_transform(master challenge)`` is
now the *wrong hypothesis class* — each chain is linear in its **own**
rotated parity features — so response-only learners stall while the
reliability side channel, which correlates per-chain |margin| against
measured stability, keeps working chain by chain.  The atlas sweeps both
families side by side to map exactly that boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.pufs.arbiter import parity_transform
from repro.pufs.xor_arbiter import XORArbiterPUF


def default_shifts(k: int, n: int) -> Tuple[int, ...]:
    """The canonical per-component rotation offsets for a (n, k) device.

    Components are spread evenly around the challenge ring —
    ``shift_i = round(i * n / k) mod n`` — so no two components share a
    derivation for any k <= n, and component 0 always uses the identity
    (the k = 1 collapse the conformance suite pins bit-exactly).
    """
    if k <= 0:
        raise ValueError(f"chain count k must be positive, got {k}")
    if n <= 0:
        raise ValueError(f"challenge length must be positive, got {n}")
    return tuple(int(round(i * n / k)) % n for i in range(k))


def derive_component_challenges(
    challenges: np.ndarray,
    k: int,
    shifts: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Per-component derived challenges, shape ``(k, m, n)``.

    Row ``i`` of the output is the master challenge matrix circularly
    rotated left by ``shifts[i]`` positions (default
    :func:`default_shifts`).  Rotation is a pure permutation of each row,
    so the output preserves the +/-1 alphabet and the dtype of the
    input, and component ``i`` depends on ``shifts[i]`` only — permuting
    the shift vector permutes the component axis identically (the
    equivariance the property tests drive).
    """
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    if challenges.ndim != 2:
        raise ValueError(
            f"expected an (m, n) challenge matrix, got shape {challenges.shape}"
        )
    n = challenges.shape[1]
    if shifts is None:
        shifts = default_shifts(k, n)
    shifts = tuple(int(s) for s in shifts)
    if len(shifts) != k:
        raise ValueError(f"need {k} shifts, got {len(shifts)}")
    derived = np.empty((k,) + challenges.shape, dtype=challenges.dtype)
    for i, shift in enumerate(shifts):
        derived[i] = np.roll(challenges, -(shift % n), axis=1)
    return derived


class CDCXORArbiterPUF(XORArbiterPUF):
    """k-chain XOR arbiter with per-component challenge derivation.

    Identical manufacturing model to :class:`XORArbiterPUF` (the chain
    weights are drawn by the same shared/own Gaussian mix, so fleet
    stacking and correlation semantics carry over unchanged); only the
    challenge each chain sees differs.  ``shifts`` selects the rotation
    layout, defaulting to :func:`default_shifts`.
    """

    def __init__(
        self,
        n: int,
        k: int,
        rng: Optional[np.random.Generator] = None,
        correlation: float = 0.0,
        weight_sigma: float = 1.0,
        noise_sigma: float = 0.0,
        shifts: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(
            n,
            k,
            rng=rng,
            correlation=correlation,
            weight_sigma=weight_sigma,
            noise_sigma=noise_sigma,
        )
        if shifts is None:
            shifts = default_shifts(k, n)
        shifts = tuple(int(s) % n for s in shifts)
        if len(shifts) != k:
            raise ValueError(f"need {k} shifts, got {len(shifts)}")
        self.shifts: Tuple[int, ...] = shifts

    # ------------------------------------------------------------------
    def component_features(self, challenges: np.ndarray) -> np.ndarray:
        """Per-component parity features, shape ``(k, m, n+1)``.

        Chain ``i`` is linear over ``parity_transform`` of its *derived*
        challenge; this is the feature layout the reliability attack
        correlates against, and what makes the master-challenge parity
        map the wrong hypothesis class for response-only learners.
        """
        challenges = self._check(challenges)
        derived = derive_component_challenges(challenges, self.k, self.shifts)
        m = challenges.shape[0]
        flat = parity_transform(derived.reshape(self.k * m, self.n))
        return flat.reshape(self.k, m, self.n + 1)

    def chain_margins(self, challenges: np.ndarray) -> np.ndarray:
        """(m, k) noise-free margins, each chain on its derived challenge.

        Evaluated one GEMV per chain so the k = 1 device follows exactly
        the ``parity_transform(c) @ weights`` path of
        :class:`~repro.pufs.arbiter.ArbiterPUF` — the bit-identity the
        ``diff_cdc_xor_k1_eq_arbiter`` conformance relation enforces.
        """
        challenges = self._check(challenges)
        phi = self.component_features(challenges)
        margins = np.empty((challenges.shape[0], self.k))
        for i, chain in enumerate(self.chains):
            margins[:, i] = phi[i] @ chain.weights
        return margins

    def __repr__(self) -> str:
        return (
            f"CDCXORArbiterPUF(n={self.n}, k={self.k}, shifts={self.shifts}, "
            f"noise_sigma={self.noise_sigma:g})"
        )

"""A behavioural Bistable Ring (BR) PUF model.

The paper stresses that "no concrete, mathematically precise model is known"
for BR PUFs (Section II-B), and its experiments (Tables II and III) show
that BR PUFs on a Cyclone IV FPGA are *not* close to any halfspace: LTF
learners saturate around 92-95 % accuracy, and a halfspace property tester
reports them epsilon-far from every LTF.

Our substitute keeps exactly the property the experiments probe.  Following
the first-order models in the BR PUF literature (Xu et al. [11];
Schuster & Hesselbarth), each stage i contributes a cell-dependent weight
selected by challenge bit c_i, giving a *linear* settling tendency

    L(c) = sum_i (a_i + b_i c_i),

which alone would make the device an LTF (this is why LTF learners get most
of the way there).  On silicon, coupling between neighbouring stages and
supply/loading effects add challenge-dependent terms a linear model cannot
express; we model them as pairwise and triple interactions

    Q(c) = g2 * sum_{(i,j) in P2} u_ij c_i c_j
         + g3 * sum_{(i,j,l) in P3} v_ijl c_i c_j c_l,

and the response is ``sgn(L(c) + Q(c))``.  The interaction strength
``interaction_scale`` (g2 = g3 = scale relative to the linear part) is the
ablation knob called out in DESIGN.md: at 0.0 the device is an LTF and the
paper's pitfall disappears; at the default 0.55 the accuracy cap and
far-from-halfspace behaviour of Tables II/III are reproduced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pufs.base import PUF


class BistableRingPUF(PUF):
    """Behavioural BR PUF with tunable non-linear stage interactions.

    Parameters
    ----------
    n:
        Ring size (challenge length); even on real devices, not enforced
        here.
    rng:
        Manufacturing randomness.
    interaction_scale:
        Relative strength of the non-linear component.  0.0 degenerates to
        an LTF.  The default 0.55 reproduces the paper's accuracy caps.
    pair_density:
        Fraction of the n(n-1)/2 possible pairs carrying an interaction
        term (nearest-neighbour coupling plus random longer-range pairs).
    triple_density:
        Fraction of ~n random triples carrying a third-order term.
    noise_sigma:
        Measurement noise on the settling margin.
    """

    def __init__(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        interaction_scale: float = 0.55,
        pair_density: float = 0.25,
        triple_density: float = 1.0,
        noise_sigma: float = 0.0,
    ) -> None:
        super().__init__(n, noise_sigma)
        if interaction_scale < 0:
            raise ValueError("interaction_scale must be non-negative")
        if not 0.0 <= pair_density <= 1.0:
            raise ValueError("pair_density must be in [0, 1]")
        if triple_density < 0:
            raise ValueError("triple_density must be non-negative")
        rng = np.random.default_rng() if rng is None else rng
        self.interaction_scale = float(interaction_scale)

        # Linear part: intrinsic cell asymmetries.  The a_i sum to a
        # device-specific offset; sigma 1/sqrt(n) keeps that offset O(1) so
        # instances are biased (as real BR PUFs are) but not degenerate.
        self.bias_terms = rng.normal(0.0, 1.0 / np.sqrt(n), size=n)  # a_i
        self.linear_weights = rng.normal(0.0, 1.0, size=n)  # b_i
        self.global_offset = rng.normal(0.0, 0.5)

        # Pairwise couplings: all adjacent ring pairs, plus random pairs.
        pairs = [(i, (i + 1) % n) for i in range(n)]
        num_random = int(pair_density * n * (n - 1) / 2)
        seen = {tuple(sorted(p)) for p in pairs}
        while len(seen) < len(pairs) + num_random and len(seen) < n * (n - 1) // 2:
            i, j = rng.choice(n, size=2, replace=False)
            seen.add(tuple(sorted((int(i), int(j)))))
        self.pair_indices = np.array(sorted(seen), dtype=np.int64)
        self.pair_weights = rng.normal(0.0, 1.0, size=len(self.pair_indices))

        # Third-order couplings: ~ triple_density * n random triples.
        num_triples = max(1, int(triple_density * n))
        triples = set()
        while len(triples) < num_triples:
            t = rng.choice(n, size=3, replace=False)
            triples.add(tuple(sorted(int(v) for v in t)))
        self.triple_indices = np.array(sorted(triples), dtype=np.int64)
        self.triple_weights = rng.normal(0.0, 1.0, size=len(self.triple_indices))

        # Normalise the non-linear part to the requested relative strength.
        lin_scale = float(np.sqrt(np.sum(self.linear_weights**2)))
        pair_scale = float(np.sqrt(np.sum(self.pair_weights**2)))
        tri_scale = float(np.sqrt(np.sum(self.triple_weights**2)))
        if pair_scale > 0:
            self.pair_weights *= interaction_scale * lin_scale / pair_scale
        if tri_scale > 0:
            self.triple_weights *= interaction_scale * lin_scale / tri_scale

    @classmethod
    def from_parameters(
        cls,
        n: int,
        bias_terms: np.ndarray,
        linear_weights: np.ndarray,
        global_offset: float,
        pair_indices: np.ndarray,
        pair_weights: np.ndarray,
        triple_indices: np.ndarray,
        triple_weights: np.ndarray,
        interaction_scale: float = 0.55,
        noise_sigma: float = 0.0,
    ) -> "BistableRingPUF":
        """Materialise an instance from explicit, already-normalised
        parameters (no rng draws).

        This is how :class:`repro.pufs.fleet.Fleet` produces standalone
        BR comparators: a fleet shares one interaction topology (a
        design/layout property) across its instances, so its members
        cannot be rebuilt through the drawing constructor, whose
        topology selection is interleaved with the weight draws.
        """
        self = cls.__new__(cls)
        PUF.__init__(self, n, noise_sigma)
        self.interaction_scale = float(interaction_scale)
        self.bias_terms = np.asarray(bias_terms, dtype=np.float64)
        self.linear_weights = np.asarray(linear_weights, dtype=np.float64)
        self.global_offset = float(global_offset)
        self.pair_indices = np.asarray(pair_indices, dtype=np.int64).reshape(-1, 2)
        self.pair_weights = np.asarray(pair_weights, dtype=np.float64)
        self.triple_indices = np.asarray(triple_indices, dtype=np.int64).reshape(-1, 3)
        self.triple_weights = np.asarray(triple_weights, dtype=np.float64)
        if self.bias_terms.shape != (n,) or self.linear_weights.shape != (n,):
            raise ValueError("bias_terms and linear_weights must have shape (n,)")
        if self.pair_weights.shape != (len(self.pair_indices),):
            raise ValueError("pair_weights must match pair_indices")
        if self.triple_weights.shape != (len(self.triple_indices),):
            raise ValueError("triple_weights must match triple_indices")
        return self

    def raw_margin(self, challenges: np.ndarray) -> np.ndarray:
        c = challenges.astype(np.float64)
        margin = (
            self.global_offset
            + np.sum(self.bias_terms)
            + c @ self.linear_weights
        )
        pi, pj = self.pair_indices[:, 0], self.pair_indices[:, 1]
        margin = margin + (c[:, pi] * c[:, pj]) @ self.pair_weights
        ti, tj, tl = (
            self.triple_indices[:, 0],
            self.triple_indices[:, 1],
            self.triple_indices[:, 2],
        )
        margin = margin + (c[:, ti] * c[:, tj] * c[:, tl]) @ self.triple_weights
        return margin

    def __repr__(self) -> str:
        return (
            f"BistableRingPUF(n={self.n}, "
            f"interaction_scale={self.interaction_scale:g}, "
            f"noise_sigma={self.noise_sigma:g})"
        )

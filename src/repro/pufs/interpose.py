"""The Interpose PUF (iPUF) — a further composed-hardware target.

An (x, y)-iPUF feeds the challenge to an upper x-XOR arbiter PUF, inserts
that 1-bit response into the middle of the challenge, and evaluates a
lower y-XOR arbiter PUF on the extended (n+1)-bit challenge.  Proposed as
an ML-resistant composition after plain XOR PUFs fell; included here as a
target for the adversary-model machinery (its security story went through
the same cycle of model-relative claims the paper warns about).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.pufs.base import PUF
from repro.pufs.xor_arbiter import XORArbiterPUF


class InterposePUF(PUF):
    """(x, y)-Interpose PUF over n-bit challenges.

    Parameters
    ----------
    n:
        Challenge length of the upper layer; the lower layer sees n+1 bits.
    x, y:
        Chain counts of the upper and lower XOR arbiter layers.
    position:
        Index at which the upper response is interposed into the lower
        challenge (default: the middle, the standard choice).
    """

    def __init__(
        self,
        n: int,
        x: int = 1,
        y: int = 1,
        rng: Optional[np.random.Generator] = None,
        position: Optional[int] = None,
        noise_sigma: float = 0.0,
    ) -> None:
        super().__init__(n, noise_sigma)
        rng = np.random.default_rng() if rng is None else rng
        self.upper = XORArbiterPUF(n, x, rng, noise_sigma=noise_sigma)
        self.lower = XORArbiterPUF(n + 1, y, rng, noise_sigma=noise_sigma)
        self.position = (n + 1) // 2 if position is None else position
        if not 0 <= self.position <= n:
            raise ValueError(f"position must be in [0, {n}], got {self.position}")

    def _interpose(self, challenges: np.ndarray, upper_bits: np.ndarray) -> np.ndarray:
        return np.insert(
            challenges, self.position, upper_bits, axis=1
        ).astype(np.int8)

    def raw_margin(self, challenges: np.ndarray) -> np.ndarray:
        upper_bits = self.upper.eval(challenges)
        extended = self._interpose(challenges, upper_bits)
        return self.lower.raw_margin(extended)

    def eval_noisy(
        self, challenges: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Noise propagates through both layers (upper flips shift the
        interposed bit, lower flips act on the final response)."""
        challenges = self._check(challenges)
        rng = np.random.default_rng() if rng is None else rng
        upper_bits = self.upper.eval_noisy(challenges, rng)
        extended = self._interpose(challenges, upper_bits)
        return self.lower.eval_noisy(extended, rng)

    def __repr__(self) -> str:
        return (
            f"InterposePUF(n={self.n}, x={self.upper.k}, y={self.lower.k}, "
            f"position={self.position}, noise_sigma={self.noise_sigma:g})"
        )

"""Feed-forward Arbiter PUFs.

A feed-forward arbiter adds intermediate arbiters whose outputs drive later
challenge bits, breaking the clean LTF structure of the plain arbiter PUF.
Included as a second non-LTF target (besides the BR PUF) for the
representation-choice experiments of Section V.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.pufs.base import PUF


class FeedForwardArbiterPUF(PUF):
    """Arbiter PUF with feed-forward loops.

    Each loop is a pair ``(tap, dest)`` with ``tap < dest``: an intermediate
    arbiter samples the sign of the delay difference after stage ``tap``
    and overrides the challenge bit of stage ``dest`` with it.

    The delay recursion uses the standard per-stage model: with c_i = +1
    (straight) the difference accumulates ``d_i``, with c_i = -1 (crossed)
    it is negated and accumulates ``e_i``.
    """

    def __init__(
        self,
        n: int,
        loops: Sequence[Tuple[int, int]] = (),
        rng: Optional[np.random.Generator] = None,
        weight_sigma: float = 1.0,
        noise_sigma: float = 0.0,
    ) -> None:
        super().__init__(n, noise_sigma)
        for tap, dest in loops:
            if not (0 <= tap < dest < n):
                raise ValueError(
                    f"loop ({tap}, {dest}) must satisfy 0 <= tap < dest < n={n}"
                )
        dests = [dest for _, dest in loops]
        if len(dests) != len(set(dests)):
            raise ValueError("each destination stage may be driven by one loop only")
        self.loops: List[Tuple[int, int]] = sorted(loops, key=lambda p: p[1])
        rng = np.random.default_rng() if rng is None else rng
        self.straight_delays = rng.normal(0.0, weight_sigma, size=n)
        self.crossed_delays = rng.normal(0.0, weight_sigma, size=n)

    def raw_margin(self, challenges: np.ndarray) -> np.ndarray:
        c = challenges
        m = c.shape[0]
        effective = c.astype(np.float64).copy()
        diff = np.zeros(m)
        loop_by_dest = {dest: tap for tap, dest in self.loops}
        tap_signs: dict = {}
        for i in range(self.n):
            if i in loop_by_dest:
                effective[:, i] = tap_signs[loop_by_dest[i]]
            bit = effective[:, i]
            # straight (+1): diff += d_i ; crossed (-1): diff = -diff + e_i
            diff = np.where(
                bit > 0, diff + self.straight_delays[i], -diff + self.crossed_delays[i]
            )
            if any(tap == i for tap, _ in self.loops):
                tap_signs[i] = np.where(diff >= 0, 1.0, -1.0)
        return diff

    def __repr__(self) -> str:
        return (
            f"FeedForwardArbiterPUF(n={self.n}, loops={self.loops}, "
            f"noise_sigma={self.noise_sigma:g})"
        )

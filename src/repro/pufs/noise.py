"""Measurement-noise handling: majority voting and stable-CRP filtering.

The paper's Table II/III experiments use "noiseless and stable CRPs"
collected from hardware — in practice one measures each challenge several
times and keeps only challenges whose response never flips.  These helpers
reproduce that collection protocol against our noisy simulators.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.pufs.base import PUF
from repro.pufs.crp import ChallengeSampler, CRPSet, uniform_challenges


def repeated_measurements(
    puf: PUF,
    challenges: np.ndarray,
    repetitions: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """An (repetitions, m) array of noisy response measurements."""
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    rng = np.random.default_rng() if rng is None else rng
    return np.stack(
        [puf.eval_noisy(challenges, rng) for _ in range(repetitions)], axis=0
    )


def majority_vote(
    puf: PUF,
    challenges: np.ndarray,
    repetitions: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Majority-voted responses over ``repetitions`` noisy measurements.

    Odd repetition counts avoid ties; even counts break ties toward +1.
    """
    meas = repeated_measurements(puf, challenges, repetitions, rng)
    sums = np.sum(meas.astype(np.int32), axis=0)
    return np.where(sums >= 0, 1, -1).astype(np.int8)


def stable_challenge_mask(
    puf: PUF,
    challenges: np.ndarray,
    repetitions: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Boolean mask of challenges whose response never flips across measurements."""
    meas = repeated_measurements(puf, challenges, repetitions, rng)
    return np.all(meas == meas[0], axis=0)


def collect_stable_crps(
    puf: PUF,
    target: int,
    repetitions: int = 11,
    rng: Optional[np.random.Generator] = None,
    sampler: ChallengeSampler = uniform_challenges,
    max_batches: int = 50,
) -> Tuple[CRPSet, float]:
    """Collect ``target`` stable CRPs the way the paper's authors did.

    Draws challenge batches, measures each challenge ``repetitions`` times,
    keeps only the stable ones, and returns (CRPSet, stable_fraction).
    Raises RuntimeError if the device is so noisy that the target cannot be
    reached within ``max_batches`` batches.
    """
    if target <= 0:
        raise ValueError("target must be positive")
    rng = np.random.default_rng() if rng is None else rng
    kept_challenges = []
    kept_responses = []
    drawn = 0
    kept = 0
    for _ in range(max_batches):
        batch = sampler(max(target, 1024), puf.n, rng)
        drawn += batch.shape[0]
        meas = repeated_measurements(puf, batch, repetitions, rng)
        stable = np.all(meas == meas[0], axis=0)
        kept_challenges.append(batch[stable])
        kept_responses.append(meas[0][stable])
        kept += int(np.sum(stable))
        if kept >= target:
            break
    if kept < target:
        raise RuntimeError(
            f"only {kept} stable CRPs found after {drawn} challenges; "
            "device too noisy for the requested target"
        )
    challenges = np.concatenate(kept_challenges, axis=0)[:target]
    responses = np.concatenate(kept_responses, axis=0)[:target]
    return CRPSet(challenges, responses), kept / drawn

"""Serialisation of PUF instances.

Saving a simulated device pins the 'manufactured' instance, so experiments
are repeatable across processes and enrolled protocol databases stay bound
to a specific chip.  Format: a compressed ``.npz`` with a ``kind`` tag and
the instance parameters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.base import PUF
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.xor_arbiter import XORArbiterPUF


def save_puf(puf: PUF, path: Union[str, Path]) -> None:
    """Persist a PUF instance to ``.npz`` (Arbiter/XOR-Arbiter/BR only)."""
    path = Path(path)
    if isinstance(puf, XORArbiterPUF):
        np.savez_compressed(
            path,
            kind="xor_arbiter",
            n=puf.n,
            k=puf.k,
            correlation=puf.correlation,
            noise_sigma=puf.noise_sigma,
            chain_weights=np.stack([c.weights for c in puf.chains]),
        )
    elif isinstance(puf, ArbiterPUF):
        np.savez_compressed(
            path,
            kind="arbiter",
            n=puf.n,
            noise_sigma=puf.noise_sigma,
            weights=puf.weights,
        )
    elif isinstance(puf, BistableRingPUF):
        np.savez_compressed(
            path,
            kind="bistable_ring",
            n=puf.n,
            noise_sigma=puf.noise_sigma,
            interaction_scale=puf.interaction_scale,
            bias_terms=puf.bias_terms,
            linear_weights=puf.linear_weights,
            global_offset=puf.global_offset,
            pair_indices=puf.pair_indices,
            pair_weights=puf.pair_weights,
            triple_indices=puf.triple_indices,
            triple_weights=puf.triple_weights,
        )
    else:
        raise TypeError(f"cannot serialise PUF type {type(puf).__name__}")


def load_puf(path: Union[str, Path]) -> PUF:
    """Load a PUF saved with :func:`save_puf`."""
    data = np.load(Path(path))
    kind = str(data["kind"])
    if kind == "arbiter":
        return ArbiterPUF(
            int(data["n"]),
            weights=data["weights"],
            noise_sigma=float(data["noise_sigma"]),
        )
    if kind == "xor_arbiter":
        puf = XORArbiterPUF(
            int(data["n"]),
            int(data["k"]),
            rng=np.random.default_rng(0),
            correlation=float(data["correlation"]),
            noise_sigma=float(data["noise_sigma"]),
        )
        for chain, weights in zip(puf.chains, data["chain_weights"]):
            chain.weights = np.asarray(weights, dtype=np.float64)
        return puf
    if kind == "bistable_ring":
        puf = BistableRingPUF(
            int(data["n"]),
            rng=np.random.default_rng(0),
            interaction_scale=float(data["interaction_scale"]),
            noise_sigma=float(data["noise_sigma"]),
        )
        puf.bias_terms = data["bias_terms"]
        puf.linear_weights = data["linear_weights"]
        puf.global_offset = float(data["global_offset"])
        puf.pair_indices = data["pair_indices"]
        puf.pair_weights = data["pair_weights"]
        puf.triple_indices = data["triple_indices"]
        puf.triple_weights = data["triple_weights"]
        return puf
    raise ValueError(f"unknown PUF kind {kind!r}")

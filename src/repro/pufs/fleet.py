"""Fleets: populations of PUF instances evaluated by stacked GEMMs.

The paper's Section IV argument is about adversary models assessed over
*populations* of devices, and every sweep in ROADMAP item 2 needs
thousands of instances per cell.  Evaluating them as
``[puf.eval(challenges) for puf in pufs]`` costs one feature build and
one gemv per instance; a :class:`Fleet` stacks all N instances' weight
vectors into one ``(d, N)`` matrix so the whole population is answered
by a single ``(M, d) @ (d, N)`` GEMM (see :mod:`repro.kernels.fleet`).

Seeding contract
----------------
A fleet is built from one root :class:`numpy.random.SeedSequence`.
Child ``spawn_key + (0,)`` carries *fleet-level* randomness (the shared
BR interaction topology — a design/layout property, identical across
chips from one mask set); child ``spawn_key + (1 + i,)`` is instance
``i``'s manufacturing randomness.  Instance construction replays the
standalone constructors' generator draw order exactly, so
``Fleet.instances()[i]`` equals the PUF you would build directly from
that child seed — the conformance relations and the golden-snapshot
tests rely on this replay.

Construction fans the seed out per instance (that is what per-instance
seeds *mean*); evaluation has no per-instance Python work.

Query accounting
----------------
Fleet evaluations are oracle calls against every instance at once:
``eval``/``eval_noisy`` record ``m x N`` EX queries and
``majority_vote`` records one query per noisy measurement
(``m x N x repetitions``).  Metric helpers in
:mod:`repro.pufs.metrics` wrap their draws in ``unmetered()`` — quality
metrics are not adversary queries.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.kernels.backend import validate_tier, weight_dtype
from repro.kernels.fleet import (
    batched_majority_vote,
    br_features,
    fleet_margins,
    linear_features,
    noisy_sign_responses,
    parity_features,
    sign_responses,
    xor_combine,
)
from repro.booleanfuncs.ltf import LTF
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.xor_arbiter import XORArbiterPUF

#: PUF families a fleet can stack.
FLEET_FAMILIES = ("arbiter", "xor", "br", "ltf")


def eval_instance(instance: object, challenges: np.ndarray) -> np.ndarray:
    """Evaluate one standalone comparator from :meth:`Fleet.instances`.

    PUF comparators expose ``eval``; LTF comparators are plain
    :class:`~repro.booleanfuncs.function.BooleanFunction` callables.
    """
    if hasattr(instance, "eval"):
        return instance.eval(challenges)
    return instance(challenges)


def instance_margin(instance: object, challenges: np.ndarray) -> np.ndarray:
    """The comparator's real-valued margin (``raw_margin`` for PUFs,
    ``margin`` for LTFs) — the reference side of the differential checks."""
    if hasattr(instance, "raw_margin"):
        return instance.raw_margin(challenges)
    return instance.margin(challenges)


def _as_seed_sequence(seed: object) -> np.random.SeedSequence:
    """Coerce ints/None/SeedSequence to a SeedSequence (local to avoid a
    pufs -> runtime layering inversion; same semantics as runtime.seeding)."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def _child(root: np.random.SeedSequence, index: int) -> np.random.SeedSequence:
    """Child ``index`` of ``root`` by the repo-wide spawn-key idiom."""
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + (index,)
    )


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """Declarative description of a fleet of same-design PUF instances.

    Parameters
    ----------
    family:
        One of ``"arbiter"``, ``"xor"``, ``"br"``, ``"ltf"``.
    n:
        Challenge length (stages / ring size / LTF arity).
    size:
        Number of instances N.
    k:
        XOR fleets only: chains per instance — a scalar, or a length-N
        sequence for a *mixed-k* fleet.
    correlation / weight_sigma / noise_sigma:
        As in the standalone constructors.
    tier:
        Dtype tier (see :mod:`repro.kernels.backend`): ``"float64"``
        (reference), ``"float32"`` (fast, guard-banded), ``"int8"``
        (int8 feature storage, bit-identical margins to float64).
    interaction_scale / pair_density / triple_density:
        BR fleets only; as in :class:`BistableRingPUF`.
    """

    family: str
    n: int
    size: int
    k: Union[int, Tuple[int, ...]] = 1
    correlation: float = 0.0
    weight_sigma: float = 1.0
    noise_sigma: float = 0.0
    tier: str = "float64"
    interaction_scale: float = 0.55
    pair_density: float = 0.25
    triple_density: float = 1.0

    def __post_init__(self) -> None:
        if self.family not in FLEET_FAMILIES:
            raise ValueError(
                f"unknown fleet family {self.family!r}; expected one of {FLEET_FAMILIES}"
            )
        if self.n <= 0:
            raise ValueError(f"challenge length must be positive, got {self.n}")
        if self.size <= 0:
            raise ValueError(f"fleet size must be positive, got {self.size}")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        validate_tier(self.tier)
        k = self.k
        if not isinstance(k, int):
            k = tuple(int(v) for v in k)
            object.__setattr__(self, "k", k)
        counts = self.chain_counts
        if len(counts) != self.size:
            raise ValueError(
                f"per-instance k has {len(counts)} entries for fleet size {self.size}"
            )
        if any(v <= 0 for v in counts):
            raise ValueError("every chain count must be positive")
        requested = (k,) if isinstance(k, int) else k
        if self.family != "xor" and any(v != 1 for v in requested):
            raise ValueError(f"family {self.family!r} does not take k != 1")
        if not 0.0 <= self.correlation < 1.0:
            raise ValueError(f"correlation must be in [0, 1), got {self.correlation}")

    # ------------------------------------------------------------------
    @property
    def chain_counts(self) -> Tuple[int, ...]:
        """Per-instance chain counts (all 1 outside the XOR family)."""
        if isinstance(self.k, int):
            return (self.k if self.family == "xor" else 1,) * self.size
        return self.k

    def describe(self) -> str:
        """Canonical spec string — the fleet's cache-key identity.

        Everything that changes the evaluated bits is included; the dtype
        tier is included too so cross-tier cache collisions are impossible
        (see :func:`repro.runtime.cache.fleet_cache_key`).
        """
        counts = self.chain_counts
        k_repr = counts[0] if len(set(counts)) == 1 else counts
        return (
            f"fleet(family={self.family}, n={self.n}, size={self.size}, "
            f"k={k_repr}, correlation={self.correlation:g}, "
            f"weight_sigma={self.weight_sigma:g}, noise_sigma={self.noise_sigma:g}, "
            f"interaction={self.interaction_scale:g}, "
            f"pairs={self.pair_density:g}, triples={self.triple_density:g}, "
            f"tier={self.tier})"
        )


# ----------------------------------------------------------------------
# Per-family weight stacking.  Each builder replays the standalone
# constructor's rng draw order from the instance's child seed.
# ----------------------------------------------------------------------
def _stack_arbiter(spec: FleetSpec, root: np.random.SeedSequence) -> np.ndarray:
    cols = np.empty((spec.n + 1, spec.size), dtype=np.float64)
    for i in range(spec.size):
        rng = np.random.default_rng(_child(root, 1 + i))
        cols[:, i] = rng.normal(0.0, spec.weight_sigma, size=spec.n + 1)
    return cols


def _stack_xor(
    spec: FleetSpec, root: np.random.SeedSequence
) -> Tuple[np.ndarray, np.ndarray]:
    counts = spec.chain_counts
    total = sum(counts)
    cols = np.empty((spec.n + 1, total), dtype=np.float64)
    mix = np.sqrt(1.0 - spec.correlation**2)
    col = 0
    for i, k_i in enumerate(counts):
        rng = np.random.default_rng(_child(root, 1 + i))
        shared = rng.normal(0.0, spec.weight_sigma, size=spec.n + 1)
        for _ in range(k_i):
            own = rng.normal(0.0, spec.weight_sigma, size=spec.n + 1)
            cols[:, col] = mix * own + spec.correlation * shared
            col += 1
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.intp)
    return cols, offsets


def _br_topology(
    spec: FleetSpec, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """The shared pair/triple index sets, drawn exactly the way a standalone
    :class:`BistableRingPUF` draws them (same selection loop, same rng calls)."""
    n = spec.n
    pairs = [(i, (i + 1) % n) for i in range(n)]
    num_random = int(spec.pair_density * n * (n - 1) / 2)
    seen = {tuple(sorted(p)) for p in pairs}
    while len(seen) < len(pairs) + num_random and len(seen) < n * (n - 1) // 2:
        i, j = rng.choice(n, size=2, replace=False)
        seen.add(tuple(sorted((int(i), int(j)))))
    pair_indices = np.array(sorted(seen), dtype=np.int64)
    num_triples = max(1, int(spec.triple_density * n))
    triples = set()
    while len(triples) < num_triples:
        t = rng.choice(n, size=3, replace=False)
        triples.add(tuple(sorted(int(v) for v in t)))
    triple_indices = np.array(sorted(triples), dtype=np.int64)
    return pair_indices, triple_indices


def _br_instance_weights(
    spec: FleetSpec,
    rng: np.random.Generator,
    num_pairs: int,
    num_triples: int,
) -> Tuple[np.ndarray, np.ndarray, float, np.ndarray, np.ndarray]:
    """One BR instance's weights in standalone draw order (topology draws
    excluded — the fleet shares its topology), normalised the same way."""
    n = spec.n
    bias_terms = rng.normal(0.0, 1.0 / np.sqrt(n), size=n)
    linear_weights = rng.normal(0.0, 1.0, size=n)
    global_offset = float(rng.normal(0.0, 0.5))
    pair_weights = rng.normal(0.0, 1.0, size=num_pairs)
    triple_weights = rng.normal(0.0, 1.0, size=num_triples)
    lin_scale = float(np.sqrt(np.sum(linear_weights**2)))
    pair_scale = float(np.sqrt(np.sum(pair_weights**2)))
    tri_scale = float(np.sqrt(np.sum(triple_weights**2)))
    if pair_scale > 0:
        pair_weights = pair_weights * (spec.interaction_scale * lin_scale / pair_scale)
    if tri_scale > 0:
        triple_weights = triple_weights * (
            spec.interaction_scale * lin_scale / tri_scale
        )
    return bias_terms, linear_weights, global_offset, pair_weights, triple_weights


def _stack_br(
    spec: FleetSpec, root: np.random.SeedSequence
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    pair_indices, triple_indices = _br_topology(
        spec, np.random.default_rng(_child(root, 0))
    )
    d = 1 + spec.n + len(pair_indices) + len(triple_indices)
    cols = np.empty((d, spec.size), dtype=np.float64)
    for i in range(spec.size):
        rng = np.random.default_rng(_child(root, 1 + i))
        bias, linear, offset, pair_w, triple_w = _br_instance_weights(
            spec, rng, len(pair_indices), len(triple_indices)
        )
        cols[0, i] = offset + np.sum(bias)
        cols[1 : 1 + spec.n, i] = linear
        cols[1 + spec.n : 1 + spec.n + len(pair_indices), i] = pair_w
        cols[1 + spec.n + len(pair_indices) :, i] = triple_w
    return cols, pair_indices, triple_indices


def _stack_ltf(spec: FleetSpec, root: np.random.SeedSequence) -> np.ndarray:
    cols = np.empty((spec.n + 1, spec.size), dtype=np.float64)
    for i in range(spec.size):
        rng = np.random.default_rng(_child(root, 1 + i))
        cols[: spec.n, i] = rng.normal(0.0, spec.weight_sigma, size=spec.n)
        cols[spec.n, i] = 0.0  # -threshold; LTF.random uses threshold 0
    return cols


class Fleet:
    """N same-design PUF instances stacked for single-GEMM evaluation.

    Build with :meth:`Fleet.build`; evaluate with :meth:`eval`,
    :meth:`eval_noisy`, or :meth:`majority_vote` — all return an
    ``(M, N)`` ±1 ``int8`` response plane.  All GEMMs route through the
    installed :class:`repro.kernels.backend.KernelBackend`.
    """

    def __init__(
        self,
        spec: FleetSpec,
        seed: np.random.SeedSequence,
        weights: np.ndarray,
        chain_offsets: Optional[np.ndarray] = None,
        pair_indices: Optional[np.ndarray] = None,
        triple_indices: Optional[np.ndarray] = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.weights = np.ascontiguousarray(weights, dtype=weight_dtype(spec.tier))
        self.chain_offsets = chain_offsets
        self.pair_indices = pair_indices
        self.triple_indices = triple_indices

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, spec: FleetSpec, seed: object = None) -> "Fleet":
        """Construct the fleet from ``spec`` and a root seed.

        Deterministic: the same ``(entropy, spawn_key)`` line always
        yields bit-identical weights (the conformance relations replay
        fleets from exactly this contract).
        """
        root = _as_seed_sequence(seed)
        chain_offsets = pair_indices = triple_indices = None
        if spec.family == "arbiter":
            weights = _stack_arbiter(spec, root)
        elif spec.family == "xor":
            weights, chain_offsets = _stack_xor(spec, root)
        elif spec.family == "br":
            weights, pair_indices, triple_indices = _stack_br(spec, root)
        else:  # ltf
            weights = _stack_ltf(spec, root)
        return cls(
            spec,
            root,
            weights,
            chain_offsets=chain_offsets,
            pair_indices=pair_indices,
            triple_indices=triple_indices,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.spec.size

    @property
    def n(self) -> int:
        """Challenge length."""
        return self.spec.n

    def seed_line(self) -> str:
        """The replayable identity of this fleet's root SeedSequence."""
        return (
            f"SeedSequence(entropy={self.seed.entropy!r}, "
            f"spawn_key={tuple(self.seed.spawn_key)!r})"
        )

    # ------------------------------------------------------------------
    def _check(self, challenges: np.ndarray) -> np.ndarray:
        challenges = np.asarray(challenges)
        if challenges.ndim == 1:
            challenges = challenges[None, :]
        if challenges.ndim != 2 or challenges.shape[1] != self.spec.n:
            raise ValueError(
                f"Fleet expects (m, {self.spec.n}) challenges, "
                f"got shape {challenges.shape}"
            )
        return challenges

    def features(self, challenges: np.ndarray) -> np.ndarray:
        """The tier-dtype ``(M, d)`` feature matrix, built once per batch."""
        challenges = self._check(challenges)
        tier = self.spec.tier
        if self.spec.family in ("arbiter", "xor"):
            return parity_features(challenges, tier)
        if self.spec.family == "br":
            return br_features(challenges, self.pair_indices, self.triple_indices, tier)
        return linear_features(challenges, tier)

    def margins(self, challenges: np.ndarray) -> np.ndarray:
        """The stacked GEMM: ``(M, size)`` margins, or ``(M, total_chains)``
        per-chain margins for XOR fleets (combine with ``chain_offsets``)."""
        return fleet_margins(self.features(challenges), self.weights)

    # ------------------------------------------------------------------
    def eval(self, challenges: np.ndarray) -> np.ndarray:
        """Ideal responses of the whole fleet: ``(M, N)`` ±1 int8."""
        challenges = self._check(challenges)
        margins = self.margins(challenges)
        signs = sign_responses(margins)
        if self.chain_offsets is not None:
            signs = xor_combine(signs, self.chain_offsets)
        self._meter(challenges, signs, repetitions=1)
        return signs

    def eval_noisy(
        self, challenges: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """One noisy measurement per (challenge, instance) cell.

        Noise is drawn fleet-level in one ``(M, cols)`` slab (per chain
        for XOR fleets, matching the standalone per-chain noise model);
        statistically identical to per-instance draws, though the rng
        consumption order differs from N separate ``eval_noisy`` calls.
        """
        challenges = self._check(challenges)
        margins = self.margins(challenges)
        noise = None
        if self.spec.noise_sigma > 0:
            rng = np.random.default_rng() if rng is None else rng
            noise = rng.normal(0.0, self.spec.noise_sigma, size=margins.shape)
        signs = noisy_sign_responses(margins, noise, self.chain_offsets)
        self._meter(challenges, signs, repetitions=1)
        return signs

    def majority_vote(
        self,
        challenges: np.ndarray,
        repetitions: int = 11,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Majority-voted responses over ``repetitions`` noisy measurements,
        batched over the whole ``(M, N)`` plane (ties break toward +1,
        matching :func:`repro.pufs.noise.majority_vote`)."""
        challenges = self._check(challenges)
        margins = self.margins(challenges)
        rng = np.random.default_rng() if rng is None else rng
        voted = batched_majority_vote(
            margins, self.spec.noise_sigma, repetitions, rng, self.chain_offsets
        )
        self._meter(challenges, voted, repetitions=repetitions)
        return voted

    def _meter(
        self, challenges: np.ndarray, responses: np.ndarray, repetitions: int
    ) -> None:
        """Per-instance oracle accounting: every (challenge, instance,
        measurement) cell is one EX query against that instance."""
        from repro.telemetry.meter import record as _record

        m = challenges.shape[0]
        count = m * self.spec.size * repetitions
        _record(
            "ex",
            queries=count,
            examples=count,
            challenges=challenges,
            response_bytes=responses.nbytes * repetitions,
        )

    # ------------------------------------------------------------------
    def instances(self) -> List[object]:
        """Standalone per-instance comparators.

        Instance ``i`` is built from seed child ``spawn_key + (1 + i,)``
        with the *same draws* the fleet made, so for arbiter/XOR/LTF
        fleets it is literally the PUF you would construct directly from
        that child seed.  BR instances share the fleet topology and are
        materialised via :meth:`BistableRingPUF.from_parameters`.
        """
        spec = self.spec
        out: List[object] = []
        for i in range(spec.size):
            child = _child(self.seed, 1 + i)
            rng = np.random.default_rng(child)
            if spec.family == "arbiter":
                out.append(
                    ArbiterPUF(
                        spec.n,
                        rng,
                        weight_sigma=spec.weight_sigma,
                        noise_sigma=spec.noise_sigma,
                    )
                )
            elif spec.family == "xor":
                out.append(
                    XORArbiterPUF(
                        spec.n,
                        spec.chain_counts[i],
                        rng,
                        correlation=spec.correlation,
                        weight_sigma=spec.weight_sigma,
                        noise_sigma=spec.noise_sigma,
                    )
                )
            elif spec.family == "br":
                bias, linear, offset, pair_w, triple_w = _br_instance_weights(
                    spec, rng, len(self.pair_indices), len(self.triple_indices)
                )
                out.append(
                    BistableRingPUF.from_parameters(
                        spec.n,
                        bias_terms=bias,
                        linear_weights=linear,
                        global_offset=offset,
                        pair_indices=self.pair_indices,
                        pair_weights=pair_w,
                        triple_indices=self.triple_indices,
                        triple_weights=triple_w,
                        interaction_scale=spec.interaction_scale,
                        noise_sigma=spec.noise_sigma,
                    )
                )
            else:  # ltf
                out.append(LTF.random(spec.n, rng, sigma=spec.weight_sigma))
        return out

    def __repr__(self) -> str:
        return f"Fleet({self.spec.describe()})"

"""Challenge-response pair (CRP) containers and generators.

CRP sets are the learning examples of the PAC framework.  The distribution
the challenges are drawn from is the first axis of the paper's adversary
model (Section III), so the generator takes the distribution as an explicit
argument instead of hard-coding "uniform".
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

import numpy as np

from repro.pufs.base import PUF

ChallengeSampler = Callable[[int, int, np.random.Generator], np.ndarray]


def uniform_challenges(m: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """m uniform +/-1 challenges — the distribution of Section III."""
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


def biased_challenges(p: float) -> ChallengeSampler:
    """A product distribution over +/-1 challenges with bias ``p``.

    Each bit independently takes the value ``-1`` with probability ``p``
    and ``+1`` with probability ``1 - p``.  (``-1`` is the +/-1 encoding
    of the *logical one*, via the standard map ``b -> (-1)**b``; so
    ``p = 1.0`` yields all-(-1) rows and ``p = 0.0`` all-(+1) rows.  The
    exact convention is pinned by tests/property/test_crp_distributions.py.)

    Used to demonstrate distribution-dependence: a learner tuned to the
    uniform distribution can fail badly under a skewed product measure.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"bit probability must be in [0, 1], got {p}")

    def sample(m: int, n: int, rng: np.random.Generator) -> np.ndarray:
        bits = rng.random(size=(m, n)) < p
        return (1 - 2 * bits.astype(np.int8)).astype(np.int8)

    return sample


def low_weight_challenges(max_ones: int) -> ChallengeSampler:
    """Challenges with at most ``max_ones`` bits set (a sparse distribution)."""
    if max_ones < 0:
        raise ValueError("max_ones must be non-negative")

    def sample(m: int, n: int, rng: np.random.Generator) -> np.ndarray:
        out = np.ones((m, n), dtype=np.int8)
        for row in range(m):
            weight = int(rng.integers(0, min(max_ones, n) + 1))
            if weight:
                idx = rng.choice(n, size=weight, replace=False)
                out[row, idx] = -1
        return out

    return sample


@dataclasses.dataclass
class CRPSet:
    """A set of challenge-response pairs in the +/-1 encoding."""

    challenges: np.ndarray
    responses: np.ndarray

    def __post_init__(self) -> None:
        self.challenges = np.asarray(self.challenges, dtype=np.int8)
        self.responses = np.asarray(self.responses, dtype=np.int8)
        if self.challenges.ndim != 2:
            raise ValueError("challenges must be a 2-D array")
        if self.responses.shape != (self.challenges.shape[0],):
            raise ValueError(
                "responses must be a vector matching the number of challenges"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.challenges.shape[0]

    @property
    def n(self) -> int:
        """Challenge length."""
        return self.challenges.shape[1]

    def split(
        self, train_fraction: float, rng: Optional[np.random.Generator] = None
    ) -> Tuple["CRPSet", "CRPSet"]:
        """Shuffle and split into (train, test)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng() if rng is None else rng
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        tr, te = order[:cut], order[cut:]
        return (
            CRPSet(self.challenges[tr], self.responses[tr]),
            CRPSet(self.challenges[te], self.responses[te]),
        )

    def subsample(
        self, m: int, rng: Optional[np.random.Generator] = None
    ) -> "CRPSet":
        """A uniform random subset of ``m`` CRPs (without replacement)."""
        if m > len(self):
            raise ValueError(f"cannot subsample {m} from {len(self)} CRPs")
        rng = np.random.default_rng() if rng is None else rng
        idx = rng.choice(len(self), size=m, replace=False)
        return CRPSet(self.challenges[idx], self.responses[idx])

    def take(self, m: int) -> "CRPSet":
        """The first ``m`` CRPs (deterministic prefix)."""
        if m > len(self):
            raise ValueError(f"cannot take {m} from {len(self)} CRPs")
        return CRPSet(self.challenges[:m], self.responses[:m])

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist as a compressed .npz file."""
        np.savez_compressed(
            Path(path), challenges=self.challenges, responses=self.responses
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CRPSet":
        """Load a CRP set saved with :meth:`save`."""
        data = np.load(Path(path))
        return cls(data["challenges"], data["responses"])

    def __repr__(self) -> str:
        return f"CRPSet(m={len(self)}, n={self.n})"


def generate_crps(
    puf: PUF,
    m: int,
    rng: Optional[np.random.Generator] = None,
    sampler: ChallengeSampler = uniform_challenges,
    noisy: bool = False,
) -> CRPSet:
    """Draw ``m`` challenges from ``sampler`` and evaluate ``puf`` on them.

    With ``noisy=True`` each response is a single noisy measurement (the
    realistic CRP-collection setting); otherwise the ideal response is
    recorded.
    """
    if m <= 0:
        raise ValueError("CRP count must be positive")
    rng = np.random.default_rng() if rng is None else rng
    challenges = sampler(m, puf.n, rng)
    if noisy:
        responses = puf.eval_noisy(challenges, rng)
    else:
        responses = puf.eval(challenges)
    from repro.telemetry.meter import record as _record

    _record(
        "ex",
        queries=m,
        examples=m,
        challenges=challenges,
        response_bytes=responses.nbytes,
    )
    return CRPSet(challenges, responses)

"""A priority job queue: interactive jobs jump atlas-scale backlogs.

Plain synchronous data structure — the service calls it only from the
event-loop thread, so it needs no locking and no awaits.  Ordering is
``(priority, submission sequence)``: lower priority value runs first,
FIFO within a tier.  A freshly submitted 4-trial what-if therefore
starts ahead of a thousand-trial sweep that has been queued for an hour,
without starving same-tier jobs.

Cancellation of queued jobs uses lazy deletion: :meth:`remove` marks the
id and :meth:`pop` discards marked entries on the way out, keeping both
operations O(log n).
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Set, Tuple


class PriorityJobQueue:
    """Min-heap of ``(priority, seq, job_id)`` with lazy removal."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str]] = []
        self._removed: Set[str] = set()
        self._queued: Set[str] = set()
        self._seq = itertools.count()

    def push(self, job_id: str, priority: int) -> None:
        """Enqueue ``job_id`` at ``priority`` (lower runs first)."""
        if job_id in self._queued:
            raise ValueError(f"job {job_id!r} is already queued")
        self._queued.add(job_id)
        self._removed.discard(job_id)
        heapq.heappush(self._heap, (priority, next(self._seq), job_id))

    def pop(self) -> Optional[str]:
        """The next runnable job id, or None when the queue is empty."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._removed:
                self._removed.discard(job_id)
                continue
            self._queued.discard(job_id)
            return job_id
        return None

    def remove(self, job_id: str) -> bool:
        """Lazily drop a queued job (cancellation); True when it was queued."""
        if job_id not in self._queued:
            return False
        self._queued.discard(job_id)
        self._removed.add(job_id)
        return True

    def pending(self) -> List[str]:
        """Queued job ids in the order :meth:`pop` would return them."""
        live = [entry for entry in self._heap if entry[2] not in self._removed]
        return [job_id for _, _, job_id in sorted(live)]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._queued

    def __len__(self) -> int:
        return len(self._queued)

"""Minimal HTTP/1.1 primitives and routing for the assessment service.

Hand-rolled on purpose: the service ships with zero dependencies beyond
the standard library, and its API surface is small enough that a parser
for exactly what we accept — request line, headers, Content-Length body
— is less code than an abstraction layer over one.  Connections are
``Connection: close`` (one request per connection) except for WebSocket
upgrades, which hand the socket over to the event stream.

:class:`Router` maps ``(METHOD, /path/pattern)`` to handlers, with
``{name}`` segments captured as string parameters::

    router.add("GET", "/v1/jobs/{job_id}", handler)
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Hard cap on request head + body; assessment specs are tiny documents.
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 1 << 20

#: Reason phrases for the statuses this API actually returns.
REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class BadRequest(ValueError):
    """The request is malformed; the connection gets a 400 and closes."""


@dataclasses.dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""

    def json_body(self) -> Any:
        """The body parsed as JSON; :class:`BadRequest` on failure."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


@dataclasses.dataclass
class Response:
    """One HTTP response, encoded with Content-Length framing."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = dataclasses.field(default_factory=dict)

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        lines.extend(f"{k}: {v}" for k, v in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def json_response(status: int, payload: Any, **headers: str) -> Response:
    """A JSON response with sorted keys (stable for tests and curls)."""
    body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")
    return Response(status, body, headers=dict(headers))


def error_response(status: int, message: str, **extra: Any) -> Response:
    """The uniform error shape: ``{"error": {"message": ..., ...}}``."""
    return json_response(status, {"error": {"message": message, **extra}})


def parse_request_head(head: bytes) -> Tuple[str, str, Dict[str, str], Dict[str, str]]:
    """Parse the request line + headers → (method, path, query, headers).

    Raises :class:`BadRequest` on anything that is not a plausible
    HTTP/1.x request head.
    """
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise BadRequest("undecodable request head") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, split.path or "/", query, headers


Handler = Callable[..., Any]


class Router:
    """Ordered ``(method, pattern)`` → handler table with ``{name}`` params."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, "re.Pattern[str]", Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``pattern``."""
        regex = re.compile(
            "^"
            + re.sub(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    def match(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Dict[str, str], bool]:
        """``(handler, params, path_known)`` for a request.

        ``handler`` is None on no match; ``path_known`` distinguishes 404
        (no route at this path) from 405 (path exists, wrong method).
        """
        path_known = False
        for method_, regex, handler in self._routes:
            m = regex.match(path)
            if not m:
                continue
            path_known = True
            if method_ == method:
                return handler, m.groupdict(), True
        return None, {}, path_known

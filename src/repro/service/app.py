"""The assessment service: an asyncio job server over ``TrialRunner``.

``python -m repro serve`` starts one :class:`ReproService`.  Clients
submit assessment jobs over plain HTTP (``POST /v1/jobs``), poll them
(``GET /v1/jobs/{id}``), and stream per-trial progress over a WebSocket
(``GET /v1/jobs/{id}/events``).  Everything is standard library: the
HTTP layer is :mod:`repro.service.routes`, the WebSocket layer is
:mod:`repro.service.wsproto`, and job execution is the existing
fault-tolerant sharded :class:`~repro.runtime.runner.TrialRunner`
running in a thread-pool executor.

Design invariants
-----------------
* **All mutable service state lives on the event-loop thread.**  Worker
  threads report progress only through ``loop.call_soon_threadsafe``;
  handlers and the scheduler never run concurrently with each other.
* **The job directory is the run directory.**  Each job's trials append
  to a crash-safe :class:`~repro.telemetry.ledger.RunLedger` inside
  ``<data_dir>/jobs/<job_id>/``, and every job runs with
  ``resume_from`` pointing at its own ledger — so a SIGKILLed server
  restarted with ``--resume`` re-adopts incomplete jobs and finishes
  them bit-identically, replaying completed trials and executing only
  the missing ones.
* **Jobs run in a copied contextvars context.**  The launcher snapshots
  ``contextvars.copy_context()`` per job and installs a fresh ambient
  :class:`~repro.telemetry.meter.QueryMeter` inside it, so two jobs
  running concurrently in the executor can never share (or clobber) an
  ambient meter inherited from the loop thread.
* **Quota enforcement is admission control.**  A job declares an
  oracle-query budget; :class:`~repro.service.quotas.QuotaLedger`
  rejects submissions that would overdraw the key (HTTP 429) and
  settles actual metered spend — summed from the job's per-trial meter
  snapshots and recorded into its ``meta.json`` — on completion.
"""

from __future__ import annotations

import asyncio
import contextvars
import dataclasses
import functools
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set

from repro.runtime.runner import TrialResult, TrialRunner, trial_record
from repro.telemetry.ledger import RunLedger
from repro.telemetry.meter import QueryMeter, metered

from . import routes, wsproto
from .jobs import (
    ANONYMOUS_KEY,
    Job,
    JobSpec,
    JobStore,
    build_workload,
    new_job_id,
    values_digest,
)
from .queue import PriorityJobQueue
from .quotas import QuotaExceeded, QuotaLedger

SERVICE_INFO_NAME = "service.json"

#: Terminal job states (never re-adopted, never re-queued).
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


# ----------------------------------------------------------------------
# The synchronous job body (runs in the executor, inside a copied
# contextvars context — see ReproService._launch).
# ----------------------------------------------------------------------
def run_job_sync(
    job: Job,
    job_dir: Path,
    emit: Callable[[TrialResult], None],
    cancel: threading.Event,
) -> Dict[str, Any]:
    """Execute one job on ``TrialRunner`` and return its result payload.

    Always resumes from the job's own ledger: on a fresh job the ledger
    is empty and this is a no-op; on an adopted job it replays every
    completed trial bit-identically (each replay still fires ``emit``,
    so event subscribers see one event per trial regardless of how many
    restarts the job survived).
    """
    spec = job.spec
    trial_fn, workload_spec = build_workload(spec.workload, spec.spec)
    ledger = RunLedger(job_dir)
    if ledger.read_meta() is None:
        ledger.write_meta(
            {
                "job_id": job.job_id,
                "workload": spec.workload,
                "spec": dataclasses.asdict(workload_spec),
                "trials": spec.trials,
                "workers": spec.workers,
                "shards": spec.shards,
                "master_seed": spec.seed,
                "api_key": spec.api_key,
                "declared_budget": spec.budget,
            }
        )
    runner = TrialRunner(workers=spec.workers, shards=spec.shards)
    with metered(QueryMeter()):
        report = runner.run(
            trial_fn,
            spec.trials,
            spec.seed,
            {"spec": workload_spec},
            ledger=ledger,
            resume_from=ledger,
            on_result=emit,
            cancel=cancel,
        )

    meter = QueryMeter()
    for result in report.results:
        queries = (result.telemetry or {}).get("queries")
        if isinstance(queries, dict):
            meter.merge_snapshot(queries)
    values = [trial_record(r)["value"] for r in report.results]
    digest = values_digest(values)

    meta = ledger.read_meta() or {}
    meta["quota"] = {
        "api_key": spec.api_key,
        "declared_budget": spec.budget,
        "metered_queries": meter.total_queries,
        "crp_bytes": meter.crp_bytes,
    }
    ledger.write_meta(meta)

    return {
        "cancelled": report.cancelled,
        "completed": len(report.results),
        "failed": len(report.failures()),
        "replayed": report.replayed_count,
        "executor": report.executor,
        "wall_seconds": report.wall_seconds,
        "total_queries": meter.total_queries,
        "digest": digest,
        "values": values,
    }


class ReproService:
    """The assessment-as-a-service server (see module docstring).

    Parameters
    ----------
    data_dir:
        Service state root: ``jobs/`` (one run directory per job),
        ``quotas.json``, and ``service.json`` (written on start with the
        bound host/port/pid so tools can discover a ``--port 0`` server).
    host, port:
        Bind address; port 0 picks a free port.
    max_concurrent:
        Jobs running simultaneously; further jobs wait in the priority
        queue.
    default_quota:
        Cumulative oracle-query limit per API key (None disables
        enforcement, usage is still metered and recorded).
    resume:
        Re-adopt incomplete (queued/running) persisted jobs on start.
    """

    def __init__(
        self,
        data_dir: Path,
        host: str = "127.0.0.1",
        port: int = 8321,
        max_concurrent: int = 1,
        default_quota: Optional[int] = None,
        resume: bool = True,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.host = host
        self.port = port
        self.max_concurrent = max(1, int(max_concurrent))
        self.resume = resume
        self.store = JobStore(self.data_dir)
        self.quotas = QuotaLedger(self.data_dir, default_limit=default_quota)
        self._jobs: Dict[str, Job] = {}
        self._queue = PriorityJobQueue()
        self._cancels: Dict[str, threading.Event] = {}
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._subscribers: Dict[str, Set["asyncio.Queue[Optional[dict]]"]] = {}
        self._finish_tasks: Set["asyncio.Task[None]"] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrent, thread_name_prefix="repro-job"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._router = routes.Router()
        self._router.add("GET", "/v1/healthz", self._handle_healthz)
        self._router.add("GET", "/v1/quota", self._handle_quota)
        self._router.add("POST", "/v1/jobs", self._handle_submit)
        self._router.add("GET", "/v1/jobs", self._handle_list)
        self._router.add("GET", "/v1/jobs/{job_id}", self._handle_get)
        self._router.add("POST", "/v1/jobs/{job_id}/cancel", self._handle_cancel)
        # /v1/jobs/{job_id}/events is WebSocket-only; handled in _dispatch.

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Adopt persisted jobs, bind the listener, write service.json."""
        if self.resume:
            self._adopt_jobs()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=2 * routes.MAX_BODY_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        info = {
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "data_dir": str(self.data_dir),
        }
        (self.data_dir / SERVICE_INFO_NAME).write_text(
            json.dumps(info, sort_keys=True, indent=2) + "\n"
        )
        self._pump()

    async def serve_forever(self) -> None:
        """Serve until cancelled (``python -m repro serve`` sits here)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, cancel_running: bool = True) -> None:
        """Stop accepting connections and wind down job execution."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if cancel_running:
            for event in self._cancels.values():
                event.set()
        if self._finish_tasks:
            await asyncio.gather(*tuple(self._finish_tasks), return_exceptions=True)
        self._executor.shutdown(wait=True)

    def _adopt_jobs(self) -> None:
        """Re-register persisted jobs; re-queue the incomplete ones.

        Queued and running jobs from a previous (possibly SIGKILLed)
        server go back into the priority queue flagged ``adopted``;
        their quota reservations are rebuilt from the declared budgets.
        Terminal jobs are registered read-only so their records and
        event streams stay servable.
        """
        for job_id, job in sorted(self.store.load_all().items()):
            self._jobs[job_id] = job
            self._events.setdefault(job_id, [])
            if job.state in TERMINAL_STATES:
                continue
            job.adopted = True
            job.state = "queued"
            try:
                self.quotas.reserve(job_id, job.spec.api_key, job.spec.budget or 0)
            except QuotaExceeded as exc:
                job.state = "failed"
                job.error = f"quota exceeded at adoption: {exc}"
                job.finished_at = time.time()
                self.store.save(job)
                continue
            self.store.save(job)
            self._queue.push(job_id, job.spec.effective_priority)

    # ------------------------------------------------------------------
    # Scheduling and execution.
    # ------------------------------------------------------------------
    def _running_count(self) -> int:
        return len(self._cancels)

    def _pump(self) -> None:
        """Start queued jobs while concurrency slots are free."""
        while self._running_count() < self.max_concurrent:
            job_id = self._queue.pop()
            if job_id is None:
                return
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                continue
            self._launch(job)

    def _launch(self, job: Job) -> None:
        """Start one job in the executor inside a copied context.

        ``contextvars.copy_context()`` gives the job thread a private
        snapshot of the loop thread's context, and ``run_job_sync``
        installs a fresh ambient :class:`QueryMeter` inside it — the
        satellite-4 fix: without the copy, concurrent jobs inherit the
        *same* ambient meter object through the executor threads and
        their query counts bleed into each other.
        """
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.started_at = time.time()
        self.store.save(job)
        self._publish(job.job_id, {"event": "status", "state": "running"})
        cancel = threading.Event()
        self._cancels[job.job_id] = cancel

        total = job.spec.trials

        def emit(result: TrialResult) -> None:  # worker thread
            loop.call_soon_threadsafe(self._on_trial, job.job_id, result, total)

        ctx = contextvars.copy_context()
        body = functools.partial(
            ctx.run, run_job_sync, job, self.store.job_dir(job.job_id), emit, cancel
        )
        future = loop.run_in_executor(self._executor, body)
        task = loop.create_task(self._finish(job, future))
        self._finish_tasks.add(task)
        task.add_done_callback(self._finish_tasks.discard)

    def _on_trial(self, job_id: str, result: TrialResult, total: int) -> None:
        """Record one completed/replayed trial (event-loop thread)."""
        job = self._jobs.get(job_id)
        if job is None:
            return
        job.completed_trials += 1
        self._publish(
            job_id,
            {
                "event": "trial",
                "index": result.index,
                "ok": result.ok,
                "replayed": result.replayed,
                "seconds": result.seconds,
                "completed": job.completed_trials,
                "total": total,
            },
        )

    async def _finish(self, job: Job, future: "asyncio.Future[Dict[str, Any]]") -> None:
        """Settle a finished job: state, quota, persistence, events."""
        spent = 0
        try:
            result = await future
        except Exception as exc:  # config errors, executor teardown
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            job.result = result
            job.completed_trials = result["completed"]
            spent = int(result.get("total_queries") or 0)
            if result["cancelled"]:
                job.state = "cancelled"
            elif result["failed"]:
                job.state = "failed"
                job.error = f"{result['failed']} of {job.spec.trials} trials failed"
            else:
                job.state = "done"
        job.finished_at = time.time()
        self.quotas.settle(job.job_id, job.spec.api_key, spent)
        self._cancels.pop(job.job_id, None)
        self.store.save(job)
        self._publish(job.job_id, {"event": "done", "job": self._job_summary(job)})
        for queue in self._subscribers.get(job.job_id, set()):
            queue.put_nowait(None)
        self._pump()

    # ------------------------------------------------------------------
    # Events.
    # ------------------------------------------------------------------
    def _publish(self, job_id: str, event: Dict[str, Any]) -> None:
        """Buffer an event and fan it out to live subscribers."""
        self._events.setdefault(job_id, []).append(event)
        for queue in self._subscribers.get(job_id, set()):
            queue.put_nowait(event)

    def _job_summary(self, job: Job) -> Dict[str, Any]:
        """The job view used in event payloads and list responses.

        Omits the (potentially large) per-trial ``values`` array; fetch
        ``GET /v1/jobs/{id}`` for the full record.
        """
        payload = job.as_dict()
        result = payload.get("result")
        if isinstance(result, dict):
            payload["result"] = {k: v for k, v in result.items() if k != "values"}
        return payload

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_one(reader, writer)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except asyncio.TimeoutError:
            return
        if len(head) > routes.MAX_HEAD_BYTES:
            writer.write(routes.error_response(413, "request head too large").encode())
            await writer.drain()
            return
        try:
            method, path, query, headers = routes.parse_request_head(head[:-4])
            length = int(headers.get("content-length", "0") or 0)
            if length > routes.MAX_BODY_BYTES:
                writer.write(
                    routes.error_response(413, "request body too large").encode()
                )
                await writer.drain()
                return
            body = await reader.readexactly(length) if length else b""
            request = routes.Request(method, path, query, headers, body)
        except routes.BadRequest as exc:
            writer.write(routes.error_response(400, str(exc)).encode())
            await writer.drain()
            return
        await self._dispatch(request, reader, writer)

    async def _dispatch(
        self,
        request: routes.Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # The event stream is its own protocol once upgraded.
        events_match = None
        if request.path.startswith("/v1/jobs/") and request.path.endswith("/events"):
            events_match = request.path[len("/v1/jobs/") : -len("/events")]
        if events_match is not None and request.method == "GET":
            await self._handle_events(request, events_match, reader, writer)
            return
        handler, params, path_known = self._router.match(request.method, request.path)
        if handler is None:
            response = (
                routes.error_response(405, f"method {request.method} not allowed")
                if path_known
                else routes.error_response(404, f"no route for {request.path}")
            )
        else:
            try:
                response = handler(request, **params)
            except routes.BadRequest as exc:
                response = routes.error_response(400, str(exc))
            except QuotaExceeded as exc:
                response = routes.json_response(
                    429, {"error": {"message": str(exc), **exc.as_dict()}}
                )
            except ValueError as exc:
                response = routes.error_response(400, str(exc))
            except Exception as exc:  # never leak a traceback to the wire
                response = routes.error_response(
                    500, f"{type(exc).__name__}: {exc}"
                )
        writer.write(response.encode())
        await writer.drain()

    # ------------------------------------------------------------------
    # Plain-HTTP handlers (synchronous: they only touch loop-thread state).
    # ------------------------------------------------------------------
    def _handle_healthz(self, request: routes.Request) -> routes.Response:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return routes.json_response(
            200,
            {
                "ok": True,
                "jobs": states,
                "queued": len(self._queue),
                "running": self._running_count(),
                "max_concurrent": self.max_concurrent,
            },
        )

    def _handle_quota(self, request: routes.Request) -> routes.Response:
        api_key = request.header("x-api-key") or ANONYMOUS_KEY
        return routes.json_response(200, self.quotas.status(api_key))

    def _handle_submit(self, request: routes.Request) -> routes.Response:
        payload = request.json_body()
        if not isinstance(payload, dict):
            raise routes.BadRequest("job submission must be a JSON object")
        api_key = request.header("x-api-key") or payload.get("api_key") or ANONYMOUS_KEY
        payload["api_key"] = api_key
        try:
            spec = JobSpec.from_dict(payload)
        except TypeError as exc:
            raise routes.BadRequest(str(exc)) from exc
        job = Job(job_id=new_job_id(), spec=spec)
        self.quotas.reserve(job.job_id, api_key, spec.budget or 0)  # 429 on exceed
        self._jobs[job.job_id] = job
        self._events[job.job_id] = []
        self.store.save(job)
        self._queue.push(job.job_id, spec.effective_priority)
        self._publish(job.job_id, {"event": "status", "state": "queued"})
        self._pump()
        return routes.json_response(201, self._job_summary(job))

    def _handle_list(self, request: routes.Request) -> routes.Response:
        state = request.query.get("state")
        jobs = [
            self._job_summary(job)
            for job in sorted(self._jobs.values(), key=lambda j: j.created_at)
            if state is None or job.state == state
        ]
        return routes.json_response(200, {"jobs": jobs, "count": len(jobs)})

    def _handle_get(self, request: routes.Request, job_id: str) -> routes.Response:
        job = self._jobs.get(job_id)
        if job is None:
            return routes.error_response(404, f"no such job: {job_id}")
        return routes.json_response(200, job.as_dict())

    def _handle_cancel(self, request: routes.Request, job_id: str) -> routes.Response:
        job = self._jobs.get(job_id)
        if job is None:
            return routes.error_response(404, f"no such job: {job_id}")
        if job.state in TERMINAL_STATES:
            return routes.error_response(
                409, f"job {job_id} is already {job.state}"
            )
        if job.state == "queued" and self._queue.remove(job_id):
            job.state = "cancelled"
            job.finished_at = time.time()
            self.quotas.release(job_id)
            self.store.save(job)
            self._publish(job_id, {"event": "done", "job": self._job_summary(job)})
            for queue in self._subscribers.get(job_id, set()):
                queue.put_nowait(None)
        elif job_id in self._cancels:
            self._cancels[job_id].set()  # _finish settles state + quota
        return routes.json_response(200, self._job_summary(job))

    # ------------------------------------------------------------------
    # The WebSocket event stream.
    # ------------------------------------------------------------------
    async def _handle_events(
        self,
        request: routes.Request,
        job_id: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            writer.write(routes.error_response(404, f"no such job: {job_id}").encode())
            await writer.drain()
            return
        key = request.header("sec-websocket-key")
        if request.header("upgrade").lower() != "websocket" or not key:
            writer.write(
                routes.error_response(
                    426, "this endpoint requires a WebSocket upgrade"
                ).encode()
            )
            await writer.drain()
            return
        accept = wsproto.accept_key(key)
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()

        # Snapshot the buffer and subscribe atomically (loop thread, no
        # await between the two) so no event is missed or duplicated.
        backlog = list(self._events.get(job_id, ()))
        queue: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        subscribed = job.state not in TERMINAL_STATES
        if subscribed:
            self._subscribers.setdefault(job_id, set()).add(queue)
        closed = asyncio.Event()
        reader_task = asyncio.ensure_future(
            self._ws_reader(reader, writer, closed)
        )
        try:
            await self._ws_send(
                writer, {"event": "hello", "job": self._job_summary(job)}
            )
            for event in backlog:
                await self._ws_send(writer, event)
            if subscribed:
                while not closed.is_set():
                    getter = asyncio.ensure_future(queue.get())
                    waiter = asyncio.ensure_future(closed.wait())
                    done, _ = await asyncio.wait(
                        {getter, waiter}, return_when=asyncio.FIRST_COMPLETED
                    )
                    for pending in (getter, waiter):
                        if pending not in done:
                            pending.cancel()
                    if getter in done:
                        event = getter.result()
                        if event is None:
                            break
                        await self._ws_send(writer, event)
            writer.write(wsproto.encode_close(1000, "stream complete"))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            reader_task.cancel()
            self._subscribers.get(job_id, set()).discard(queue)

    async def _ws_send(self, writer: asyncio.StreamWriter, event: Dict[str, Any]) -> None:
        writer.write(wsproto.encode_text(json.dumps(event, sort_keys=True)))
        await writer.drain()

    async def _ws_reader(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        closed: asyncio.Event,
    ) -> None:
        """Drain client frames: answer pings, honour close, flag EOF."""
        decoder = wsproto.FrameDecoder()
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    closed.set()
                    return
                decoder.feed(data)
                for opcode, payload in decoder.frames():
                    if opcode == wsproto.OP_PING:
                        writer.write(wsproto.encode_frame(wsproto.OP_PONG, payload))
                        await writer.drain()
                    elif opcode == wsproto.OP_CLOSE:
                        closed.set()
                        return
        except (wsproto.ProtocolError, ConnectionError, OSError):
            closed.set()


async def _serve_main(service: ReproService) -> None:
    """Run the service until SIGINT/SIGTERM."""
    import signal

    await service.start()
    print(f"repro service listening on http://{service.host}:{service.port}")
    print(f"data dir: {service.data_dir}")
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    serve = asyncio.ensure_future(service.serve_forever())
    stopper = asyncio.ensure_future(stop.wait())
    await asyncio.wait({serve, stopper}, return_when=asyncio.FIRST_COMPLETED)
    serve.cancel()
    stopper.cancel()
    await service.stop(cancel_running=True)


def run_serve(
    data_dir: str,
    host: str = "127.0.0.1",
    port: int = 8321,
    max_concurrent: int = 1,
    default_quota: Optional[int] = None,
    resume: bool = True,
) -> int:
    """The ``python -m repro serve`` entry point."""
    service = ReproService(
        Path(data_dir),
        host=host,
        port=port,
        max_concurrent=max_concurrent,
        default_quota=default_quota,
        resume=resume,
    )
    try:
        asyncio.run(_serve_main(service))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    return 0

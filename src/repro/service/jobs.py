"""Assessment jobs: the unit of work the service queues, runs, persists.

A *job* is one ``TrialRunner`` invocation described as data: a workload
name from :data:`WORKLOADS`, a spec-override dict, a trial count, a
master seed, and the client identity/budget the quota layer accounts
under.  Each job owns a directory ``<data_dir>/jobs/<job_id>/`` holding

* ``job.json`` — the job record (spec, state, progress, result), written
  atomically on every transition so a killed server can re-adopt it;
* ``ledger.jsonl`` / ``ledger-shardNN.jsonl`` + ``meta.json`` — the
  standard crash-safe :class:`~repro.telemetry.ledger.RunLedger` run
  directory the trials append to, which is exactly what makes restart
  recovery free: re-adoption is just ``TrialRunner.run(...,
  resume_from=<that ledger>)``.

The job directory *is* the run directory — there is no second source of
truth to reconcile after a crash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import secrets
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.analysis import atlas as _atlas
from repro.runtime import workloads as _workloads

#: Workload name -> (trial function, spec dataclass).  The service-facing
#: twin of the CLI's ``_resolve_workload``: every CLI workload is a
#: servable scenario, constructed from a plain JSON spec dict.
WORKLOADS: Dict[str, Tuple[Callable[..., Any], type]] = {
    "curve": (_workloads.learning_curve_trial, _workloads.LearningCurveSpec),
    "active": (_workloads.active_trial, _workloads.ActiveTrialSpec),
    "lmn": (_workloads.lmn_trial, _workloads.LMNTrialSpec),
    "km": (_workloads.km_trial, _workloads.KMTrialSpec),
    "sq": (_workloads.sq_trial, _workloads.SQTrialSpec),
    "fleet": (_workloads.fleet_eval_trial, _workloads.FleetEvalSpec),
    "chow": (_workloads.chow_brpuf_trial, _workloads.ChowTrialSpec),
    "skew": (_workloads.skewed_sleep_trial, _workloads.SkewedSleepSpec),
    "fault": (_workloads.fault_injection_trial, _workloads.FaultInjectionSpec),
    "atlas": (_atlas.atlas_trial, _atlas.AtlasTrialSpec),
}

#: Jobs at or under this many trials default to the interactive priority
#: tier (they preempt queued atlas-scale backlogs).
SMALL_JOB_TRIALS = 16

#: Priority values (lower runs first).
PRIORITY_INTERACTIVE = 0
PRIORITY_BATCH = 10

#: The job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Default client identity when no ``X-API-Key`` header is sent.
ANONYMOUS_KEY = "anonymous"


class UnknownWorkload(ValueError):
    """The requested workload name is not in :data:`WORKLOADS`."""


def build_workload(name: str, spec: Optional[Dict[str, Any]] = None):
    """``(trial_fn, spec_instance)`` for a workload name + JSON spec dict.

    Spec values arrive as JSON types; lists are converted to tuples so
    tuple-typed dataclass fields (``budgets``, ``fail_indices``)
    round-trip.  Unknown workloads and unknown/invalid spec fields raise
    ``ValueError`` — the route layer turns that into HTTP 400, so a bad
    request can never reach the queue.
    """
    if name not in WORKLOADS:
        raise UnknownWorkload(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        )
    trial_fn, spec_cls = WORKLOADS[name]
    overrides = dict(spec or {})
    known = {f.name for f in dataclasses.fields(spec_cls)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ValueError(
            f"unknown spec field(s) {unknown} for workload {name!r}; "
            f"expected a subset of {sorted(known)}"
        )
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in overrides.items()
    }
    return trial_fn, spec_cls(**coerced)


def new_job_id() -> str:
    """A short unique job id (``job-<12 hex>``)."""
    return f"job-{secrets.token_hex(6)}"


def values_digest(values) -> str:
    """A canonical sha256 over a job's per-trial values.

    The restart-survival contract is *bit-identical final results*; this
    digest is how two runs of one job — or a killed-and-resumed run and
    a clean one — prove identity with a single string compare.
    """
    material = json.dumps(values, sort_keys=True)
    return "sha256:" + hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class JobSpec:
    """What a client submits: the assessment to run and who pays for it."""

    workload: str
    spec: Dict[str, Any] = dataclasses.field(default_factory=dict)
    trials: int = 4
    seed: int = 0
    workers: int = 1
    shards: int = 1
    priority: Optional[int] = None
    budget: Optional[int] = None
    api_key: str = ANONYMOUS_KEY

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.workers < 1 or self.shards < 1:
            raise ValueError("workers and shards must be >= 1")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget}")
        if not isinstance(self.spec, dict):
            raise ValueError("spec must be a JSON object")
        build_workload(self.workload, self.spec)  # validates eagerly

    @property
    def effective_priority(self) -> int:
        """Explicit priority, or the small-job/backlog default split.

        Small jobs (``trials <= SMALL_JOB_TRIALS``) default to the
        interactive tier so a quick what-if assessment never waits
        behind a thousand-trial atlas sweep already in the queue.
        """
        if self.priority is not None:
            return int(self.priority)
        return (
            PRIORITY_INTERACTIVE
            if self.trials <= SMALL_JOB_TRIALS
            else PRIORITY_BATCH
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-ready)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Build and validate a spec from a parsed JSON body."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown job field(s) {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        return cls(**payload)


@dataclasses.dataclass
class Job:
    """One job's full record: spec, lifecycle state, progress, result."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    created_at: float = dataclasses.field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    completed_trials: int = 0
    adopted: bool = False
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """The JSON view served by the API and persisted to ``job.json``."""
        payload = dataclasses.asdict(self)
        payload["spec"] = self.spec.as_dict()
        payload["priority"] = self.spec.effective_priority
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Job":
        """Reconstruct a job from a persisted ``job.json`` payload."""
        fields = {f.name for f in dataclasses.fields(cls)}
        data = {k: v for k, v in payload.items() if k in fields}
        data["spec"] = JobSpec.from_dict(data["spec"])
        return cls(**data)


class JobStore:
    """Directory-backed persistence for jobs (one subdir per job).

    ``save`` writes ``job.json`` atomically (mkstemp + ``os.replace``)
    so a SIGKILL between transitions leaves either the old record or the
    new one, never a torn file; ``load_all`` is the restart-adoption
    scan.
    """

    def __init__(self, data_dir: Path) -> None:
        self.data_dir = Path(data_dir)
        self.jobs_dir = self.data_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    def job_dir(self, job_id: str) -> Path:
        """The directory owning ``job_id`` (also its run/ledger directory)."""
        return self.jobs_dir / job_id

    def save(self, job: Job) -> None:
        """Persist ``job.json`` atomically inside the job's directory."""
        job_dir = self.job_dir(job.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(job.as_dict(), sort_keys=True, indent=2)
        fd, tmp = None, None
        try:
            import tempfile

            fd, tmp = tempfile.mkstemp(prefix="job-", suffix=".tmp", dir=job_dir)
            os.write(fd, (payload + "\n").encode("utf-8"))
            os.close(fd)
            fd = None
            os.replace(tmp, job_dir / "job.json")
            tmp = None
        finally:
            if fd is not None:
                os.close(fd)
            if tmp is not None and os.path.exists(tmp):
                os.unlink(tmp)

    def load(self, job_id: str) -> Optional[Job]:
        """The persisted job record, or None when absent/unreadable."""
        path = self.job_dir(job_id) / "job.json"
        if not path.exists():
            return None
        try:
            return Job.from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError):
            return None

    def load_all(self) -> Dict[str, Job]:
        """Every readable persisted job, keyed by id (the adoption scan)."""
        jobs: Dict[str, Job] = {}
        for job_json in sorted(self.jobs_dir.glob("*/job.json")):
            job = self.load(job_json.parent.name)
            if job is not None:
                jobs[job.job_id] = job
        return jobs

"""A blocking standard-library client for the assessment service.

Used by the test suite and the CI smoke job (and handy from a REPL);
plain HTTP goes through :mod:`http.client`, the event stream opens a
raw socket and speaks :mod:`repro.service.wsproto` directly — the same
sans-IO frame code the server uses, so a protocol bug cannot hide
behind a second implementation.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, Iterator, List, Optional

from . import wsproto


class ServiceError(RuntimeError):
    """A non-2xx API response."""

    def __init__(self, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class ServiceClient:
    """Talk to one running :class:`~repro.service.app.ReproService`."""

    def __init__(
        self, host: str, port: int, api_key: Optional[str] = None, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        """One JSON request/response; :class:`ServiceError` on non-2xx."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"}
            if self.api_key:
                headers["X-API-Key"] = self.api_key
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            data = json.loads(raw.decode("utf-8")) if raw else None
            if response.status >= 400:
                raise ServiceError(response.status, data)
            return data
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/healthz")

    def quota(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/quota")

    def submit(self, **job_fields: Any) -> Dict[str, Any]:
        """``POST /v1/jobs`` — e.g. ``submit(workload="fleet", trials=4)``."""
        return self.request("POST", "/v1/jobs", job_fields)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        return self.request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its record."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------
    def stream_events(
        self, job_id: str, timeout: float = 120.0
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's events from the WebSocket until the server closes.

        Performs the upgrade handshake (verifying ``Sec-WebSocket-Accept``),
        then yields each JSON text frame; returns when the server sends a
        close frame or the connection ends.
        """
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        try:
            key = wsproto.handshake_key()
            lines = [
                f"GET /v1/jobs/{job_id}/events HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                "Upgrade: websocket",
                "Connection: Upgrade",
                f"Sec-WebSocket-Key: {key}",
                "Sec-WebSocket-Version: 13",
            ]
            if self.api_key:
                lines.append(f"X-API-Key: {self.api_key}")
            sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

            head = b""
            while b"\r\n\r\n" not in head:
                chunk = sock.recv(4096)
                if not chunk:
                    raise ServiceError(0, "connection closed during WS handshake")
                head += chunk
            head, _, rest = head.partition(b"\r\n\r\n")
            status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            if " 101 " not in status_line + " ":
                raise ServiceError(0, f"WS upgrade refused: {status_line}")
            expected = wsproto.accept_key(key)
            if f"sec-websocket-accept: {expected}".lower() not in head.decode(
                "latin-1"
            ).lower():
                raise ServiceError(0, "bad Sec-WebSocket-Accept in WS handshake")

            decoder = wsproto.FrameDecoder()
            decoder.feed(rest)
            while True:
                for opcode, payload in decoder.frames():
                    if opcode == wsproto.OP_CLOSE:
                        return
                    if opcode == wsproto.OP_PING:
                        sock.sendall(
                            wsproto.encode_frame(
                                wsproto.OP_PONG, payload, mask=True
                            )
                        )
                    elif opcode == wsproto.OP_TEXT:
                        yield json.loads(payload.decode("utf-8"))
                data = sock.recv(4096)
                if not data:
                    return
                decoder.feed(data)
        finally:
            sock.close()


def read_service_info(data_dir) -> Dict[str, Any]:
    """Parse ``<data_dir>/service.json`` (host/port/pid of a live server)."""
    from pathlib import Path

    return json.loads((Path(data_dir) / "service.json").read_text())


def client_from_data_dir(data_dir, **kwargs: Any) -> ServiceClient:
    """A client bound to the server that wrote ``<data_dir>/service.json``."""
    info = read_service_info(data_dir)
    return ServiceClient(info["host"], info["port"], **kwargs)

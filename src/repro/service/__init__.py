"""Assessment-as-a-service: an asyncio job server over ``TrialRunner``.

Start one with ``python -m repro serve --data-dir runs/service``; see
``docs/SERVICE.md`` for the API.  Public surface:

* :class:`~repro.service.app.ReproService` — the server.
* :class:`~repro.service.client.ServiceClient` — blocking stdlib client.
* :class:`~repro.service.jobs.JobSpec` / :class:`~repro.service.jobs.Job`
  — the job model, plus the :data:`~repro.service.jobs.WORKLOADS`
  registry mapping workload names to trial functions.
* :class:`~repro.service.quotas.QuotaLedger` — per-API-key cumulative
  oracle-query budgets (HTTP 429 on overdraw).
"""

from .app import ReproService, run_serve
from .client import ServiceClient, ServiceError, client_from_data_dir
from .jobs import WORKLOADS, Job, JobSpec, JobStore, build_workload
from .quotas import QuotaExceeded, QuotaLedger
from .queue import PriorityJobQueue

__all__ = [
    "ReproService",
    "run_serve",
    "ServiceClient",
    "ServiceError",
    "client_from_data_dir",
    "WORKLOADS",
    "Job",
    "JobSpec",
    "JobStore",
    "build_workload",
    "QuotaExceeded",
    "QuotaLedger",
    "PriorityJobQueue",
]

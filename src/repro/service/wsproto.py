"""A hand-rolled, sans-IO WebSocket protocol layer (RFC 6455 subset).

The assessment service streams per-trial progress over WebSocket without
taking on a server framework, so this module implements exactly the
protocol surface that needs: the HTTP upgrade handshake accept key,
frame encoding (server frames unmasked, client frames masked), and an
incremental :class:`FrameDecoder` that is pure bytes-in/frames-out — no
sockets, no asyncio — so the same code path serves the asyncio server,
the blocking test client, and byte-level unit tests.

Supported subset: single-frame (FIN) text/binary/close/ping/pong
messages with 7/16/64-bit payload lengths and client masking.
Fragmented messages (FIN=0 continuation frames) are rejected loudly —
every message this service sends or accepts is one small JSON document,
so silent reassembly bugs are worth less than a clear error.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import List, Optional, Tuple

#: The fixed GUID every WebSocket handshake concatenates (RFC 6455 §4.2.2).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Frame opcodes (RFC 6455 §5.2).
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Largest payload a peer may send us (a JSON event is < 1 KiB; this is
#: a hard denial-of-service guard, not a tuning knob).
MAX_PAYLOAD = 1 << 20


class ProtocolError(ValueError):
    """A malformed or unsupported WebSocket frame."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((client_key.strip() + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_key() -> str:
    """A fresh random ``Sec-WebSocket-Key`` for a client handshake."""
    return base64.b64encode(os.urandom(16)).decode("ascii")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One complete FIN frame: header, length, optional mask, payload.

    Servers send unmasked frames; clients MUST mask (RFC 6455 §5.3), so
    the test client passes ``mask=True`` and gets a random masking key.
    """
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    header = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = _apply_mask(payload, key)
    return bytes(header) + payload


def encode_text(text: str, mask: bool = False) -> bytes:
    """A single-frame text message."""
    return encode_frame(OP_TEXT, text.encode("utf-8"), mask=mask)


def encode_close(code: int = 1000, reason: str = "", mask: bool = False) -> bytes:
    """A close frame carrying ``code`` and an optional UTF-8 reason."""
    return encode_frame(
        OP_CLOSE, struct.pack(">H", code) + reason.encode("utf-8"), mask=mask
    )


def _apply_mask(payload: bytes, key: bytes) -> bytes:
    """XOR ``payload`` with the 4-byte masking ``key`` (self-inverse)."""
    repeated = (key * (len(payload) // 4 + 1))[: len(payload)]
    return bytes(a ^ b for a, b in zip(payload, repeated))


class FrameDecoder:
    """Incremental frame parser: feed bytes, take complete frames.

    Sans-IO on purpose — the asyncio server feeds it ``reader.read()``
    chunks and the blocking client feeds it ``sock.recv()`` chunks, and
    both get the same parsing, masking, and validation behaviour::

        decoder = FrameDecoder()
        decoder.feed(data)
        for opcode, payload in decoder.frames():
            ...
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append received bytes to the parse buffer."""
        self._buffer.extend(data)
        if len(self._buffer) > 2 * MAX_PAYLOAD:
            raise ProtocolError("receive buffer exceeds MAX_PAYLOAD bounds")

    def next_frame(self) -> Optional[Tuple[int, bytes]]:
        """The next complete ``(opcode, payload)``, or None if incomplete.

        Masked payloads (client frames) are unmasked before return.
        Raises :class:`ProtocolError` on fragmented (FIN=0) frames or
        oversized payloads.
        """
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        if not first & 0x80:
            raise ProtocolError("fragmented frames are not supported")
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            (length,) = struct.unpack_from(">H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            (length,) = struct.unpack_from(">Q", buf, offset)
            offset += 8
        if length > MAX_PAYLOAD:
            raise ProtocolError(f"frame payload of {length} bytes exceeds MAX_PAYLOAD")
        key = b""
        if masked:
            if len(buf) < offset + 4:
                return None
            key = bytes(buf[offset : offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset : offset + length])
        del buf[: offset + length]
        if masked:
            payload = _apply_mask(payload, key)
        return opcode, payload

    def frames(self) -> List[Tuple[int, bytes]]:
        """Every complete frame currently buffered, in arrival order."""
        out: List[Tuple[int, bytes]] = []
        while True:
            frame = self.next_frame()
            if frame is None:
                return out
            out.append(frame)

"""Per-client oracle-query quota accounting for the assessment service.

The paper's central resource is *oracle queries* — every workload meters
them through :class:`~repro.telemetry.meter.QueryMeter`, and every trial
ships its meter snapshot home in the ledger.  This module turns those
totals into an enforceable budget: each API key has a cumulative query
limit, a job must *declare* a budget at submission, and the service

1. rejects the submission (HTTP 429 upstream) when the key's settled
   usage plus its outstanding reservations plus the declared budget
   would exceed the limit — admission control, so a backlog of accepted
   jobs can never overdraw a key;
2. holds the declared budget as a *reservation* while the job is queued
   or running;
3. on completion *settles* the reservation against the actual metered
   spend (summed from the job's per-trial snapshots) — clients are
   charged what they used, not what they declared.

Settled usage persists to ``<data_dir>/quotas.json`` (atomic write), so
a restarted server keeps charging the same keys; reservations are
in-memory only and are reconstructed by job adoption.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

QUOTAS_NAME = "quotas.json"


class QuotaExceeded(Exception):
    """Admission would overdraw the key's cumulative query budget."""

    def __init__(
        self, api_key: str, limit: int, used: int, reserved: int, requested: int
    ) -> None:
        self.api_key = api_key
        self.limit = limit
        self.used = used
        self.reserved = reserved
        self.requested = requested
        super().__init__(
            f"quota exceeded for API key {api_key!r}: limit {limit}, "
            f"settled usage {used}, reserved {reserved}, requested {requested}"
        )

    def as_dict(self) -> Dict[str, int]:
        """JSON payload for the 429 response body."""
        return {
            "limit": self.limit,
            "used": self.used,
            "reserved": self.reserved,
            "requested": self.requested,
        }


class QuotaLedger:
    """Cumulative per-API-key query accounting with reservations.

    Parameters
    ----------
    data_dir:
        Where ``quotas.json`` lives; existing usage is loaded eagerly.
    default_limit:
        Per-key cumulative query limit; None disables enforcement (usage
        is still tracked and settled, so enabling limits later works).
    """

    def __init__(self, data_dir: Path, default_limit: Optional[int] = None) -> None:
        self.data_dir = Path(data_dir)
        self.default_limit = default_limit
        self.path = self.data_dir / QUOTAS_NAME
        self._usage: Dict[str, int] = {}
        self._reservations: Dict[str, Dict[str, int]] = {}  # job_id -> {key, amount}
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
                self._usage = {
                    str(k): int(v) for k, v in (payload.get("usage") or {}).items()
                }
            except (ValueError, TypeError, AttributeError):
                # A torn quotas.json must not brick the server; usage
                # restarts from the jobs' meta.json records if needed.
                self._usage = {}

    # ------------------------------------------------------------------
    def usage(self, api_key: str) -> int:
        """Settled (actually metered) queries charged to ``api_key``."""
        return self._usage.get(api_key, 0)

    def reserved(self, api_key: str) -> int:
        """Outstanding declared budgets held for ``api_key``'s live jobs."""
        return sum(
            r["amount"] for r in self._reservations.values() if r["key"] == api_key
        )

    def limit(self, api_key: str) -> Optional[int]:
        """The key's limit (currently the service-wide default)."""
        return self.default_limit

    def status(self, api_key: str) -> Dict[str, object]:
        """The quota view served by ``GET /v1/quota``."""
        limit = self.limit(api_key)
        used, reserved = self.usage(api_key), self.reserved(api_key)
        return {
            "api_key": api_key,
            "limit": limit,
            "used": used,
            "reserved": reserved,
            "remaining": None if limit is None else max(0, limit - used - reserved),
        }

    # ------------------------------------------------------------------
    def reserve(self, job_id: str, api_key: str, declared_budget: int) -> None:
        """Admit a job, holding ``declared_budget`` against the key's limit.

        Raises :class:`QuotaExceeded` when settled usage + outstanding
        reservations + the declared budget would exceed the limit.
        Idempotent per job id (re-adoption re-reserves safely).
        """
        if declared_budget < 0:
            raise ValueError("declared budget must be non-negative")
        existing = self._reservations.get(job_id)
        if existing is not None and existing["key"] == api_key:
            existing["amount"] = declared_budget
            return
        limit = self.limit(api_key)
        if limit is not None:
            used, reserved = self.usage(api_key), self.reserved(api_key)
            if used + reserved + declared_budget > limit:
                raise QuotaExceeded(api_key, limit, used, reserved, declared_budget)
        self._reservations[job_id] = {"key": api_key, "amount": declared_budget}

    def settle(self, job_id: str, api_key: str, actual_spent: int) -> None:
        """Release the job's reservation and charge the metered spend."""
        self._reservations.pop(job_id, None)
        if actual_spent > 0:
            self._usage[api_key] = self._usage.get(api_key, 0) + int(actual_spent)
        self._persist()

    def release(self, job_id: str) -> None:
        """Drop a reservation without charging (job rejected pre-run)."""
        self._reservations.pop(job_id, None)

    # ------------------------------------------------------------------
    def _persist(self) -> None:
        """Atomically rewrite ``quotas.json`` with current settled usage."""
        payload = json.dumps({"usage": self._usage}, sort_keys=True, indent=2)
        fd, tmp = tempfile.mkstemp(
            prefix="quotas-", suffix=".tmp", dir=self.data_dir
        )
        try:
            os.write(fd, (payload + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        os.replace(tmp, self.path)

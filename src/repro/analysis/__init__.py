"""Reporting helpers: ASCII tables for the benchmark harness."""

from repro.analysis.tables import format_table, format_float, TableBuilder
from repro.analysis.atlas import (
    AtlasCell,
    AtlasTrialSpec,
    atlas_trial,
    cell_of_trial,
    expand_grid,
    num_trials,
    reduce_atlas,
    render_markdown,
    run_atlas,
    smoke_spec,
)
from repro.analysis.learning_curves import (
    AveragedLearningCurve,
    LearningCurve,
    compare_learners,
    learning_curve,
    replicated_learning_curve,
)

__all__ = [
    "AtlasCell",
    "AtlasTrialSpec",
    "atlas_trial",
    "cell_of_trial",
    "expand_grid",
    "num_trials",
    "reduce_atlas",
    "render_markdown",
    "run_atlas",
    "smoke_spec",
    "format_table",
    "format_float",
    "TableBuilder",
    "AveragedLearningCurve",
    "LearningCurve",
    "compare_learners",
    "learning_curve",
    "replicated_learning_curve",
]

"""Reporting helpers: ASCII tables for the benchmark harness."""

from repro.analysis.tables import format_table, format_float, TableBuilder
from repro.analysis.learning_curves import (
    AveragedLearningCurve,
    LearningCurve,
    compare_learners,
    learning_curve,
    replicated_learning_curve,
)

__all__ = [
    "format_table",
    "format_float",
    "TableBuilder",
    "AveragedLearningCurve",
    "LearningCurve",
    "compare_learners",
    "learning_curve",
    "replicated_learning_curve",
]

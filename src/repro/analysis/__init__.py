"""Reporting helpers: ASCII tables for the benchmark harness."""

from repro.analysis.tables import format_table, format_float, TableBuilder
from repro.analysis.learning_curves import (
    LearningCurve,
    compare_learners,
    learning_curve,
)

__all__ = [
    "format_table",
    "format_float",
    "TableBuilder",
    "LearningCurve",
    "compare_learners",
    "learning_curve",
]

"""Aggregate benchmark result files into one experiment report.

The benchmark harness drops every reproduced table into
``benchmarks/results/*.txt``; :func:`aggregate_results` stitches them into
a single markdown report (used to refresh the summary that EXPERIMENTS.md
quotes).  Usable programmatically or via::

    python -m repro.analysis.report benchmarks/results REPORT.md
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Union

#: Preferred section order; anything unlisted is appended alphabetically.
SECTION_ORDER = [
    "table1_bounds",
    "table2_chow_brpuf",
    "table3_halfspace",
    "table3_control_ltf",
    "lmn_xorpuf",
    "membership_queries",
    "sat_appsat",
    "sarlock_resilience",
    "locking_scheme_comparison",
    "lstar_fsm",
    "sequential_unrolling",
    "brpuf_ltf_cap",
    "lockdown_protocol",
    "distribution_pitfall",
    "learning_curves",
    "ac0_bounds",
    "interpose_splitting",
    "reliability_side_channel",
    "ablation_brpuf",
    "ablation_lmn_degree",
    "ablation_eq_simulation",
]


def aggregate_results(
    results_dir: Union[str, Path],
    title: str = "Benchmark results",
) -> str:
    """Concatenate all result files into one markdown document."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    files = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    if not files:
        raise FileNotFoundError(f"no result files in {results_dir}")
    ordered: List[str] = [s for s in SECTION_ORDER if s in files]
    ordered.extend(s for s in sorted(files) if s not in SECTION_ORDER)

    parts = [f"# {title}", ""]
    for stem in ordered:
        parts.append(f"## {stem}")
        parts.append("")
        parts.append("```")
        parts.append(files[stem].read_text().rstrip())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(
    results_dir: Union[str, Path],
    output_path: Union[str, Path],
    title: str = "Benchmark results",
) -> Path:
    """Write the aggregated report; returns the output path."""
    output_path = Path(output_path)
    output_path.write_text(aggregate_results(results_dir, title) + "\n")
    return output_path


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: python -m repro.analysis.report <results_dir> <output.md>")
        return 2
    path = write_report(argv[0], argv[1])
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

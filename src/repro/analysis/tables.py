"""Plain-text table formatting for benchmark reports.

The benchmark harness prints each reproduced paper table in the same
row/column structure as the original, so paper-vs-measured comparison is a
side-by-side read.  No external dependencies; output is monospace ASCII.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Compact numeric formatting: inf, log-scale for huge values, fixed else."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if math.isinf(value):
        return "inf"
    if value != 0 and abs(value) >= 1e6:
        return f"{value:.2e}"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append(
            [c if isinstance(c, str) else format_float(c) for c in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(sep)
    for row in str_rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    lines.append(sep)
    return "\n".join(lines)


class TableBuilder:
    """Accumulate rows, then render/print one table."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None) -> None:
        if not headers:
            raise ValueError("need at least one header")
        self.headers = list(headers)
        self.title = title
        self.rows: List[Sequence[object]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        return format_table(self.headers, self.rows, self.title)

    def print(self) -> None:
        print("\n" + self.render() + "\n")

"""The security-boundary atlas: a declarative sweep over adversary models.

ROADMAP item 4.  An *atlas* expands a declarative grid spec — axes over
PUF family, learner, challenge representation, n, k, noise sigma, and
sample budget m — into one flat sequence of
:class:`~repro.runtime.runner.TrialRunner` trials (cell-major, replicate
minor), runs them with the standard crash-safe ledger / ``--resume`` /
sharding / ``ArtifactStore`` warm-start machinery, and reduces the
per-trial accuracies into per-cell **boundary maps**: for every
(family, learner, representation, n, sigma) slice, a (k x m) grid of
mean held-out accuracy plus the *accuracy frontier* — the smallest
budget at which the attack crosses the break threshold for each k.

Three scenario families feed the grid:

* ``lr`` / ``mlp`` — the gradient-attack suite of
  :mod:`repro.learning.gradient_attack` (proper product-of-margins LR
  for k >= 2, one-hidden-layer MLP), swept over parity vs raw challenge
  representations;
* ``reliability`` — the CMA-style multi-measurement reliability
  side channel of
  :class:`~repro.learning.reliability_attack.CMAReliabilityAttack`;
* PUF families ``xor`` (plain k-XOR arbiter) and ``cdc_xor``
  (component-differentially-challenged, :mod:`repro.pufs.cdc_xor`).

Everything reduces deterministically: trial values are pure functions of
``(master_seed, index)``, cells are enumerated in one canonical axis
order regardless of how the spec listed its axes, and the boundary-map
payload carries a sha256 digest — a killed-and-resumed sweep proves
bit-identity with a clean run by a single string compare (the same
contract the service layer uses for jobs).

See docs/ATLAS.md for the operator's view.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.runner import TrialContext, TrialRunner

#: Canonical axis orders; specs are reordered onto these regardless of
#: how the caller listed the values, so cell enumeration (and therefore
#: the trial-index mapping and every digest) is axis-order invariant.
FAMILY_ORDER: Tuple[str, ...] = ("xor", "cdc_xor")
LEARNER_ORDER: Tuple[str, ...] = ("lr", "mlp", "reliability")
REPRESENTATION_ORDER: Tuple[str, ...] = ("parity", "raw")

#: The accuracy at which a cell counts as broken (the frontier default).
DEFAULT_FRONTIER = 0.75


def _canonical(values: Sequence, order: Sequence, axis: str) -> Tuple:
    """Dedupe ``values`` and sort them onto the canonical ``order``."""
    unique = set(values)
    unknown = sorted(unique - set(order))
    if unknown:
        raise ValueError(f"unknown {axis} value(s) {unknown}; expected {order}")
    return tuple(v for v in order if v in unique)


@dataclasses.dataclass(frozen=True)
class AtlasTrialSpec:
    """The full atlas grid plus per-learner tuning knobs.

    Axis fields are canonicalised (deduped, reordered) at construction,
    so two specs listing the same axes in different orders are *equal* —
    they expand to the same cells, map trial indices identically, and
    reduce to the same digest.  All fields are JSON-plain, which is what
    makes the atlas a servable workload (``workload="atlas"``).
    """

    families: Tuple[str, ...] = ("xor", "cdc_xor")
    learners: Tuple[str, ...] = ("lr", "mlp", "reliability")
    representations: Tuple[str, ...] = ("parity",)
    ns: Tuple[int, ...] = (24,)
    ks: Tuple[int, ...] = (1, 2)
    noise_sigmas: Tuple[float, ...] = (0.0, 0.35)
    budgets: Tuple[int, ...] = (150, 400, 1000)
    replicates: int = 1
    test_size: int = 1000
    # Reliability side-channel knobs (per-cell budget m = measured CRPs).
    repetitions: int = 9
    batches: int = 3
    es_generations: int = 30
    es_population: int = 16
    es_restarts: int = 2
    es_refinements: int = 2
    # Gradient-suite knobs.
    mlp_hidden: int = 16
    mlp_epochs: int = 25
    lr_restarts: int = 4
    lr_max_iter: int = 200

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "families", _canonical(self.families, FAMILY_ORDER, "family"))
        set_(self, "learners", _canonical(self.learners, LEARNER_ORDER, "learner"))
        set_(
            self,
            "representations",
            _canonical(
                self.representations, REPRESENTATION_ORDER, "representation"
            ),
        )
        set_(self, "ns", tuple(sorted({int(v) for v in self.ns})))
        set_(self, "ks", tuple(sorted({int(v) for v in self.ks})))
        set_(
            self,
            "noise_sigmas",
            tuple(sorted({float(v) for v in self.noise_sigmas})),
        )
        set_(self, "budgets", tuple(sorted({int(v) for v in self.budgets})))
        if not (self.families and self.learners and self.representations):
            raise ValueError("families, learners, representations must be non-empty")
        if not self.ns or min(self.ns) < 4:
            raise ValueError("ns must be non-empty with n >= 4")
        if not self.ks or min(self.ks) < 1:
            raise ValueError("ks must be non-empty and positive")
        if not self.noise_sigmas or min(self.noise_sigmas) < 0:
            raise ValueError("noise_sigmas must be non-empty and non-negative")
        if not self.budgets or min(self.budgets) < 10:
            raise ValueError("budgets must be non-empty with m >= 10")
        if self.replicates < 1 or self.test_size < 1:
            raise ValueError("replicates and test_size must be positive")
        if self.repetitions < 3 or not 1 <= self.batches <= self.repetitions:
            raise ValueError(
                "repetitions must be >= 3 and batches in [1, repetitions]"
            )
        if (
            self.es_generations < 1
            or self.es_population < 4
            or self.es_restarts < 1
            or self.es_refinements < 0
        ):
            raise ValueError("invalid ES schedule")
        if self.mlp_hidden < 1 or self.mlp_epochs < 1:
            raise ValueError("mlp_hidden and mlp_epochs must be positive")
        if self.lr_restarts < 1 or self.lr_max_iter < 1:
            raise ValueError("lr_restarts and lr_max_iter must be positive")


@dataclasses.dataclass(frozen=True)
class AtlasCell:
    """One grid cell: a (family, learner, representation, n, k, sigma, m)."""

    family: str
    learner: str
    representation: str
    n: int
    k: int
    noise_sigma: float
    m: int

    def key(self) -> Dict[str, object]:
        """The cell coordinates as a JSON-plain dict (digest material)."""
        return dataclasses.asdict(self)

    def digest(self) -> str:
        """A short content digest of the cell coordinates."""
        material = json.dumps(self.key(), sort_keys=True)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@functools.lru_cache(maxsize=32)
def expand_grid(spec: AtlasTrialSpec) -> Tuple[AtlasCell, ...]:
    """Every feasible cell of ``spec``, in canonical enumeration order.

    Feasibility filters (both are physics, not policy): the reliability
    side channel needs a noisy device, so ``reliability`` cells skip
    ``noise_sigma == 0``; and the reliability attack correlates against
    parity-space margins by construction, so its representation axis is
    pinned to ``"parity"`` (one cell, never a duplicate per listed
    representation).
    """
    cells: List[AtlasCell] = []
    for family in spec.families:
        for learner in spec.learners:
            reps = (
                ("parity",)
                if learner == "reliability"
                else spec.representations
            )
            for representation in reps:
                for n in spec.ns:
                    for k in spec.ks:
                        for sigma in spec.noise_sigmas:
                            if learner == "reliability" and sigma <= 0:
                                continue
                            for m in spec.budgets:
                                cells.append(
                                    AtlasCell(
                                        family,
                                        learner,
                                        representation,
                                        n,
                                        k,
                                        sigma,
                                        m,
                                    )
                                )
    if not cells:
        raise ValueError(
            "the grid is empty — a reliability-only atlas needs at least "
            "one noise_sigma > 0"
        )
    return tuple(cells)


def num_trials(spec: AtlasTrialSpec) -> int:
    """The trial count an atlas run must schedule: cells x replicates."""
    return len(expand_grid(spec)) * spec.replicates


def cell_of_trial(spec: AtlasTrialSpec, index: int) -> Tuple[AtlasCell, int]:
    """Map a flat trial index to ``(cell, replicate)`` (cell-major)."""
    cells = expand_grid(spec)
    total = len(cells) * spec.replicates
    if not 0 <= index < total:
        raise ValueError(
            f"trial index {index} outside the grid ({total} trials: "
            f"{len(cells)} cells x {spec.replicates} replicates)"
        )
    return cells[index // spec.replicates], index % spec.replicates


def _build_puf(cell: AtlasCell, rng: np.random.Generator):
    """Instantiate the cell's device family."""
    from repro.pufs.arbiter import ArbiterPUF
    from repro.pufs.cdc_xor import CDCXORArbiterPUF
    from repro.pufs.xor_arbiter import XORArbiterPUF

    if cell.family == "cdc_xor":
        return CDCXORArbiterPUF(
            cell.n, cell.k, rng, noise_sigma=cell.noise_sigma
        )
    if cell.k == 1:
        # A 1-chain XOR arbiter *is* an arbiter chain; constructing the
        # plain device keeps the k = 1 column comparable across families.
        puf = XORArbiterPUF(cell.n, 1, rng, noise_sigma=cell.noise_sigma)
        return puf
    return XORArbiterPUF(cell.n, cell.k, rng, noise_sigma=cell.noise_sigma)


def atlas_trial(
    ctx: TrialContext,
    spec: AtlasTrialSpec,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
) -> np.ndarray:
    """One atlas cell replicate: ``[held_out_accuracy, metered_queries]``.

    Seed layout (four independent streams off the trial seed): device
    weights, CRP/measurement draws, learner initialisation, held-out
    test draw.  Gradient cells memoise their CRP pool in the
    :class:`~repro.runtime.store.ArtifactStore` when ``cache_dir`` is
    set (keyed by device spec + trial seed + budget), so a resumed or
    repeated sweep warm-starts collection; reliability cells measure
    live (their artifact is the repetition stack, which the attack
    consumes in one pass).  Held-out evaluation runs unmetered, so the
    query column is exactly the adversary's spend: ``m`` for gradient
    cells, ``m x repetitions`` for reliability cells.
    """
    from repro.learning.gradient_attack import make_attacker
    from repro.learning.reliability_attack import CMAReliabilityAttack
    from repro.pufs.crp import CRPSet, generate_crps, uniform_challenges
    from repro.runtime.store import ArtifactStore
    from repro.telemetry import unmetered

    cell, _replicate = cell_of_trial(spec, ctx.index)
    instance_seed, draw_seed, fit_seed, test_seed = ctx.seed.spawn(4)
    puf = _build_puf(cell, np.random.default_rng(instance_seed))

    if cell.learner == "reliability":
        attack = CMAReliabilityAttack(
            crps=cell.m,
            repetitions=spec.repetitions,
            batches=spec.batches,
            generations=spec.es_generations,
            lam=spec.es_population,
            restarts=spec.es_restarts,
            refinement_rounds=spec.es_refinements,
        )
        model = attack.run(puf, np.random.default_rng(draw_seed))
        queries = model.oracle_measurements
        predict = model.predict
    else:
        noisy = cell.noise_sigma > 0

        def generate() -> CRPSet:
            return generate_crps(
                puf, cell.m, np.random.default_rng(draw_seed), noisy=noisy
            )

        if cache_dir is not None:
            pool = ArtifactStore(
                cache_dir, max_bytes=cache_max_bytes
            ).get_or_generate(
                puf_spec=(
                    f"{cell.family}(n={cell.n}, k={cell.k}, "
                    f"noise_sigma={cell.noise_sigma})"
                ),
                seed=(ctx.seed.entropy, tuple(ctx.seed.spawn_key), ctx.index),
                distribution="uniform",
                m=cell.m,
                generate=generate,
                noisy=noisy,
            )
        else:
            pool = generate()
        options = (
            {
                "k": cell.k,
                "restarts": spec.lr_restarts,
                "max_iter": spec.lr_max_iter,
            }
            if cell.learner == "lr"
            else {"hidden": spec.mlp_hidden, "epochs": spec.mlp_epochs}
        )
        attacker = make_attacker(
            cell.learner, representation=cell.representation, **options
        )
        attacker.train(
            pool.challenges, pool.responses, np.random.default_rng(fit_seed)
        )
        queries = cell.m
        predict = attacker.predict

    with unmetered():
        test_rng = np.random.default_rng(test_seed)
        test_x = uniform_challenges(spec.test_size, cell.n, test_rng)
        test_y = puf.eval(test_x)
    accuracy = float(np.mean(predict(test_x) == test_y))
    return np.array([accuracy, float(queries)], dtype=np.float64)


# ----------------------------------------------------------------------
# Reduction: ledger values -> boundary maps
# ----------------------------------------------------------------------
def reduce_atlas(
    spec: AtlasTrialSpec,
    values: Dict[int, Sequence[float]],
    frontier: float = DEFAULT_FRONTIER,
) -> Dict[str, object]:
    """Reduce per-trial values into the boundary-map payload.

    ``values`` maps trial index -> the trial's ``[accuracy, queries]``
    (missing indices — failed or not-yet-run trials — leave their cell
    with fewer replicates and are counted in ``missing_trials``).  The
    reduction is a pure function of the *set* of (index, value) pairs:
    arrival order never matters, so a sharded, killed-and-resumed run
    reduces to the same ``digest`` as a serial one.
    """
    if not 0.5 < frontier <= 1.0:
        raise ValueError("frontier must be in (0.5, 1]")
    cells = expand_grid(spec)
    cell_rows: List[Dict[str, object]] = []
    mean_by_cell: Dict[Tuple, Optional[float]] = {}
    missing = 0
    for ci, cell in enumerate(cells):
        accs: List[float] = []
        qs: List[float] = []
        for rep in range(spec.replicates):
            value = values.get(ci * spec.replicates + rep)
            if value is None:
                missing += 1
                continue
            accs.append(float(value[0]))
            qs.append(float(value[1]))
        mean = sum(accs) / len(accs) if accs else None
        mean_by_cell[
            (cell.family, cell.learner, cell.representation, cell.n,
             cell.noise_sigma, cell.k, cell.m)
        ] = mean
        row = dict(cell.key())
        row.update(
            {
                "digest": cell.digest(),
                "replicates": len(accs),
                "mean_accuracy": mean,
                "min_accuracy": min(accs) if accs else None,
                "max_accuracy": max(accs) if accs else None,
                "mean_queries": sum(qs) / len(qs) if qs else None,
                "broken": bool(mean is not None and mean >= frontier),
            }
        )
        cell_rows.append(row)

    maps: List[Dict[str, object]] = []
    seen_slices = []
    for cell in cells:
        slice_key = (
            cell.family,
            cell.learner,
            cell.representation,
            cell.n,
            cell.noise_sigma,
        )
        if slice_key in seen_slices:
            continue
        seen_slices.append(slice_key)
        family, learner, representation, n, sigma = slice_key
        ks = [
            k
            for k in spec.ks
            if any(
                (family, learner, representation, n, sigma, k, m) in mean_by_cell
                for m in spec.budgets
            )
        ]
        grid = [
            [
                mean_by_cell.get(
                    (family, learner, representation, n, sigma, k, m)
                )
                for m in spec.budgets
            ]
            for k in ks
        ]
        frontier_m: Dict[str, Optional[int]] = {}
        broken_cells = 0
        for k, row in zip(ks, grid):
            crossing = None
            for m, acc in zip(spec.budgets, row):
                if acc is not None and acc >= frontier:
                    broken_cells += 1
                    if crossing is None:
                        crossing = m
            frontier_m[str(k)] = crossing
        maps.append(
            {
                "family": family,
                "learner": learner,
                "representation": representation,
                "n": n,
                "noise_sigma": sigma,
                "ks": list(ks),
                "budgets": list(spec.budgets),
                "accuracy": grid,
                "frontier": frontier_m,
                "broken_cells": broken_cells,
            }
        )

    body = {"cells": cell_rows, "maps": maps}
    digest = (
        "sha256:"
        + hashlib.sha256(
            json.dumps(body, sort_keys=True).encode("utf-8")
        ).hexdigest()
    )
    return {
        "workload": "atlas",
        "frontier_accuracy": frontier,
        "num_cells": len(cells),
        "num_trials": len(cells) * spec.replicates,
        "missing_trials": missing,
        "cells": cell_rows,
        "maps": maps,
        "digest": digest,
    }


def render_markdown(payload: Dict[str, object]) -> str:
    """Boundary maps as markdown heatmap tables (one per grid slice).

    Accuracy cells at or above the frontier threshold are bolded — the
    broken region; the frontier line below each table names the smallest
    breaking budget per k (or reports the slice held within budget).
    """
    lines = [
        "# Security-boundary atlas",
        "",
        f"{payload['num_cells']} cells, frontier accuracy "
        f"{payload['frontier_accuracy']:g} "
        f"(**bold** = broken), digest `{payload['digest']}`.",
        "",
    ]
    for map_ in payload["maps"]:
        lines.append(
            f"## {map_['family']} / {map_['learner']} / "
            f"{map_['representation']} — n={map_['n']}, "
            f"sigma={map_['noise_sigma']:g}"
        )
        lines.append("")
        header = "| k \\ m | " + " | ".join(str(m) for m in map_["budgets"]) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(map_["budgets"]) + 1))
        for k, row in zip(map_["ks"], map_["accuracy"]):
            cells = []
            for acc in row:
                if acc is None:
                    cells.append("—")
                elif acc >= payload["frontier_accuracy"]:
                    cells.append(f"**{acc:.3f}**")
                else:
                    cells.append(f"{acc:.3f}")
            lines.append(f"| {k} | " + " | ".join(cells) + " |")
        lines.append("")
        frontier_bits = []
        for k in map_["ks"]:
            crossing = map_["frontier"][str(k)]
            if crossing is None:
                frontier_bits.append(f"k={k}: holds within budget")
            else:
                frontier_bits.append(f"k={k}: broken at m={crossing}")
        lines.append("Frontier: " + "; ".join(frontier_bits) + ".")
        lines.append("")
    return "\n".join(lines)


def bench_cases(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """One flat bench case per boundary-map slice (BENCH_atlas.json)."""
    cases = []
    for map_ in payload["maps"]:
        accs = [a for row in map_["accuracy"] for a in row if a is not None]
        cases.append(
            {
                "family": map_["family"],
                "learner": map_["learner"],
                "representation": map_["representation"],
                "n": map_["n"],
                "noise_sigma": map_["noise_sigma"],
                "cells": sum(len(row) for row in map_["accuracy"]),
                "max_mean_accuracy": round(max(accs), 4) if accs else None,
                "broken_cells": map_["broken_cells"],
            }
        )
    return cases


# ----------------------------------------------------------------------
# Presets + the end-to-end engine
# ----------------------------------------------------------------------
def default_spec() -> AtlasTrialSpec:
    """The standing atlas grid (moderate budgets, both families)."""
    return AtlasTrialSpec()


def smoke_spec() -> AtlasTrialSpec:
    """The CI smoke grid: 108 cells covering all three scenario families.

    2 families x {lr, mlp} x 2 representations x 2 k x 2 sigma x 3 m
    = 96 gradient cells, plus 2 x 2 x 3 = 12 reliability cells (parity
    only, noisy only) — small n and tight learner schedules keep the
    whole sweep inside a CI smoke budget.
    """
    return AtlasTrialSpec(
        families=("xor", "cdc_xor"),
        learners=("lr", "mlp", "reliability"),
        representations=("parity", "raw"),
        ns=(16,),
        ks=(1, 2),
        noise_sigmas=(0.0, 0.33),
        budgets=(60, 150, 400),
        replicates=1,
        test_size=600,
        repetitions=9,
        batches=3,
        es_generations=25,
        es_population=16,
        es_restarts=2,
        es_refinements=1,
        mlp_hidden=12,
        mlp_epochs=15,
        lr_restarts=2,
        lr_max_iter=120,
    )


def run_atlas(
    spec: AtlasTrialSpec,
    master_seed: int = 0,
    workers: int = 1,
    shards: int = 1,
    ledger=None,
    resume: bool = False,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    frontier: float = DEFAULT_FRONTIER,
    retry=None,
):
    """Run the full grid and reduce it; returns ``(payload, report)``.

    ``ledger`` is an optional :class:`~repro.telemetry.ledger.RunLedger`;
    with ``resume=True`` completed trials replay from it bit-identically
    and only the missing indices execute (exactly the ``repro trials``
    semantics — the atlas is one ordinary ``TrialRunner`` run).
    """
    trials = num_trials(spec)
    kwargs: Dict[str, object] = {"spec": spec}
    if cache_dir is not None:
        kwargs["cache_dir"] = cache_dir
        kwargs["cache_max_bytes"] = cache_max_bytes
    report = TrialRunner(workers=workers, shards=shards).run(
        atlas_trial,
        trials,
        master_seed,
        kwargs,
        ledger=ledger,
        resume_from=ledger if resume else None,
        retry=retry,
    )
    values = {r.index: r.value for r in report.results if r.ok}
    payload = reduce_atlas(spec, values, frontier=frontier)
    return payload, report

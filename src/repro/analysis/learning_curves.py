"""Learning curves: attack accuracy as a function of the CRP budget.

The quantity every modelling-attack paper plots ([8] and successors), and
the empirical counterpart of the sample-complexity bounds in
:mod:`repro.pac.bounds`: the curve's knee is where the attacker's budget
meets the primitive's effective sample complexity.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.pufs.base import PUF
from repro.pufs.crp import CRPSet, generate_crps
from repro.runtime.runner import TrialContext, TrialReport, TrialRunner

#: fit(x, y, rng) -> predict(x) callable
Fitter = Callable[
    [np.ndarray, np.ndarray, np.random.Generator],
    Callable[[np.ndarray], np.ndarray],
]


@dataclasses.dataclass
class LearningCurve:
    """Accuracy at each training budget for one learner on one target."""

    learner: str
    budgets: List[int]
    accuracies: List[float]

    def final_accuracy(self) -> float:
        return self.accuracies[-1]

    def budget_to_reach(self, accuracy: float) -> Optional[int]:
        """Smallest measured budget whose accuracy meets the target."""
        for budget, acc in zip(self.budgets, self.accuracies):
            if acc >= accuracy:
                return budget
        return None

    def is_monotone(self, slack: float = 0.03) -> bool:
        """True when the curve never drops by more than ``slack``."""
        return all(
            b >= a - slack
            for a, b in zip(self.accuracies, self.accuracies[1:])
        )


def learning_curve(
    learner_name: str,
    fitter: Fitter,
    puf: PUF,
    budgets: Sequence[int],
    test_size: int = 5000,
    rng: Optional[np.random.Generator] = None,
) -> LearningCurve:
    """Measure a learner's accuracy on a PUF across CRP budgets.

    A single training pool of ``max(budgets)`` CRPs is drawn and prefixes
    of it are used for each budget, so curves are comparable point to
    point; the test set is disjoint and fixed.
    """
    budgets = sorted(int(b) for b in budgets)
    if not budgets or budgets[0] < 1:
        raise ValueError("budgets must be positive")
    rng = np.random.default_rng() if rng is None else rng
    pool = generate_crps(puf, budgets[-1], rng)
    test = generate_crps(puf, test_size, rng)
    accuracies = []
    for budget in budgets:
        x, y = pool.challenges[:budget], pool.responses[:budget]
        predict = fitter(x, y, rng)
        accuracies.append(
            float(np.mean(np.asarray(predict(test.challenges)) == test.responses))
        )
    return LearningCurve(learner_name, budgets, accuracies)


@dataclasses.dataclass
class AveragedLearningCurve:
    """A learning curve averaged over independent trials.

    Each trial builds a *fresh* PUF instance and CRP pool, so the mean
    and standard deviation describe the primitive class, not one chip —
    the statistic the Table I bounds are actually about.
    """

    learner: str
    budgets: List[int]
    mean_accuracies: List[float]
    std_accuracies: List[float]
    trials: int

    def as_curve(self) -> LearningCurve:
        """The mean curve, viewed as an ordinary :class:`LearningCurve`."""
        return LearningCurve(self.learner, self.budgets, self.mean_accuracies)


def _replicated_curve_trial(
    ctx: TrialContext,
    fitter: Fitter,
    puf_factory: Callable[[np.random.Generator], PUF],
    budgets: Sequence[int],
    test_size: int,
    strategy: Optional[str] = None,
    strategy_options: Optional[dict] = None,
) -> List[float]:
    """One trial of :func:`replicated_learning_curve` (module-level so the
    process pool can pickle it when factory and fitter are picklable).

    With ``strategy=None`` this is the classic passive-prefix trial,
    bit-identical to every earlier release.  A strategy name switches the
    trial to adaptive challenge selection via
    :func:`repro.learning.active.run_active_attack`: the attacker picks
    each query with the named strategy and ``fitter`` is replaced by the
    margin-producing logistic attack the strategies require.
    """
    if strategy is None:
        instance_rng, crp_rng = ctx.spawn_rngs(2)
        puf = puf_factory(instance_rng)
        curve = learning_curve("trial", fitter, puf, budgets, test_size, crp_rng)
        return curve.accuracies
    from repro.learning.active import make_strategy, run_active_attack

    options = dict(strategy_options or {})
    make_kwargs = {
        key: options[key]
        for key in ("committee", "fast_fraction", "l2", "max_iter")
        if key in options
    }
    run_kwargs = {
        key: options[key]
        for key in ("batch", "pool_size", "noise_rate")
        if key in options
    }
    instance_seed, attack_seed = ctx.seed.spawn(2)
    puf = puf_factory(np.random.default_rng(instance_seed))
    result = run_active_attack(
        puf.n,
        puf.eval,
        make_strategy(strategy, **make_kwargs),
        budgets,
        test_size=test_size,
        seed=attack_seed,
        **run_kwargs,
    )
    return result.accuracies


def replicated_learning_curve(
    learner_name: str,
    fitter: Fitter,
    puf_factory: Callable[[np.random.Generator], PUF],
    budgets: Sequence[int],
    trials: int,
    test_size: int = 5000,
    master_seed: int = 0,
    workers: int = 1,
    runner: Optional[TrialRunner] = None,
    strategy: Optional[str] = None,
    strategy_options: Optional[dict] = None,
) -> "tuple[AveragedLearningCurve, TrialReport]":
    """A learning curve averaged over ``trials`` fresh PUF instances.

    Trials fan out over :class:`repro.runtime.TrialRunner`: pass
    ``workers > 1`` (or a configured ``runner``) to parallelise.  Results
    are bit-identical for every worker count because each trial's
    randomness derives only from ``(master_seed, trial_index)``.  Note
    that ``puf_factory`` and ``fitter`` must be module-level callables to
    actually reach the pool; closures fall back to serial execution.

    ``strategy`` selects the query-selection strategy per trial: ``None``
    keeps the passive prefix-pool behaviour (bit-identical to earlier
    releases); a :data:`repro.learning.active.STRATEGY_NAMES` name makes
    each trial an adaptive attack whose budgets are metered membership
    queries (``strategy_options`` forwards knobs such as ``batch``,
    ``pool_size``, ``committee``, ``fast_fraction``).
    """
    budgets = sorted(int(b) for b in budgets)
    if trials <= 0:
        raise ValueError("trials must be positive")
    runner = TrialRunner(workers=workers) if runner is None else runner
    trial_kwargs = {
        "fitter": fitter,
        "puf_factory": puf_factory,
        "budgets": budgets,
        "test_size": test_size,
    }
    if strategy is not None:
        trial_kwargs["strategy"] = strategy
        trial_kwargs["strategy_options"] = dict(strategy_options or {})
    report = runner.run(
        _replicated_curve_trial,
        trials,
        master_seed=master_seed,
        trial_kwargs=trial_kwargs,
    )
    # A failed trial cannot be averaged away — surface it as an exception
    # (TrialFailure) instead of poisoning the mean with a missing row.
    report.raise_failures()
    matrix = np.asarray(report.values(), dtype=np.float64)
    curve = AveragedLearningCurve(
        learner=learner_name,
        budgets=list(budgets),
        mean_accuracies=[float(v) for v in matrix.mean(axis=0)],
        std_accuracies=[float(v) for v in matrix.std(axis=0)],
        trials=trials,
    )
    return curve, report


def compare_learners(
    fitters: dict,
    puf: PUF,
    budgets: Sequence[int],
    test_size: int = 5000,
    rng: Optional[np.random.Generator] = None,
) -> List[LearningCurve]:
    """Learning curves for several named fitters on the same pool order."""
    rng = np.random.default_rng() if rng is None else rng
    seeds = {name: np.random.default_rng(rng.integers(0, 2**63)) for name in fitters}
    return [
        learning_curve(name, fitter, puf, budgets, test_size, seeds[name])
        for name, fitter in fitters.items()
    ]

"""Finite automata: DFAs and Mealy machines.

Shared between the L* learner (:mod:`repro.learning.angluin`) and the
sequential logic-locking substrate (:mod:`repro.locking.sequential`).
"""

from repro.automata.dfa import DFA
from repro.automata.mealy import MealyMachine

__all__ = ["DFA", "MealyMachine"]

"""Deterministic finite automata.

The hypothesis class of Angluin's L* [22], and the representation the paper
discusses for learned FSMs of sequentially locked circuits (Section V-B).
States are integers 0..num_states-1 with 0 the start state; the alphabet is
any hashable symbol set.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

Symbol = Hashable
Word = Tuple[Symbol, ...]


class DFA:
    """A complete deterministic finite automaton.

    Parameters
    ----------
    alphabet:
        Input symbols.
    transitions:
        ``transitions[state][symbol] -> state``; must be total.
    accepting:
        Set of accepting states.
    start:
        Start state (default 0).
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        transitions: Sequence[Dict[Symbol, int]],
        accepting: Iterable[int],
        start: int = 0,
    ) -> None:
        self.alphabet: Tuple[Symbol, ...] = tuple(alphabet)
        if not self.alphabet:
            raise ValueError("alphabet must be non-empty")
        self.transitions: List[Dict[Symbol, int]] = [dict(t) for t in transitions]
        self.num_states = len(self.transitions)
        if self.num_states == 0:
            raise ValueError("a DFA needs at least one state")
        self.accepting: FrozenSet[int] = frozenset(accepting)
        if not 0 <= start < self.num_states:
            raise ValueError(f"start state {start} out of range")
        self.start = start
        for s, table in enumerate(self.transitions):
            for a in self.alphabet:
                if a not in table:
                    raise ValueError(f"state {s} missing transition on {a!r}")
                if not 0 <= table[a] < self.num_states:
                    raise ValueError(f"state {s} transition on {a!r} out of range")

    # ------------------------------------------------------------------
    def step(self, state: int, symbol: Symbol) -> int:
        """One transition."""
        return self.transitions[state][symbol]

    def run(self, word: Iterable[Symbol], state: Optional[int] = None) -> int:
        """The state reached by reading ``word`` from ``state`` (default start)."""
        s = self.start if state is None else state
        for a in word:
            s = self.transitions[s][a]
        return s

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Membership of ``word`` in the language."""
        return self.run(word) in self.accepting

    # ------------------------------------------------------------------
    def reachable_states(self) -> List[int]:
        """States reachable from the start state, in BFS order."""
        seen = [self.start]
        seen_set = {self.start}
        queue = deque([self.start])
        while queue:
            s = queue.popleft()
            for a in self.alphabet:
                t = self.transitions[s][a]
                if t not in seen_set:
                    seen_set.add(t)
                    seen.append(t)
                    queue.append(t)
        return seen

    def minimized(self) -> "DFA":
        """Hopcroft-style minimisation (restricted to reachable states)."""
        reachable = self.reachable_states()
        remap = {s: i for i, s in enumerate(reachable)}
        trans = [
            {a: remap[self.transitions[s][a]] for a in self.alphabet}
            for s in reachable
        ]
        accepting = {remap[s] for s in reachable if s in self.accepting}
        n = len(reachable)

        # Moore's partition refinement (simple and adequate at our scale).
        partition = [0 if s in accepting else 1 for s in range(n)]
        while True:
            signatures = {}
            new_partition = [0] * n
            next_class = 0
            for s in range(n):
                sig = (partition[s],) + tuple(
                    partition[trans[s][a]] for a in self.alphabet
                )
                if sig not in signatures:
                    signatures[sig] = next_class
                    next_class += 1
                new_partition[s] = signatures[sig]
            if new_partition == partition:
                break
            partition = new_partition
        classes = max(partition) + 1
        new_trans: List[Dict[Symbol, int]] = [dict() for _ in range(classes)]
        new_accepting = set()
        for s in range(n):
            c = partition[s]
            for a in self.alphabet:
                new_trans[c][a] = partition[trans[s][a]]
            if s in accepting:
                new_accepting.add(c)
        return DFA(self.alphabet, new_trans, new_accepting, start=partition[remap[self.start]])

    # ------------------------------------------------------------------
    def equivalent(self, other: "DFA") -> bool:
        """Exact language equivalence (product-construction reachability)."""
        return self.find_counterexample(other) is None

    def find_counterexample(self, other: "DFA") -> Optional[Word]:
        """A shortest word the two automata classify differently, or None.

        BFS over the product automaton; this implements a *perfect*
        equivalence oracle for experiments where the target machine is
        known.
        """
        if set(self.alphabet) != set(other.alphabet):
            raise ValueError("automata must share an alphabet")
        start = (self.start, other.start)
        queue = deque([(start, ())])
        seen = {start}
        while queue:
            (s1, s2), word = queue.popleft()
            if (s1 in self.accepting) != (s2 in other.accepting):
                return word
            for a in self.alphabet:
                nxt = (self.transitions[s1][a], other.transitions[s2][a])
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, word + (a,)))
        return None

    # ------------------------------------------------------------------
    # Boolean operations (product constructions).
    # ------------------------------------------------------------------
    def complement(self) -> "DFA":
        """The DFA for the complement language."""
        return DFA(
            self.alphabet,
            self.transitions,
            set(range(self.num_states)) - self.accepting,
            start=self.start,
        )

    def _product(self, other: "DFA", accept_rule) -> "DFA":
        if set(self.alphabet) != set(other.alphabet):
            raise ValueError("automata must share an alphabet")
        index: Dict[Tuple[int, int], int] = {}
        transitions: List[Dict[Symbol, int]] = []
        accepting = set()

        def state_id(pair: Tuple[int, int]) -> int:
            if pair not in index:
                index[pair] = len(index)
                transitions.append({})
                if accept_rule(pair[0] in self.accepting, pair[1] in other.accepting):
                    accepting.add(index[pair])
            return index[pair]

        start = (self.start, other.start)
        queue = deque([start])
        state_id(start)
        seen = {start}
        while queue:
            pair = queue.popleft()
            sid = index[pair]
            for a in self.alphabet:
                nxt = (self.transitions[pair[0]][a], other.transitions[pair[1]][a])
                transitions[sid][a] = state_id(nxt)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return DFA(self.alphabet, transitions, accepting, start=0)

    def intersection(self, other: "DFA") -> "DFA":
        """DFA for L(self) intersect L(other)."""
        return self._product(other, lambda a, b: a and b)

    def union(self, other: "DFA") -> "DFA":
        """DFA for L(self) union L(other)."""
        return self._product(other, lambda a, b: a or b)

    def symmetric_difference(self, other: "DFA") -> "DFA":
        """DFA for the words the two languages disagree on.

        Its emptiness is equivalence — the language-level view of
        :meth:`find_counterexample`."""
        return self._product(other, lambda a, b: a != b)

    def is_empty(self) -> bool:
        """True iff the language is empty (no reachable accepting state)."""
        return not any(s in self.accepting for s in self.reachable_states())

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_states: int,
        alphabet: Iterable[Symbol],
        rng,
        accept_fraction: float = 0.5,
    ) -> "DFA":
        """A random complete DFA (transitions and accepting set uniform)."""
        if num_states <= 0:
            raise ValueError("num_states must be positive")
        alphabet = tuple(alphabet)
        trans = [
            {a: int(rng.integers(0, num_states)) for a in alphabet}
            for _ in range(num_states)
        ]
        accepting = {
            s for s in range(num_states) if rng.random() < accept_fraction
        }
        return cls(alphabet, trans, accepting)

    def enumerate_words(self, max_length: int) -> Iterable[Word]:
        """All words of length <= max_length, shortest first."""
        for length in range(max_length + 1):
            for word in itertools.product(self.alphabet, repeat=length):
                yield word

    def __repr__(self) -> str:
        return (
            f"DFA(states={self.num_states}, alphabet={len(self.alphabet)}, "
            f"accepting={len(self.accepting)})"
        )

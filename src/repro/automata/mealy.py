"""Mealy machines — the FSM model used by sequential logic locking.

A Mealy machine emits an output symbol on every transition.  Sequential
locking (Section II-A: "augmentation of the FSM by adding a new set of
states") operates on this representation; the L*-based attack of Section
V-B learns the DFA/Mealy behaviour of the locked machine.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

Symbol = Hashable
Word = Tuple[Symbol, ...]


class MealyMachine:
    """A complete deterministic Mealy machine.

    Parameters
    ----------
    input_alphabet / output_alphabet:
        Symbol sets.
    transitions:
        ``transitions[state][symbol] -> (next_state, output_symbol)``.
    start:
        Start state (default 0).
    """

    def __init__(
        self,
        input_alphabet: Iterable[Symbol],
        output_alphabet: Iterable[Symbol],
        transitions: Sequence[Dict[Symbol, Tuple[int, Symbol]]],
        start: int = 0,
    ) -> None:
        self.input_alphabet: Tuple[Symbol, ...] = tuple(input_alphabet)
        self.output_alphabet: Tuple[Symbol, ...] = tuple(output_alphabet)
        if not self.input_alphabet:
            raise ValueError("input alphabet must be non-empty")
        self.transitions: List[Dict[Symbol, Tuple[int, Symbol]]] = [
            dict(t) for t in transitions
        ]
        self.num_states = len(self.transitions)
        if self.num_states == 0:
            raise ValueError("a Mealy machine needs at least one state")
        if not 0 <= start < self.num_states:
            raise ValueError(f"start state {start} out of range")
        self.start = start
        out_set = set(self.output_alphabet)
        for s, table in enumerate(self.transitions):
            for a in self.input_alphabet:
                if a not in table:
                    raise ValueError(f"state {s} missing transition on {a!r}")
                nxt, out = table[a]
                if not 0 <= nxt < self.num_states:
                    raise ValueError(f"state {s} transition on {a!r} out of range")
                if out not in out_set:
                    raise ValueError(f"state {s} output {out!r} not in alphabet")

    # ------------------------------------------------------------------
    def step(self, state: int, symbol: Symbol) -> Tuple[int, Symbol]:
        """One transition: (next_state, output)."""
        return self.transitions[state][symbol]

    def run(self, word: Iterable[Symbol]) -> Tuple[int, Tuple[Symbol, ...]]:
        """Read ``word`` from the start state; return (final_state, outputs)."""
        s = self.start
        outputs = []
        for a in word:
            s, out = self.transitions[s][a]
            outputs.append(out)
        return s, tuple(outputs)

    def output_word(self, word: Iterable[Symbol]) -> Tuple[Symbol, ...]:
        """Just the output sequence for ``word``."""
        return self.run(word)[1]

    def last_output(self, word: Sequence[Symbol]) -> Optional[Symbol]:
        """The final output symbol for a non-empty word (None for empty)."""
        outputs = self.output_word(word)
        return outputs[-1] if outputs else None

    # ------------------------------------------------------------------
    def behavioural_counterexample(
        self, other: "MealyMachine"
    ) -> Optional[Word]:
        """A shortest input word on which the output sequences differ, or None."""
        if set(self.input_alphabet) != set(other.input_alphabet):
            raise ValueError("machines must share an input alphabet")
        start = (self.start, other.start)
        queue = deque([(start, ())])
        seen = {start}
        while queue:
            (s1, s2), word = queue.popleft()
            for a in self.input_alphabet:
                n1, o1 = self.transitions[s1][a]
                n2, o2 = other.transitions[s2][a]
                if o1 != o2:
                    return word + (a,)
                nxt = (n1, n2)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, word + (a,)))
        return None

    def equivalent(self, other: "MealyMachine") -> bool:
        """Exact behavioural equivalence."""
        return self.behavioural_counterexample(other) is None

    # ------------------------------------------------------------------
    def to_output_dfa(self, target_output: Symbol) -> "DFA":
        """The DFA accepting words whose *last* output equals ``target_output``.

        This is the standard reduction used to learn Mealy machines with a
        DFA learner: the language "last output is o" determines the machine
        up to behavioural equivalence when done for every o.
        """
        from repro.automata.dfa import DFA

        # States: (machine state, last-output-was-target flag); flag of the
        # start is False (empty word has no output).
        index = {}
        transitions = []
        accepting = set()

        def state_id(s: int, flag: bool) -> int:
            key = (s, flag)
            if key not in index:
                index[key] = len(index)
                transitions.append({})
                if flag:
                    accepting.add(index[key])
            return index[key]

        start_id = state_id(self.start, False)
        queue = deque([(self.start, False)])
        seen = {(self.start, False)}
        while queue:
            s, flag = queue.popleft()
            sid = state_id(s, flag)
            for a in self.input_alphabet:
                nxt, out = self.transitions[s][a]
                nkey = (nxt, out == target_output)
                nid = state_id(*nkey)
                transitions[sid][a] = nid
                if nkey not in seen:
                    seen.add(nkey)
                    queue.append(nkey)
        return DFA(self.input_alphabet, transitions, accepting, start=start_id)

    @classmethod
    def random(
        cls,
        num_states: int,
        input_alphabet: Iterable[Symbol],
        output_alphabet: Iterable[Symbol],
        rng,
    ) -> "MealyMachine":
        """A random complete Mealy machine."""
        if num_states <= 0:
            raise ValueError("num_states must be positive")
        input_alphabet = tuple(input_alphabet)
        output_alphabet = tuple(output_alphabet)
        trans = [
            {
                a: (
                    int(rng.integers(0, num_states)),
                    output_alphabet[int(rng.integers(0, len(output_alphabet)))],
                )
                for a in input_alphabet
            }
            for _ in range(num_states)
        ]
        return cls(input_alphabet, output_alphabet, trans)

    def __repr__(self) -> str:
        return (
            f"MealyMachine(states={self.num_states}, "
            f"inputs={len(self.input_alphabet)}, outputs={len(self.output_alphabet)})"
        )

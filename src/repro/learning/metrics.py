"""Evaluation metrics for learned hypotheses."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.pufs.crp import CRPSet


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of agreeing +/-1 labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("prediction/label shape mismatch")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty set")
    return float(np.mean(predictions == labels))


def error_rate(predictions: np.ndarray, labels: np.ndarray) -> float:
    """1 - accuracy."""
    return 1.0 - accuracy(predictions, labels)


def evaluate_hypothesis(
    hypothesis: Callable[[np.ndarray], np.ndarray],
    test_set: CRPSet,
) -> float:
    """Accuracy of a hypothesis on a held-out CRP set."""
    return accuracy(np.asarray(hypothesis(test_set.challenges)), test_set.responses)


def majority_baseline(labels: np.ndarray) -> float:
    """Accuracy of always predicting the majority label.

    The floor any learner must beat; for heavily biased PUFs this floor is
    itself high, which is why the paper reports bias alongside accuracy.
    """
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("cannot compute a baseline on an empty set")
    p = np.mean(labels == 1)
    return float(max(p, 1.0 - p))

"""The Kushilevitz-Mansour (Goldreich-Levin) algorithm.

Finds all *heavy* Fourier coefficients of a Boolean function using
membership queries — no degree limit, unlike LMN.  This is the engine
behind Fourier-analysis-based PUF attacks (cf. [19], by the paper's
authors) and a clean illustration of the access-model axis: with random
examples one pays n^O(d) to see degree-d structure (LMN); with membership
queries one pays poly(n, 1/theta) for *any* coefficient above theta.

The algorithm recursively partitions the coefficient index set by prefix:
bucket (k, alpha) holds all subsets S whose membership pattern on the
first k coordinates equals alpha, with weight

    W(k, alpha) = sum_{S in bucket} fhat(S)^2
                = E_{z, z', x} [ f(z x) chi_alpha(z) f(z' x) chi_alpha(z') ],

where z, z' are independent uniform on the first k coordinates and x is a
shared uniform suffix.  Buckets lighter than theta^2/2 are pruned; at
depth n each surviving singleton is a heavy coefficient.  Parseval bounds
the number of surviving buckets per level by 4/theta^2, so the total query
count is poly(n, 1/theta) (for a +/-1 function).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.booleanfuncs.function import BooleanFunction
from repro.kernels import CharacterBasis, character_column
from repro.kernels import sign_of_expansion as _kernel_sign_of_expansion
from repro.telemetry import QueryMeter, current_meter, metered, trace
from repro.telemetry import meter as _meter

Target = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class KMResult:
    """Outcome of a Kushilevitz-Mansour run."""

    spectrum: Dict[Tuple[int, ...], float]
    hypothesis: BooleanFunction
    membership_queries: int
    buckets_explored: int
    telemetry: Optional[dict] = None  # learner-local query-meter snapshot

    def heavy_subsets(self) -> List[Tuple[int, ...]]:
        """The located subsets, heaviest first."""
        return sorted(self.spectrum, key=lambda s: -abs(self.spectrum[s]))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.hypothesis(x)


class KushilevitzMansour:
    """Locate all Fourier coefficients with |fhat(S)| >= theta.

    Parameters
    ----------
    theta:
        Heaviness threshold.  Queries scale with 1/theta^2 per estimate
        and at most 4/theta^2 buckets survive per level.
    bucket_samples:
        Samples per bucket-weight estimate.
    coefficient_samples:
        Samples in the final coefficient-estimation batch, which is
        *shared*: all surviving buckets are estimated from one sample via
        one blocked GEMM (``coefficient_samples`` membership queries in
        total, not per bucket).
    max_buckets:
        Guard rail on simultaneous buckets (defaults to 8/theta^2).
    """

    def __init__(
        self,
        theta: float = 0.1,
        bucket_samples: int = 2048,
        coefficient_samples: int = 8192,
        max_buckets: Optional[int] = None,
    ) -> None:
        if not 0 < theta <= 1:
            raise ValueError("theta must be in (0, 1]")
        if bucket_samples < 1 or coefficient_samples < 1:
            raise ValueError("sample counts must be positive")
        self.theta = theta
        self.bucket_samples = bucket_samples
        self.coefficient_samples = coefficient_samples
        self.max_buckets = (
            int(np.ceil(8.0 / theta**2)) if max_buckets is None else max_buckets
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        n: int,
        target: Target,
        rng: Optional[np.random.Generator] = None,
    ) -> KMResult:
        """Run KM against a +/-1 membership oracle of arity n.

        Pass a *raw* target callable, not a
        :class:`~repro.learning.oracles.MembershipOracle`: the learner's
        internal :meth:`_query` path already records every row as an
        ``mq`` query (wrapping would double-count).  The result's
        ``telemetry`` is a learner-local meter snapshot; counts also
        forward to any ambient trial meter.
        """
        rng = np.random.default_rng() if rng is None else rng
        self._queries = 0
        self._target = target
        local = QueryMeter(parent=current_meter())

        with metered(local), trace("km.fit", theta=self.theta):
            # Buckets are (depth k, alpha) with alpha a tuple of 0/1
            # membership flags for coordinates 0..k-1.
            buckets: List[Tuple[int, ...]] = [()]
            explored = 0
            for depth in range(n):
                next_buckets: List[Tuple[int, ...]] = []
                for alpha in buckets:
                    for flag in (0, 1):
                        candidate = alpha + (flag,)
                        explored += 1
                        weight = self._bucket_weight(n, candidate, rng)
                        if weight >= self.theta**2 / 2.0:
                            next_buckets.append(candidate)
                if len(next_buckets) > self.max_buckets:
                    # Keep the heaviest (Parseval says the rest are noise).
                    weights = [
                        self._bucket_weight(n, a, rng) for a in next_buckets
                    ]
                    order = np.argsort(weights)[::-1][: self.max_buckets]
                    next_buckets = [next_buckets[int(i)] for i in order]
                buckets = next_buckets
                if not buckets:
                    break

            # Final coefficient estimates: one shared sample and one blocked
            # GEMM across all surviving buckets, instead of a fresh
            # coefficient_samples-sized query batch per bucket.  Statistically
            # this is the same estimator (a shared sample only correlates the
            # estimates, each remains an unbiased mean of m products) and it
            # costs m membership queries total rather than m per bucket.
            spectrum: Dict[Tuple[int, ...], float] = {}
            if buckets:
                subsets = [
                    tuple(i for i, flag in enumerate(alpha) if flag)
                    for alpha in buckets
                ]
                m = self.coefficient_samples
                x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
                y = self._query(x)
                basis = CharacterBasis.from_subsets(n, subsets)
                estimates = basis.estimate_coefficients(x, y)
                for subset, estimate in zip(subsets, estimates):
                    if abs(estimate) >= self.theta / 2.0:
                        spectrum[subset] = float(estimate)

            hypothesis = _sign_of_spectrum(n, spectrum)
        return KMResult(
            spectrum=spectrum,
            hypothesis=hypothesis,
            membership_queries=self._queries,
            buckets_explored=explored,
            telemetry=local.snapshot(),
        )

    # ------------------------------------------------------------------
    def _query(self, x: np.ndarray) -> np.ndarray:
        self._queries += x.shape[0]
        y = np.asarray(self._target(x), dtype=np.float64)
        _meter.record(
            "mq", queries=x.shape[0], challenges=x, response_bytes=y.nbytes
        )
        return y

    def _bucket_weight(
        self, n: int, alpha: Tuple[int, ...], rng: np.random.Generator
    ) -> float:
        """Estimate W(k, alpha) with the pairwise-prefix estimator."""
        k = len(alpha)
        m = self.bucket_samples
        z1 = (1 - 2 * rng.integers(0, 2, size=(m, k))).astype(np.int8)
        z2 = (1 - 2 * rng.integers(0, 2, size=(m, k))).astype(np.int8)
        x = (1 - 2 * rng.integers(0, 2, size=(m, n - k))).astype(np.int8)
        subset = tuple(i for i, flag in enumerate(alpha) if flag)
        chi1 = character_column(z1, subset)
        chi2 = character_column(z2, subset)
        f1 = self._query(np.concatenate([z1, x], axis=1))
        f2 = self._query(np.concatenate([z2, x], axis=1))
        return float(np.mean(f1 * chi1 * f2 * chi2))


def _sign_of_spectrum(
    n: int, spectrum: Dict[Tuple[int, ...], float]
) -> BooleanFunction:
    return _kernel_sign_of_expansion(n, spectrum, name="km_hypothesis")

"""Exact learning of sparse multivariate polynomials over GF(2) with
membership queries (Schapire-Sellie [21]; paper Corollary 2).

The learner maintains a hypothesis polynomial ``h`` and repeatedly:

1. asks a (simulated) equivalence query — Angluin's reduction [22] replaces
   the equivalence oracle by testing ``h`` on random examples;
2. on a counterexample x, works on the *residual* g = f + h (whose
   membership oracle is one f-query plus an h-evaluation) — g(x) = 1;
3. shrinks the support of x greedily (single-bit, then pair flips) while
   keeping g(x) = 1;
4. computes the full Moebius transform of g restricted to the subcube below
   x (2^|support| membership queries): every monomial found there is a
   *true* monomial of g, because setting outside variables to 0 preserves
   the coefficients of inside monomials exactly;
5. XORs those monomials into h, strictly shrinking the residual.

For an s-sparse degree-r target this terminates after at most s successful
rounds with poly(n, s, 2^r, 1/eps, log(1/delta)) queries — the
``poly(n, k, 1/eps, log(1/delta))`` of Corollary 2 once the XOR Arbiter PUF
is cast as an O(2^r k)-monomial degree-r polynomial.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.booleanfuncs.polynomials import Monomial, SparseF2Polynomial
from repro.kernels import mobius_f2_inplace
from repro.learning.oracles import QueryBudgetExceeded, angluin_eq_sample_size
from repro.telemetry import QueryMeter, current_meter, metered, trace
from repro.telemetry import meter as _meter


def xor_of_junta_ltfs_target(
    n: int,
    k: int,
    junta_size: int,
    rng: np.random.Generator,
):
    """A Corollary-2-shaped target: XOR of k junta-LTF chains, as a bit oracle.

    Each chain is an LTF on ``junta_size`` random coordinates (every
    function on r bits is an F2 polynomial of degree <= r, so the XOR of k
    chains is a sparse polynomial of degree <= r with at most k 2^r
    monomials).  Returns a vectorised callable {0,1}^n -> {0,1}.
    """
    if n < junta_size:
        raise ValueError("junta_size cannot exceed n")
    if k < 1 or junta_size < 1:
        raise ValueError("k and junta_size must be positive")
    from repro.booleanfuncs.ltf import LTF

    juntas = []
    for _ in range(k):
        coords = rng.choice(n, size=junta_size, replace=False)
        weights = rng.normal(0.0, 1.0, size=junta_size)
        threshold = rng.normal(0.0, 0.5)
        juntas.append((coords, LTF(weights, threshold)))

    def target_bits(x_bits: np.ndarray) -> np.ndarray:
        x_bits = np.atleast_2d(x_bits)
        acc = np.zeros(x_bits.shape[0], dtype=np.int8)
        for coords, ltf in juntas:
            pm1 = (1 - 2 * x_bits[:, coords]).astype(np.int8)
            chain_bit = ((1 - ltf(pm1)) // 2).astype(np.int8)
            acc ^= chain_bit
        return acc

    return target_bits


class InconsistentOracle(RuntimeError):
    """Raised when oracle answers contradict any polynomial structure.

    Happens with noisy or adversarial membership oracles: the residual was
    positive at the top of a subcube, yet the Moebius transform over that
    subcube finds no monomial — impossible for a deterministic function.
    """


class SupportTooLarge(RuntimeError):
    """Raised when a counterexample cannot be shrunk below the subcube cap.

    Hitting this means the target is not (close to) a sparse low-degree
    polynomial — the representation assumption of Corollary 2 fails, which
    is itself an informative outcome for the adversary-model analysis.
    """


@dataclasses.dataclass
class LearnPolyResult:
    """Outcome of a LearnPoly run."""

    polynomial: SparseF2Polynomial
    membership_queries: int
    equivalence_queries: int
    rounds: int
    exact: bool  # True when the final simulated EQ accepted
    telemetry: Optional[dict] = None  # learner-local query-meter snapshot

    def predict_bits(self, x: np.ndarray) -> np.ndarray:
        return self.polynomial.evaluate_bits(x)


class LearnPoly:
    """Sparse-F2-polynomial learner with membership + simulated equivalence
    queries.

    Parameters
    ----------
    eps, delta:
        PAC parameters of the simulated equivalence oracle.
    subcube_cap:
        Maximum counterexample support after shrinking; the Moebius step
        costs 2^support queries.
    max_rounds:
        Safety cap on counterexample rounds (>= target sparsity suffices).
    max_queries:
        Optional hard membership-query budget.
    """

    def __init__(
        self,
        eps: float = 0.01,
        delta: float = 0.01,
        subcube_cap: int = 16,
        max_rounds: int = 10_000,
        max_queries: Optional[int] = None,
    ) -> None:
        if not 0 < eps < 1 or not 0 < delta < 1:
            raise ValueError("eps and delta must be in (0, 1)")
        if subcube_cap < 1:
            raise ValueError("subcube_cap must be at least 1")
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        self.eps = eps
        self.delta = delta
        self.subcube_cap = subcube_cap
        self.max_rounds = max_rounds
        self.max_queries = max_queries

    # ------------------------------------------------------------------
    def fit(
        self,
        n: int,
        target_bits,
        rng: Optional[np.random.Generator] = None,
    ) -> LearnPolyResult:
        """Learn ``target_bits`` : {0,1}^n -> {0,1} (vectorised callable).

        Pass a raw callable, not a
        :class:`~repro.learning.oracles.MembershipOracle`: the internal
        :meth:`_query` path records every row as an ``mq`` query itself
        (wrapping would double-count) and each simulated equivalence test
        as an ``eq`` round.  ``result.telemetry`` is a learner-local
        meter snapshot; counts also forward to any ambient trial meter.
        """
        rng = np.random.default_rng() if rng is None else rng
        self._queries = 0
        self._target = target_bits
        local = QueryMeter(parent=current_meter())
        h = SparseF2Polynomial(n)
        eq_rounds = 0
        rounds = 0
        exact = False

        with metered(local), trace("learnpoly.fit", n=n):
            while rounds < self.max_rounds:
                counterexample = self._simulated_eq(n, h, eq_rounds, rng)
                eq_rounds += 1
                if counterexample is None:
                    exact = True
                    break
                rounds += 1
                new_monomials = self._extract_monomials(n, h, counterexample, rng)
                h = h + SparseF2Polynomial(n, new_monomials)

        return LearnPolyResult(
            polynomial=h,
            membership_queries=self._queries,
            equivalence_queries=eq_rounds,
            rounds=rounds,
            exact=exact,
            telemetry=local.snapshot(),
        )

    # ------------------------------------------------------------------
    def _query(self, x: np.ndarray) -> np.ndarray:
        """Batched membership query on 0/1 rows (count-then-raise budget)."""
        x = np.atleast_2d(x)
        self._queries += x.shape[0]
        if self.max_queries is not None and self._queries > self.max_queries:
            raise QueryBudgetExceeded(
                f"membership-query budget {self.max_queries} exhausted"
            )
        y = np.asarray(self._target(x), dtype=np.int8)
        _meter.record(
            "mq", queries=x.shape[0], challenges=x, response_bytes=y.nbytes
        )
        return y

    def _residual(self, h: SparseF2Polynomial, x: np.ndarray) -> np.ndarray:
        """g(x) = f(x) xor h(x) on 0/1 rows."""
        return self._query(x) ^ h.evaluate_bits(np.atleast_2d(x))

    def _simulated_eq(
        self,
        n: int,
        h: SparseF2Polynomial,
        round_index: int,
        rng: np.random.Generator,
    ) -> Optional[np.ndarray]:
        m = angluin_eq_sample_size(self.eps, self.delta, round_index)
        x = rng.integers(0, 2, size=(m, n)).astype(np.int8)
        g = self._residual(h, x)
        # The f-queries above were recorded as MQ rows by _query; this
        # records only the EQ round itself and its simulation sample size.
        _meter.record("eq", queries=1, examples=m)
        hits = np.nonzero(g == 1)[0]
        if hits.size:
            return x[hits[0]]
        return None

    # ------------------------------------------------------------------
    def _extract_monomials(
        self,
        n: int,
        h: SparseF2Polynomial,
        x: np.ndarray,
        rng: np.random.Generator,
    ) -> List[Monomial]:
        """Shrink x, then Moebius-transform the residual on the subcube."""
        x = x.astype(np.int8).copy()
        x = self._shrink_support(h, x, rng)
        support = [int(i) for i in np.nonzero(x)[0]]
        if len(support) > self.subcube_cap:
            raise SupportTooLarge(
                f"counterexample support {len(support)} exceeds the subcube "
                f"cap {self.subcube_cap}; target is not a sparse low-degree "
                "polynomial in reach of LearnPoly"
            )
        # Evaluate g on every point of the subcube below x.
        k = len(support)
        points = np.zeros((2**k, n), dtype=np.int8)
        subsets: List[Tuple[int, ...]] = []
        for idx, bits in enumerate(itertools.product((0, 1), repeat=k)):
            subset = tuple(support[j] for j in range(k) if bits[j])
            subsets.append(subset)
            points[idx, list(subset)] = 1
        values = self._residual(h, points)

        # Moebius over F2: a_M = xor of g(1_T) over T subseteq M.  The
        # subcube enumeration above lists subsets in submask order
        # (itertools.product with bit j <-> support[j]), so the in-place
        # XOR butterfly applies directly — 2^k log 2^k bit-ops instead of
        # the 3^k explicit submask double loop.
        coeffs = np.ascontiguousarray(values, dtype=np.int8)
        mobius_f2_inplace(coeffs)
        monomials: List[Monomial] = [
            frozenset(subsets[int(i)]) for i in np.nonzero(coeffs)[0]
        ]
        if not monomials:
            raise InconsistentOracle(
                "residual positive on the subcube top but the Moebius "
                "transform found no monomials; the membership oracle is "
                "noisy or adversarial"
            )
        return monomials

    def _shrink_support(
        self,
        h: SparseF2Polynomial,
        x: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Greedy support reduction while keeping the residual equal to 1."""
        improved = True
        while improved:
            improved = False
            ones = np.nonzero(x)[0]
            if ones.size == 0:
                break
            # Single-bit phase, batched: try clearing each set bit.
            candidates = np.repeat(x[None, :], ones.size, axis=0)
            candidates[np.arange(ones.size), ones] = 0
            g = self._residual(h, candidates)
            hits = np.nonzero(g == 1)[0]
            if hits.size:
                x = candidates[hits[0]]
                improved = True
                continue
            # Pair phase (needed e.g. for parity-like residuals): only when
            # the support is still above the cap or moderately large.
            if ones.size > self.subcube_cap or ones.size > 8:
                pair_list = list(itertools.combinations(ones.tolist(), 2))
                rng.shuffle(pair_list)
                # Cap the batch to keep query counts polynomial.
                pair_list = pair_list[: 4 * len(ones)]
                if pair_list:
                    cands = np.repeat(x[None, :], len(pair_list), axis=0)
                    for row, (i, j) in enumerate(pair_list):
                        cands[row, i] = 0
                        cands[row, j] = 0
                    g = self._residual(h, cands)
                    hits = np.nonzero(g == 1)[0]
                    if hits.size:
                        x = cands[hits[0]]
                        improved = True
        return x

"""AdaBoost over decision stumps — another improper learner.

Boosting illustrates the paper's Section V-B point from a different angle
than LMN: weak LTF-ish hypotheses (single-feature stumps) are combined
into a majority-of-stumps hypothesis that is *not* an LTF over the inputs,
so the learner escapes proper-LTF limitations while only ever training
trivial base classifiers.

Stumps here are signed single-coordinate tests ``sign(s * x_i)`` plus the
two constant classifiers; on +/-1 challenge data this is the natural weak
class (axis-aligned thresholds degenerate to exactly these).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Tuple

import numpy as np

FeatureMap = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class Stump:
    """A weak hypothesis: sign(polarity * x[coordinate]) or a constant."""

    coordinate: int  # -1 for the constant stump
    polarity: int  # +1 or -1

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coordinate < 0:
            return np.full(x.shape[0], self.polarity, dtype=np.int8)
        return (self.polarity * x[:, self.coordinate]).astype(np.int8)


@dataclasses.dataclass
class AdaBoostResult:
    """A weighted vote over stumps."""

    stumps: List[Stump]
    alphas: List[float]
    train_accuracy: float
    rounds_run: int
    feature_map: Optional[FeatureMap] = None

    def score(self, x: np.ndarray) -> np.ndarray:
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats)
        acc = np.zeros(feats.shape[0])
        for stump, alpha in zip(self.stumps, self.alphas):
            acc += alpha * stump.predict(feats)
        return acc

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(self.score(x) >= 0, 1, -1).astype(np.int8)


class AdaBoost:
    """Discrete AdaBoost with single-coordinate stumps.

    Parameters
    ----------
    rounds:
        Boosting rounds (stumps in the final vote).
    feature_map:
        Optional transform; boosting over parity features turns the weak
        class into the arbiter-PUF-relevant one.
    min_edge:
        Stop early when the best stump's edge over 1/2 drops below this.
    """

    def __init__(
        self,
        rounds: int = 50,
        feature_map: Optional[FeatureMap] = None,
        min_edge: float = 1e-6,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be positive")
        if min_edge < 0:
            raise ValueError("min_edge must be non-negative")
        self.rounds = rounds
        self.feature_map = feature_map
        self.min_edge = min_edge

    def fit(self, x: np.ndarray, y: np.ndarray) -> AdaBoostResult:
        """Train on +/-1 inputs and labels."""
        x = np.asarray(x)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (m, n) and y length m")
        if x.shape[0] == 0:
            raise ValueError("need at least one example")
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        m, n = feats.shape

        weights = np.full(m, 1.0 / m)
        stumps: List[Stump] = []
        alphas: List[float] = []
        rounds_run = 0
        for _ in range(self.rounds):
            stump, error = self._best_stump(feats, y, weights)
            edge = 0.5 - error
            if edge <= self.min_edge:
                break
            rounds_run += 1
            if error <= 1e-9:
                # A perfect weak hypothesis: it alone is the answer.
                stumps.append(stump)
                alphas.append(1.0)
                break
            error = min(max(error, 1e-12), 1 - 1e-12)
            alpha = 0.5 * math.log((1.0 - error) / error)
            preds = stump.predict(feats)
            weights = weights * np.exp(-alpha * y * preds)
            weights = weights / np.sum(weights)
            stumps.append(stump)
            alphas.append(alpha)

        result = AdaBoostResult(
            stumps=stumps,
            alphas=alphas,
            train_accuracy=0.0,
            rounds_run=rounds_run,
            feature_map=self.feature_map,
        )
        if stumps:
            acc = np.zeros(m)
            for stump, alpha in zip(stumps, alphas):
                acc += alpha * stump.predict(feats)
            result.train_accuracy = float(np.mean(np.where(acc >= 0, 1, -1) == y))
        else:
            # Degenerate: no stump beat chance; fall back to the majority
            # constant.
            majority = 1 if np.mean(y) >= 0 else -1
            result.stumps = [Stump(-1, majority)]
            result.alphas = [1.0]
            result.train_accuracy = float(np.mean(majority == y))
        return result

    @staticmethod
    def _best_stump(
        feats: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> Tuple[Stump, float]:
        """Lowest-weighted-error stump, vectorised over coordinates."""
        # Weighted correlation of each coordinate with the labels.
        corr = (weights * y) @ feats  # in [-1, 1]
        best_coord = int(np.argmax(np.abs(corr)))
        polarity = 1 if corr[best_coord] >= 0 else -1
        error_coord = 0.5 - 0.5 * abs(corr[best_coord])
        # Constant stump error.
        bias = float(np.sum(weights * y))
        error_const = 0.5 - 0.5 * abs(bias)
        if error_const < error_coord:
            return Stump(-1, 1 if bias >= 0 else -1), error_const
        return Stump(best_coord, polarity), error_coord

"""The adaptive-vs-passive query atlas behind ``python -m repro bench-active``.

Each case is one (n, k) cell of the atlas: every
:data:`~repro.learning.active.STRATEGY_NAMES` strategy attacks the same
population of fresh PUF instances with the same total query budget, all
oracle calls metered.  The cell reports, per strategy, the mean
held-out accuracy at each checkpoint, the smallest metered budget at
which the strategy reaches the *passive* run's final accuracy, and the
resulting query saving — the experimentally mapped gap between the
Table I passive ceiling (``general_vc_bound``) and what chosen-challenge
access actually costs.

The k=2 cell is deliberately adversarial: the margin-guided strategies
still drive a single-LTF logistic hypothesis, which cannot represent a
2-XOR PUF — so adaptivity buys nothing there.  The atlas keeps the cell
because the paper's pitfall is exactly that access-model upgrades do not
rescue a wrong hypothesis class.

Results serialise to ``benchmarks/results/BENCH_active.json`` and render
into ``docs/BENCHMARKS.md`` via ``python -m repro docs-bench``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.learning.active import make_strategy, run_active_attack
from repro.pac import PACParameters
from repro.pac.bounds import general_vc_bound_log10
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.telemetry import QueryMeter, metered


@dataclasses.dataclass(frozen=True)
class ActiveBenchCase:
    """One (n, k) atlas cell: all strategies, shared instances and budget."""

    name: str
    n: int = 32
    k: int = 1
    budgets: Tuple[int, ...] = (40, 80, 160, 320)
    batch: int = 16
    pool_size: int = 2048
    trials: int = 5
    test_size: int = 2000
    committee: int = 3
    fast_fraction: float = 0.5
    strategies: Tuple[str, ...] = (
        "passive",
        "uncertainty",
        "committee",
        "fastslow",
    )
    seed: int = 20


def default_cases() -> List[ActiveBenchCase]:
    """The full atlas: two learnable arbiter cells plus the k=2 control."""
    return [
        ActiveBenchCase(name="atlas_n32_k1", n=32, k=1),
        ActiveBenchCase(name="atlas_n48_k1", n=48, k=1),
        ActiveBenchCase(
            name="atlas_n24_k2_control",
            n=24,
            k=2,
            budgets=(80, 160, 320),
            trials=3,
        ),
    ]


def smoke_cases() -> List[ActiveBenchCase]:
    """Seconds-fast CI subset: one cell, enough to assert the gap exists."""
    return [
        ActiveBenchCase(
            name="atlas_n24_k1_smoke",
            n=24,
            k=1,
            budgets=(40, 80, 160),
            pool_size=512,
            trials=2,
            test_size=1000,
            strategies=("passive", "uncertainty", "fastslow"),
        )
    ]


def _mean_accuracies(rows: List[List[float]]) -> List[float]:
    """Column-wise mean over per-trial accuracy rows."""
    return [float(v) for v in np.asarray(rows, dtype=np.float64).mean(axis=0)]


def _queries_to_reach(
    budgets: Sequence[int], accuracies: Sequence[float], target: float
) -> Optional[int]:
    """Smallest checkpoint budget whose mean accuracy meets ``target``."""
    for budget, acc in zip(budgets, accuracies):
        if acc >= target:
            return int(budget)
    return None


def run_active_case(case: ActiveBenchCase) -> Dict[str, object]:
    """Run every strategy of one atlas cell and assemble its record.

    Each (strategy, trial) pair runs under its own
    :class:`~repro.telemetry.QueryMeter`, and the accounting identity —
    metered queries of the strategy's kind == the nominal total budget —
    is part of the cell's ``equivalent`` flag: a strategy that slipped
    an unmetered oracle call past the meter fails the bench.
    """
    budgets = tuple(sorted(case.budgets))
    total = budgets[-1]
    root = np.random.SeedSequence(case.seed)
    instance_seeds = root.spawn(case.trials)
    accounting_ok = True
    per_strategy: Dict[str, Dict[str, object]] = {}
    for name in case.strategies:
        rows: List[List[float]] = []
        metered_queries: List[int] = []
        for trial, instance_seed in enumerate(instance_seeds):
            instance_rng = np.random.default_rng(instance_seed)
            if case.k == 1:
                puf = ArbiterPUF(case.n, instance_rng)
            else:
                puf = XORArbiterPUF(case.n, case.k, instance_rng)
            strategy = make_strategy(
                name,
                committee=case.committee,
                fast_fraction=case.fast_fraction,
            )
            # Every trial shares its attack seed across strategies, so
            # the atlas compares strategies on identical test draws.
            attack_seed = np.random.SeedSequence(
                case.seed, spawn_key=(1, trial)
            )
            with metered(QueryMeter(track_distinct=False)) as meter:
                result = run_active_attack(
                    case.n,
                    puf.eval,
                    strategy,
                    budgets,
                    batch=case.batch,
                    pool_size=case.pool_size,
                    test_size=case.test_size,
                    seed=attack_seed,
                )
            counted = meter.kinds[strategy.kind].queries
            metered_queries.append(int(counted))
            if counted != total or meter.total_queries != total:
                accounting_ok = False
            rows.append(result.accuracies)
        per_strategy[name] = {
            "mean_accuracies": _mean_accuracies(rows),
            "metered_queries": max(metered_queries),
        }

    passive_final = per_strategy["passive"]["mean_accuracies"][-1]
    curves: Dict[str, object] = {"budgets": list(budgets)}
    best_name, best_queries = None, None
    for name in case.strategies:
        stats = per_strategy[name]
        reach = _queries_to_reach(
            budgets, stats["mean_accuracies"], passive_final
        )
        stats["final_accuracy"] = stats["mean_accuracies"][-1]
        stats["queries_to_passive_accuracy"] = reach
        stats["query_savings"] = (
            float(total) / reach if reach else None
        )
        # The summary record keeps scalars; the full checkpoint curve
        # moves under "curves" so docs-bench tables stay one row per cell.
        curves[name] = stats.pop("mean_accuracies")
        if name != "passive" and reach is not None:
            if best_queries is None or reach < best_queries:
                best_name, best_queries = name, reach
    params = PACParameters(eps=0.05, delta=0.05)
    return {
        "name": case.name,
        "params": {
            "n": case.n,
            "k": case.k,
            "budget": total,
            "batch": case.batch,
            "trials": case.trials,
        },
        "curves": curves,
        **per_strategy,
        "atlas": {
            "passive_final_accuracy": passive_final,
            "best_adaptive": best_name,
            "best_adaptive_queries": best_queries,
            "adaptive_beats_passive": bool(
                best_queries is not None and best_queries < total
            ),
            "vc_bound_log10": general_vc_bound_log10(case.n, case.k, params),
        },
        "equivalent": accounting_ok,
    }


def run_active_bench(
    cases: Optional[Sequence[ActiveBenchCase]] = None,
) -> Dict[str, object]:
    """Run a case list and assemble the serialisable payload."""
    cases = default_cases() if cases is None else list(cases)
    return {
        "generated_by": "python -m repro bench-active",
        "numpy": np.__version__,
        "cases": [run_active_case(case) for case in cases],
    }


def render_table(payload: Dict[str, object]) -> str:
    """Human-readable summary of an active-learning atlas payload."""
    from repro.analysis.tables import TableBuilder

    table = TableBuilder(
        [
            "cell",
            "(n, k)",
            "passive acc @ budget",
            "best adaptive",
            "queries to match",
            "savings",
            "metered",
        ],
        title="adaptive-vs-passive query atlas (equal metered budgets)",
    )
    for rec in payload["cases"]:
        atlas = rec["atlas"]
        total = rec["params"]["budget"]
        best = atlas["best_adaptive"]
        reach = atlas["best_adaptive_queries"]
        table.add_row(
            rec["name"],
            f"({rec['params']['n']}, {rec['params']['k']})",
            f"{atlas['passive_final_accuracy']:.3f} @ {total}",
            best or "none",
            str(reach) if reach else "never",
            f"{total / reach:.1f}x" if reach else "-",
            "ok" if rec["equivalent"] else "MISCOUNTED",
        )
    return table.render()


def write_results(payload: Dict[str, object], path: Path) -> None:
    """Write the benchmark payload as indented JSON, creating parents."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")

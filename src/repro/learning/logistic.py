"""Logistic-regression modelling attack (the Rührmair et al. [8] baseline).

The empirical state of the art the paper contrasts with *provable* learners:
gradient-based LR over the arbiter parity features breaks plain arbiter
PUFs with a few thousand CRPs and small XOR PUFs with polynomially more.
Implemented directly on NumPy/SciPy (no sklearn in this environment).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np
from scipy import optimize

from repro.booleanfuncs.ltf import LTF
from repro.telemetry import trace

FeatureMap = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class LogisticResult:
    """Outcome of a logistic-regression attack."""

    ltf: LTF
    converged: bool
    final_loss: float
    train_accuracy: float
    feature_map: Optional[FeatureMap] = None

    def predict(self, x: np.ndarray) -> np.ndarray:
        feats = x if self.feature_map is None else self.feature_map(x)
        return self.ltf(feats)

    def probability(self, x: np.ndarray) -> np.ndarray:
        """P(response = +1) under the logistic model."""
        feats = x if self.feature_map is None else self.feature_map(x)
        margin = np.asarray(feats, dtype=np.float64) @ self.ltf.weights - self.ltf.threshold
        return 1.0 / (1.0 + np.exp(-margin))


class LogisticAttack:
    """L2-regularised logistic regression trained with L-BFGS.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (not the intercept).
    feature_map:
        Optional challenge transform (e.g. the arbiter parity transform,
        which makes arbiter-PUF CRPs linearly separable).
    max_iter:
        L-BFGS iteration cap.
    """

    def __init__(
        self,
        l2: float = 1e-4,
        feature_map: Optional[FeatureMap] = None,
        max_iter: int = 500,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        self.l2 = l2
        self.feature_map = feature_map
        self.max_iter = max_iter

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> LogisticResult:
        """Train on +/-1 challenges and labels."""
        x = np.asarray(x)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (m, n) and y length m")
        if x.shape[0] == 0:
            raise ValueError("need at least one example")
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        m, d = feats.shape
        rng = np.random.default_rng() if rng is None else rng
        theta0 = rng.normal(0.0, 0.01, size=d + 1)

        def loss_and_grad(theta: np.ndarray):
            w, b = theta[:d], theta[d]
            margin = y * (feats @ w + b)
            # log(1 + exp(-margin)) computed stably.
            loss = np.mean(np.logaddexp(0.0, -margin)) + 0.5 * self.l2 * (w @ w)
            sig = 1.0 / (1.0 + np.exp(np.clip(margin, -500, 500)))
            coef = -y * sig / m
            grad_w = feats.T @ coef + self.l2 * w
            grad_b = np.sum(coef)
            return loss, np.concatenate([grad_w, [grad_b]])

        with trace("logistic.fit", examples=m, features=d):
            result = optimize.minimize(
                loss_and_grad,
                theta0,
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
        w, b = result.x[:d], result.x[d]
        ltf = LTF(w, -b, name="logistic_ltf")
        preds = ltf(feats)
        return LogisticResult(
            ltf=ltf,
            converged=bool(result.success),
            final_loss=float(result.fun),
            train_accuracy=float(np.mean(preds == y)),
            feature_map=self.feature_map,
        )

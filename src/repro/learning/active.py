"""Adaptive challenge-selection strategies for the membership-query adversary.

The paper's access-model axis (Section IV) says the *kind* of oracle
access — not just the sample count — decides attack feasibility.  The
passive learning curves elsewhere in this repo draw challenges i.i.d.
from a distribution (an :class:`~repro.learning.oracles.ExampleOracle`);
this module gives the adversary the stronger chosen-challenge access of
Table I row 4 and lets it *choose* each next query adaptively:

* :class:`UncertaintyStrategy` — margin-based uncertainty sampling: fit
  the current hypothesis (logistic regression over the arbiter parity
  features), then query the candidate challenges closest to the
  hypothesis hyperplane, where one label is worth the most.
* :class:`CommitteeStrategy` — query-by-committee via bagging: a
  committee of logistic fits (the full labelled set plus bootstrap
  resamples) scores each candidate by the magnitude of its *mean*
  margin; candidates the members disagree on (mean margin near zero)
  are queried first.  A committee of one is definitionally identical to
  uncertainty sampling — a differential conformance relation pins that.
* :class:`FastSlowStrategy` — the two-phase schedule of
  Dumoulin–Rao–Devroye (arXiv:2308.13645): a "fast" random exploration
  phase buys a coarse hypothesis cheaply, then a "slow" margin-guided
  refinement phase spends the remaining budget near the boundary.
* :class:`PassiveStrategy` — the i.i.d. baseline, routed through the
  same runner so adaptive-vs-passive comparisons share every other
  degree of freedom (fitter, test set, seed layout).

Query accounting
----------------
Every oracle interaction is metered by the ambient
:class:`~repro.telemetry.meter.QueryMeter`: passive draws land under the
``"ex"`` kind (via :class:`~repro.learning.oracles.ExampleOracle`),
adaptive queries under ``"mq"`` (via
:class:`~repro.learning.oracles.MembershipOracle`), and both inherit the
oracles' count-then-raise budget semantics.  Candidate enumeration and
hypothesis re-evaluation are the attacker's own computation — free — and
held-out test draws run :func:`~repro.telemetry.meter.unmetered`, so the
ledger's query counts equal the attack budget exactly.

Determinism
-----------
A trajectory is a pure function of ``(strategy, target, seed)``: the
candidate pool draw, the first (blind) batch, every bootstrap resample,
and every fit initialisation consume one shared generator in a fixed
order.  Checkpoint evaluation is prefix-based — the labelled set at
budget ``b`` is exactly the first ``b`` queries of the full trajectory —
so curves are comparable point to point like the passive
:func:`~repro.analysis.learning_curves.learning_curve`, and a cached
trajectory (see :func:`repro.runtime.workloads.active_trial`) replays
bit-identically.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.learning.logistic import LogisticAttack, LogisticResult
from repro.learning.oracles import ExampleOracle, MembershipOracle, Target
from repro.pufs.arbiter import parity_transform
from repro.pufs.crp import ChallengeSampler, uniform_challenges
from repro.telemetry import unmetered

FeatureMap = Callable[[np.ndarray], np.ndarray]

#: The strategy names :func:`make_strategy` accepts (the CLI choices).
STRATEGY_NAMES = ("passive", "uncertainty", "committee", "fastslow")


def _hypothesis_margin(result: LogisticResult, challenges: np.ndarray) -> np.ndarray:
    """Signed distance of each challenge from the hypothesis hyperplane.

    Raw (unnormalised) margins: the selection rule only compares
    magnitudes *within* one scoring pass, so the weight norm cancels.
    """
    feats = (
        challenges
        if result.feature_map is None
        else result.feature_map(challenges)
    )
    feats = np.asarray(feats, dtype=np.float64)
    return feats @ result.ltf.weights - result.ltf.threshold


def _smallest_scores(scores: np.ndarray, batch: int) -> np.ndarray:
    """Indices of the ``batch`` smallest scores, ties broken by position.

    A *stable* argsort makes the selection a deterministic function of
    the score vector — the property the committee-of-one ≡ uncertainty
    differential relation relies on.
    """
    order = np.argsort(scores, kind="stable")
    return order[:batch]


class PassiveStrategy:
    """The i.i.d. baseline: challenges drawn from the distribution D.

    Never calls :meth:`select`; :func:`collect_trajectory` routes it
    through an :class:`~repro.learning.oracles.ExampleOracle`, so its
    queries are metered under ``"ex"`` like every other passive draw in
    the repo.
    """

    name = "passive"
    kind = "ex"
    adaptive = False

    def describe(self) -> str:
        """Canonical parameter string (store-key material)."""
        return "passive"


class UncertaintyStrategy:
    """Margin-based uncertainty sampling near the hypothesis hyperplane.

    Each round fits a fresh logistic hypothesis on everything labelled
    so far and queries the candidates with the smallest ``|margin|`` —
    the NumPy-native selection rule for an LTF target: for a halfspace,
    label information is concentrated at the boundary.

    Parameters
    ----------
    feature_map:
        Challenge transform under which the target is (near-)linear;
        defaults to the arbiter parity transform.
    l2, max_iter:
        Passed to :class:`~repro.learning.logistic.LogisticAttack`.
    """

    name = "uncertainty"
    kind = "mq"
    adaptive = True

    def __init__(
        self,
        feature_map: Optional[FeatureMap] = parity_transform,
        l2: float = 1e-4,
        max_iter: int = 500,
    ) -> None:
        self.feature_map = feature_map
        self.l2 = l2
        self.max_iter = max_iter

    def describe(self) -> str:
        """Canonical parameter string (store-key material)."""
        return f"uncertainty(l2={self.l2},max_iter={self.max_iter})"

    def select(
        self,
        x: np.ndarray,
        y: np.ndarray,
        pool: np.ndarray,
        batch: int,
        rng: np.random.Generator,
        total_budget: int,
    ) -> np.ndarray:
        """Indices of the ``batch`` pool candidates nearest the hyperplane."""
        attack = LogisticAttack(
            l2=self.l2, feature_map=self.feature_map, max_iter=self.max_iter
        )
        result = attack.fit(x, y, rng)
        scores = np.abs(_hypothesis_margin(result, pool))
        return _smallest_scores(scores, batch)


class CommitteeStrategy:
    """Query-by-committee disagreement sampling via bagging.

    Member 0 fits the full labelled set; members 1..c-1 fit bootstrap
    resamples of it (logistic loss is convex, so resampling — not
    initialisation — is what diversifies the committee).  Candidates are
    scored by ``|mean margin across members|``: a mean margin near zero
    means the members disagree on the label, the classic QBC signal.

    With ``committee=1`` the score reduces to ``|margin|`` of the
    full-set fit and the generator consumption matches
    :class:`UncertaintyStrategy` exactly, so the two strategies select
    bit-identical trajectories — the pinned differential relation.
    """

    name = "committee"
    kind = "mq"
    adaptive = True

    def __init__(
        self,
        committee: int = 3,
        feature_map: Optional[FeatureMap] = parity_transform,
        l2: float = 1e-4,
        max_iter: int = 500,
    ) -> None:
        if committee < 1:
            raise ValueError("committee size must be at least 1")
        self.committee = committee
        self.feature_map = feature_map
        self.l2 = l2
        self.max_iter = max_iter

    def describe(self) -> str:
        """Canonical parameter string (store-key material)."""
        return (
            f"committee(c={self.committee},l2={self.l2},"
            f"max_iter={self.max_iter})"
        )

    def select(
        self,
        x: np.ndarray,
        y: np.ndarray,
        pool: np.ndarray,
        batch: int,
        rng: np.random.Generator,
        total_budget: int,
    ) -> np.ndarray:
        """Indices of the ``batch`` candidates the committee disputes most."""
        attack = LogisticAttack(
            l2=self.l2, feature_map=self.feature_map, max_iter=self.max_iter
        )
        margins = np.zeros(pool.shape[0], dtype=np.float64)
        m = y.shape[0]
        for member in range(self.committee):
            if member == 0:
                xr, yr = x, y
            else:
                resample = rng.integers(0, m, size=m)
                xr, yr = x[resample], y[resample]
            result = attack.fit(xr, yr, rng)
            margins += _hypothesis_margin(result, pool)
        scores = np.abs(margins / self.committee)
        return _smallest_scores(scores, batch)


class FastSlowStrategy:
    """The fast/slow two-phase schedule of arXiv:2308.13645.

    Phase 1 ("fast"): spend ``fast_fraction`` of the total budget on
    uniformly random candidates — cheap exploration that buys a coarse
    hypothesis without per-round fitting.  Phase 2 ("slow"): spend the
    remainder on margin-guided refinement, identical to
    :class:`UncertaintyStrategy`.  The phase boundary is a function of
    the labelled count, so checkpoint prefixes still replay exactly.
    """

    name = "fastslow"
    kind = "mq"
    adaptive = True

    def __init__(
        self,
        fast_fraction: float = 0.5,
        feature_map: Optional[FeatureMap] = parity_transform,
        l2: float = 1e-4,
        max_iter: int = 500,
    ) -> None:
        if not 0.0 <= fast_fraction <= 1.0:
            raise ValueError("fast_fraction must be in [0, 1]")
        self.fast_fraction = fast_fraction
        self.feature_map = feature_map
        self.l2 = l2
        self.max_iter = max_iter

    def describe(self) -> str:
        """Canonical parameter string (store-key material)."""
        return (
            f"fastslow(fast={self.fast_fraction},l2={self.l2},"
            f"max_iter={self.max_iter})"
        )

    def select(
        self,
        x: np.ndarray,
        y: np.ndarray,
        pool: np.ndarray,
        batch: int,
        rng: np.random.Generator,
        total_budget: int,
    ) -> np.ndarray:
        """Random picks in the fast phase, min-|margin| picks in the slow one."""
        if y.shape[0] < self.fast_fraction * total_budget:
            return rng.choice(pool.shape[0], size=batch, replace=False)
        attack = LogisticAttack(
            l2=self.l2, feature_map=self.feature_map, max_iter=self.max_iter
        )
        result = attack.fit(x, y, rng)
        scores = np.abs(_hypothesis_margin(result, pool))
        return _smallest_scores(scores, batch)


def make_strategy(
    name: str,
    committee: int = 3,
    fast_fraction: float = 0.5,
    feature_map: Optional[FeatureMap] = parity_transform,
    l2: float = 1e-4,
    max_iter: int = 500,
):
    """A :data:`STRATEGY_NAMES` strategy by name, with shared knobs."""
    if name == "passive":
        return PassiveStrategy()
    if name == "uncertainty":
        return UncertaintyStrategy(feature_map=feature_map, l2=l2, max_iter=max_iter)
    if name == "committee":
        return CommitteeStrategy(
            committee=committee, feature_map=feature_map, l2=l2, max_iter=max_iter
        )
    if name == "fastslow":
        return FastSlowStrategy(
            fast_fraction=fast_fraction,
            feature_map=feature_map,
            l2=l2,
            max_iter=max_iter,
        )
    raise ValueError(f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}")


@dataclasses.dataclass
class Trajectory:
    """The labelled query sequence one strategy produced, in query order."""

    strategy: str  #: the producing strategy's name
    kind: str  #: the meter kind its oracle calls landed in ("ex" or "mq")
    challenges: np.ndarray  #: (B, n) int8, row i was the i-th query asked
    responses: np.ndarray  #: (B,) int8 labels as answered (noise included)
    queries: int  #: oracle queries asked (== B; the accounting identity)


def collect_trajectory(
    n: int,
    target: Target,
    strategy,
    total_budget: int,
    batch: int = 16,
    pool_size: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noise_rate: float = 0.0,
    max_queries: Optional[int] = None,
    sampler: ChallengeSampler = uniform_challenges,
) -> Trajectory:
    """Run one strategy's query loop to ``total_budget`` labelled examples.

    Adaptive strategies draw a free candidate pool (the attacker's own
    enumeration, unmetered), ask their first batch blind (uniformly at
    random from the pool — there is no hypothesis to consult yet), and
    then alternate fit/select/query rounds; every answered challenge is
    a metered ``"mq"`` query against a
    :class:`~repro.learning.oracles.MembershipOracle`.  The passive
    strategy draws i.i.d. batches from an
    :class:`~repro.learning.oracles.ExampleOracle` (metered ``"ex"``).

    ``max_queries`` caps the underlying oracle *below* the requested
    budget if desired; the oracles' count-then-raise semantics apply
    unchanged on the adaptive path (the refused batch is counted, then
    :class:`~repro.learning.oracles.QueryBudgetExceeded` is raised).

    ``noise_rate`` flips each adaptive answer independently, mirroring
    ExampleOracle's classification noise on the passive path.
    """
    if total_budget < 1:
        raise ValueError("total_budget must be positive")
    if batch < 1:
        raise ValueError("batch must be positive")
    rng = np.random.default_rng() if rng is None else rng
    cap = total_budget if max_queries is None else max_queries

    if not strategy.adaptive:
        oracle = ExampleOracle(
            n, target, rng=rng, noise_rate=noise_rate, max_examples=cap
        )
        xs: List[np.ndarray] = []
        ys: List[np.ndarray] = []
        labelled = 0
        while labelled < total_budget:
            take = min(batch, total_budget - labelled)
            x, y = oracle.draw(take)
            xs.append(x)
            ys.append(y)
            labelled += take
        return Trajectory(
            strategy=strategy.name,
            kind=strategy.kind,
            challenges=np.concatenate(xs, axis=0),
            responses=np.concatenate(ys, axis=0),
            queries=oracle.examples_drawn,
        )

    if pool_size < total_budget:
        raise ValueError(
            f"pool_size {pool_size} cannot cover total_budget {total_budget}"
        )
    oracle = MembershipOracle(n, target, max_queries=cap)
    # The candidate pool is the attacker's own enumeration, not an oracle
    # interaction — drawing it must not count toward any query budget.
    with unmetered():
        pool = sampler(pool_size, n, rng)
    available = np.ones(pool_size, dtype=bool)
    challenges = np.empty((0, n), dtype=np.int8)
    responses = np.empty(0, dtype=np.int8)
    while responses.shape[0] < total_budget:
        take = min(batch, total_budget - responses.shape[0])
        open_idx = np.flatnonzero(available)
        candidates = pool[open_idx]
        if responses.shape[0] == 0:
            picks = rng.choice(candidates.shape[0], size=take, replace=False)
        else:
            picks = strategy.select(
                challenges, responses, candidates, take, rng, total_budget
            )
        rows = candidates[picks]
        answers = oracle.query(rows)
        if noise_rate > 0:
            flips = rng.random(take) < noise_rate
            answers = np.where(flips, -answers, answers).astype(np.int8)
        available[open_idx[picks]] = False
        challenges = np.concatenate([challenges, rows.astype(np.int8)], axis=0)
        responses = np.concatenate([responses, answers])
    return Trajectory(
        strategy=strategy.name,
        kind=strategy.kind,
        challenges=challenges,
        responses=responses,
        queries=oracle.queries_made,
    )


def evaluate_trajectory(
    challenges: np.ndarray,
    responses: np.ndarray,
    budgets: Sequence[int],
    test_challenges: np.ndarray,
    test_responses: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    feature_map: Optional[FeatureMap] = parity_transform,
    l2: float = 1e-4,
    max_iter: int = 500,
) -> List[float]:
    """Held-out accuracy of a fresh logistic fit at each budget prefix.

    Budget ``b`` trains on the trajectory's first ``b`` queries — the
    labelled set the adversary actually held after ``b`` oracle calls —
    so the returned curve has the same prefix semantics as the passive
    :func:`~repro.analysis.learning_curves.learning_curve`.  Evaluation
    consumes no oracle queries (the test set was drawn by the caller).
    """
    budgets = sorted(int(b) for b in budgets)
    if not budgets or budgets[0] < 1:
        raise ValueError("budgets must be positive")
    if responses.shape[0] < budgets[-1]:
        raise ValueError(
            f"trajectory has {responses.shape[0]} queries, "
            f"fewer than the largest budget {budgets[-1]}"
        )
    rng = np.random.default_rng() if rng is None else rng
    accuracies = []
    for budget in budgets:
        result = LogisticAttack(
            l2=l2, feature_map=feature_map, max_iter=max_iter
        ).fit(challenges[:budget], responses[:budget], rng)
        accuracies.append(
            float(np.mean(result.predict(test_challenges) == test_responses))
        )
    return accuracies


@dataclasses.dataclass
class ActiveRunResult:
    """One strategy's full adaptive (or passive) attack on one target."""

    strategy: str  #: strategy name
    kind: str  #: meter kind the queries landed in
    budgets: List[int]  #: checkpoint budgets, ascending
    accuracies: List[float]  #: held-out accuracy at each checkpoint
    queries: int  #: metered oracle queries over the whole run
    trajectory: Trajectory  #: the labelled query sequence

    def queries_to_reach(self, accuracy: float) -> Optional[int]:
        """Smallest checkpoint budget whose accuracy meets the target."""
        for budget, acc in zip(self.budgets, self.accuracies):
            if acc >= accuracy:
                return budget
        return None

    def final_accuracy(self) -> float:
        """Accuracy at the largest checkpoint."""
        return self.accuracies[-1]


def run_active_attack(
    n: int,
    target: Target,
    strategy,
    budgets: Sequence[int],
    batch: int = 16,
    pool_size: int = 1024,
    test_size: int = 2000,
    noise_rate: float = 0.0,
    seed: object = 0,
) -> ActiveRunResult:
    """Collect a trajectory, then score it at every checkpoint budget.

    ``seed`` (an int or :class:`numpy.random.SeedSequence`) fans out into
    three independent streams — selection, checkpoint fits, test draw —
    so a cached trajectory can skip the selection stream entirely and
    still reproduce the checkpoint accuracies bit-identically (the
    warm-start property of the ``active`` workload).
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    select_seed, fit_seed, test_seed = root.spawn(3)
    budgets = sorted(int(b) for b in budgets)
    trajectory = collect_trajectory(
        n,
        target,
        strategy,
        budgets[-1],
        batch=batch,
        pool_size=pool_size,
        rng=np.random.default_rng(select_seed),
        noise_rate=noise_rate,
    )
    with unmetered():
        test_x = uniform_challenges(test_size, n, np.random.default_rng(test_seed))
        test_y = np.asarray(target(test_x), dtype=np.int8)
    accuracies = evaluate_trajectory(
        trajectory.challenges,
        trajectory.responses,
        budgets,
        test_x,
        test_y,
        rng=np.random.default_rng(fit_seed),
    )
    return ActiveRunResult(
        strategy=trajectory.strategy,
        kind=trajectory.kind,
        budgets=list(budgets),
        accuracies=accuracies,
        queries=trajectory.queries,
        trajectory=trajectory,
    )

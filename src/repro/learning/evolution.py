"""Evolution-strategies modelling attack (the ES attack of [8]).

Rührmair et al.'s second empirical weapon besides logistic regression: a
(mu, lambda) evolution strategy over the physical model's parameters,
with training-set agreement as the fitness.  ES needs nothing but forward
evaluations, so it attacks *any* parametric PUF model — including ones
whose margins are non-differentiable — at the price of more CRPs/compute.
Included to populate the "empirical, distribution-free, proper" corner of
the adversary-model space.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

FeatureMap = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class ESResult:
    """Outcome of an evolution-strategies attack."""

    weights: np.ndarray  # (k, d) chain weights of the best individual
    train_accuracy: float
    generations_run: int
    evaluations: int
    feature_map: Optional[FeatureMap] = None

    def predict(self, x: np.ndarray) -> np.ndarray:
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        margins = np.prod(feats @ self.weights.T, axis=1)
        return np.where(margins >= 0, 1, -1).astype(np.int8)


class EvolutionStrategiesAttack:
    """(mu, lambda)-ES over product-of-LTF-margins PUF models.

    Parameters
    ----------
    k:
        Number of chains modelled.
    mu, lam:
        Parents kept / offspring generated per generation.
    generations:
        Generation cap.
    sigma0:
        Initial mutation step; self-adapted multiplicatively per offspring
        (log-normal rule).
    target_accuracy:
        Early-stop once the best individual's training accuracy reaches
        this level.
    feature_map:
        Challenge transform (use the arbiter parity transform).
    """

    def __init__(
        self,
        k: int,
        mu: int = 8,
        lam: int = 32,
        generations: int = 120,
        sigma0: float = 0.5,
        target_accuracy: float = 0.97,
        feature_map: Optional[FeatureMap] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if mu < 1 or lam < mu:
            raise ValueError("need lam >= mu >= 1")
        if generations < 1:
            raise ValueError("generations must be positive")
        if sigma0 <= 0:
            raise ValueError("sigma0 must be positive")
        if not 0.5 < target_accuracy <= 1.0:
            raise ValueError("target_accuracy must be in (0.5, 1]")
        self.k = k
        self.mu = mu
        self.lam = lam
        self.generations = generations
        self.sigma0 = sigma0
        self.target_accuracy = target_accuracy
        self.feature_map = feature_map

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> ESResult:
        """Evolve chain weights against +/-1 CRPs."""
        x = np.asarray(x)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (m, n) and y length m")
        if x.shape[0] == 0:
            raise ValueError("need at least one example")
        rng = np.random.default_rng() if rng is None else rng
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        d = feats.shape[1]

        def fitness(weights: np.ndarray) -> float:
            margins = np.prod(feats @ weights.T, axis=1)
            return float(np.mean(np.where(margins >= 0, 1, -1) == y))

        # Initial parents: random Gaussian individuals with step sizes.
        parents = [
            (rng.normal(0.0, 1.0, size=(self.k, d)), self.sigma0)
            for _ in range(self.mu)
        ]
        parent_fitness = [fitness(w) for w, _ in parents]
        evaluations = self.mu
        tau = 1.0 / np.sqrt(2.0 * self.k * d)
        best_idx = int(np.argmax(parent_fitness))
        best = (parents[best_idx][0].copy(), parent_fitness[best_idx])
        generations_run = 0

        for generation in range(self.generations):
            generations_run = generation + 1
            offspring = []
            offspring_fitness = []
            for _ in range(self.lam):
                w, sigma = parents[int(rng.integers(0, self.mu))]
                new_sigma = sigma * float(np.exp(tau * rng.normal()))
                child = w + new_sigma * rng.normal(0.0, 1.0, size=w.shape)
                offspring.append((child, new_sigma))
                offspring_fitness.append(fitness(child))
            evaluations += self.lam
            order = np.argsort(offspring_fitness)[::-1][: self.mu]
            parents = [offspring[int(i)] for i in order]
            parent_fitness = [offspring_fitness[int(i)] for i in order]
            if parent_fitness[0] > best[1]:
                best = (parents[0][0].copy(), parent_fitness[0])
            if best[1] >= self.target_accuracy:
                break

        return ESResult(
            weights=best[0],
            train_accuracy=best[1],
            generations_run=generations_run,
            evaluations=evaluations,
            feature_map=self.feature_map,
        )

"""The Perceptron algorithm with mistake accounting.

The bound of [9] in Table I rests on the Perceptron's mistake bound
(margin/radius analysis), so the implementation tracks mistakes explicitly.
This is also the learner the paper runs (via Weka) on the Chow-parameter
LTF f' in Table II, and on raw BR PUF CRPs in [11].

An optional feature map lets the same learner operate in the parity-feature
space of arbiter PUFs (where the target *is* linearly separable).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.booleanfuncs.ltf import LTF

FeatureMap = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class PerceptronResult:
    """Outcome of a Perceptron run."""

    ltf: LTF
    mistakes: int
    epochs_run: int
    converged: bool
    train_accuracy: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.ltf(self._features(x))

    def _features(self, x: np.ndarray) -> np.ndarray:
        return x if self.feature_map is None else self.feature_map(x)

    feature_map: Optional[FeatureMap] = None


class Perceptron:
    """Classic Perceptron, run for multiple epochs over a fixed sample.

    Parameters
    ----------
    max_epochs:
        Passes over the data; training stops early on a mistake-free epoch.
    learning_rate:
        Update step (scale-invariant for the final classifier but kept for
        fidelity to the textbook algorithm).
    feature_map:
        Optional transform applied to challenges before the linear model
        (e.g. :func:`repro.pufs.arbiter.parity_transform`).
    averaged:
        If True, use the averaged-Perceptron weight vector (more stable on
        non-separable data such as BR PUF CRPs).
    """

    def __init__(
        self,
        max_epochs: int = 50,
        learning_rate: float = 1.0,
        feature_map: Optional[FeatureMap] = None,
        averaged: bool = False,
        shuffle: bool = True,
    ) -> None:
        if max_epochs <= 0:
            raise ValueError("max_epochs must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.max_epochs = max_epochs
        self.learning_rate = learning_rate
        self.feature_map = feature_map
        self.averaged = averaged
        self.shuffle = shuffle

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> PerceptronResult:
        """Train on +/-1 challenges ``x`` and labels ``y``."""
        x = np.asarray(x)
        y = np.asarray(y)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (m, n) and y length m")
        if x.shape[0] == 0:
            raise ValueError("need at least one example")
        rng = np.random.default_rng() if rng is None else rng

        feats = x if self.feature_map is None else self.feature_map(x)
        feats = feats.astype(np.float64)
        m, d = feats.shape
        w = np.zeros(d)
        b = 0.0
        w_sum = np.zeros(d)
        b_sum = 0.0
        updates_seen = 0
        mistakes = 0
        converged = False
        epochs_run = 0

        for epoch in range(self.max_epochs):
            epochs_run = epoch + 1
            order = rng.permutation(m) if self.shuffle else np.arange(m)
            epoch_mistakes = 0
            for i in order:
                margin = feats[i] @ w + b
                pred = 1 if margin >= 0 else -1
                if pred != y[i]:
                    w += self.learning_rate * y[i] * feats[i]
                    b += self.learning_rate * y[i]
                    mistakes += 1
                    epoch_mistakes += 1
                w_sum += w
                b_sum += b
                updates_seen += 1
            if epoch_mistakes == 0:
                converged = True
                break

        if self.averaged and updates_seen:
            w_final, b_final = w_sum / updates_seen, b_sum / updates_seen
        else:
            w_final, b_final = w, b
        ltf = LTF(w_final, -b_final, name="perceptron_ltf")
        preds = ltf(feats.astype(np.int8) if self._pm1(feats) else feats)
        train_acc = float(np.mean(preds == y))
        return PerceptronResult(
            ltf=ltf,
            mistakes=mistakes,
            epochs_run=epochs_run,
            converged=converged,
            train_accuracy=train_acc,
            feature_map=self.feature_map,
        )

    @staticmethod
    def _pm1(feats: np.ndarray) -> bool:
        return bool(np.all(np.abs(feats) == 1))

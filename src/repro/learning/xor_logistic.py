"""The empirical XOR Arbiter PUF modelling attack (Rührmair et al. [8]).

Models a k-XOR arbiter PUF as a product of linear margins over the parity
features,

    m(c) = prod_{j=1..k} (w_j . phi(c)),     y_hat = sgn(m(c)),

and fits the chain weights by logistic regression on y * m(c) with L-BFGS
and random restarts.  This is the attack that broke small-k XOR PUFs in
practice and is the empirical counterpart of the provable machinery in
:mod:`repro.learning.lmn` / :mod:`repro.learning.learn_poly`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np
from scipy import optimize

FeatureMap = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class XorLogisticResult:
    """Outcome of the product-of-margins attack."""

    chain_weights: np.ndarray  # (k, d)
    converged: bool
    final_loss: float
    train_accuracy: float
    restarts_used: int
    feature_map: Optional[FeatureMap] = None

    def margin(self, x: np.ndarray) -> np.ndarray:
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        margins = feats @ self.chain_weights.T  # (m, k)
        return np.prod(margins, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(self.margin(x) >= 0, 1, -1).astype(np.int8)


class XorLogisticAttack:
    """Product-of-margins logistic attack on k-XOR PUF CRPs.

    Parameters
    ----------
    k:
        Number of chains to model (attacker's guess; equals the real k in
        the standard threat model).
    restarts:
        Random restarts of L-BFGS; the loss is non-convex for k >= 2.
    max_iter:
        L-BFGS iterations per restart.
    l2:
        Ridge penalty on all weights.
    feature_map:
        Challenge transform; use
        :func:`repro.pufs.arbiter.parity_transform` for arbiter chains.
    target_accuracy:
        Stop restarting once training accuracy reaches this level.
    """

    def __init__(
        self,
        k: int,
        restarts: int = 8,
        max_iter: int = 300,
        l2: float = 1e-5,
        feature_map: Optional[FeatureMap] = None,
        target_accuracy: float = 0.98,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if restarts < 1 or max_iter < 1:
            raise ValueError("restarts and max_iter must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if not 0.5 < target_accuracy <= 1.0:
            raise ValueError("target_accuracy must be in (0.5, 1]")
        self.k = k
        self.restarts = restarts
        self.max_iter = max_iter
        self.l2 = l2
        self.feature_map = feature_map
        self.target_accuracy = target_accuracy

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> XorLogisticResult:
        """Fit on +/-1 challenges and responses."""
        x = np.asarray(x)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (m, n) and y length m")
        if x.shape[0] == 0:
            raise ValueError("need at least one example")
        rng = np.random.default_rng() if rng is None else rng
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        m, d = feats.shape
        k = self.k

        def loss_and_grad(theta: np.ndarray):
            w = theta.reshape(k, d)
            margins = feats @ w.T  # (m, k)
            prod = np.prod(margins, axis=1)
            z = y * prod
            loss = np.mean(np.logaddexp(0.0, -z)) + 0.5 * self.l2 * np.sum(w * w)
            sig = 1.0 / (1.0 + np.exp(np.clip(z, -500, 500)))
            coef = -y * sig / m  # dLoss/dprod
            grad = np.empty_like(w)
            for j in range(k):
                others = np.prod(
                    np.delete(margins, j, axis=1), axis=1
                ) if k > 1 else np.ones(m)
                grad[j] = feats.T @ (coef * others) + self.l2 * w[j]
            return loss, grad.ravel()

        best: Optional[XorLogisticResult] = None
        for attempt in range(self.restarts):
            theta0 = rng.normal(0.0, 1.0, size=k * d)
            result = optimize.minimize(
                loss_and_grad,
                theta0,
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            w = result.x.reshape(k, d)
            margins = np.prod(feats @ w.T, axis=1)
            acc = float(np.mean(np.where(margins >= 0, 1, -1) == y))
            candidate = XorLogisticResult(
                chain_weights=w,
                converged=bool(result.success),
                final_loss=float(result.fun),
                train_accuracy=acc,
                restarts_used=attempt + 1,
                feature_map=self.feature_map,
            )
            if best is None or candidate.train_accuracy > best.train_accuracy:
                best = candidate
            if best.train_accuracy >= self.target_accuracy:
                break
        assert best is not None
        return best

"""The LMN (Linial-Mansour-Nisan) low-degree algorithm [16].

The uniform-distribution, improper PAC learner at the heart of the paper's
Corollary 1: estimate every Fourier coefficient of degree < d from one
shared sample of uniform examples, and output the sign of the resulting
low-degree expansion.  Because the hypothesis is *any* sign-of-polynomial
(not an LTF, not a circuit), this is improper learning — the freedom the
paper emphasises in Section V-B.

The algorithm tolerates classification noise: noise of rate eta scales
every estimated coefficient by (1 - 2 eta) uniformly, which does not change
the sign of the expansion, only its margin.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.booleanfuncs.function import BooleanFunction
from repro.kernels import CharacterBasis
from repro.kernels import low_degree_subsets as _low_degree_subsets
from repro.kernels import num_low_degree_subsets  # noqa: F401 - re-export
from repro.kernels import sign_of_expansion as _kernel_sign_of_expansion
from repro.learning.oracles import ExampleOracle
from repro.telemetry import QueryMeter, current_meter, metered, trace


def lmn_sample_size(n: int, degree: int, eps: float, delta: float) -> int:
    """The n^O(d) ln(1/delta) sample size of the LMN theorem.

    We use the concrete form m = ceil((8/eps) * N * ln(4 N / delta)) with
    N the number of coefficients estimated — a standard Hoeffding + union
    bound making every estimate accurate to sqrt(eps/N).
    """
    if not 0 < eps < 1 or not 0 < delta < 1:
        raise ValueError("eps and delta must be in (0, 1)")
    count = num_low_degree_subsets(n, degree)
    return math.ceil((8.0 / eps) * count * math.log(4.0 * count / delta))


@dataclasses.dataclass
class LMNResult:
    """Outcome of an LMN run."""

    hypothesis: BooleanFunction
    spectrum: Dict[Tuple[int, ...], float]
    degree: int
    examples_used: int
    captured_weight: float  # sum of squared estimated coefficients
    telemetry: Optional[dict] = None  # query-meter snapshot (oracle runs)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.hypothesis(x)


class LMNLearner:
    """Low-degree Fourier learner over the uniform distribution.

    Parameters
    ----------
    degree:
        Estimate all coefficients with |S| <= degree.  For XOR Arbiter
        PUFs, Corollary 1 prescribes degree ~ 2.32 k^2 / eps^2 (see
        :func:`repro.booleanfuncs.noise_sensitivity.lmn_degree_for_xor_puf`).
    threshold:
        Coefficients with |estimate| below this are dropped from the
        hypothesis (0 keeps all — the plain LMN).
    max_coefficients:
        Guard rail: refuse to enumerate more subsets than this (the n^O(d)
        blow-up is the *point* of the infeasibility result for large k).
    """

    def __init__(
        self,
        degree: int,
        threshold: float = 0.0,
        max_coefficients: int = 2_000_000,
    ) -> None:
        if degree < 0:
            raise ValueError("degree must be non-negative")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.degree = degree
        self.threshold = threshold
        self.max_coefficients = max_coefficients

    # ------------------------------------------------------------------
    def low_degree_subsets(self, n: int) -> List[Tuple[int, ...]]:
        """All subsets of [n] of size <= degree (guard-railed)."""
        count = num_low_degree_subsets(n, self.degree)
        if count > self.max_coefficients:
            raise ValueError(
                f"degree {self.degree} over n={n} variables needs {count} "
                f"coefficients (> cap {self.max_coefficients}); this blow-up "
                "is exactly the LMN infeasibility regime"
            )
        return _low_degree_subsets(n, self.degree)

    def fit_sample(self, x: np.ndarray, y: np.ndarray) -> LMNResult:
        """Run LMN on a fixed sample of uniform examples."""
        x = np.asarray(x)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (m, n) and y length m")
        if x.shape[0] == 0:
            raise ValueError("need at least one example")
        with trace("lmn.fit", examples=x.shape[0], degree=self.degree):
            n = x.shape[1]
            subsets = self.low_degree_subsets(n)

            # All coefficients from the shared sample, one blocked GEMM per
            # example block; bit-identical to the per-subset mean (the
            # characters and partial sums are integer-valued, hence exact).
            basis = CharacterBasis.from_subsets(n, subsets)
            estimates = basis.estimate_coefficients(x, y)
            spectrum: Dict[Tuple[int, ...], float] = {
                subset: float(estimate)
                for subset, estimate in zip(subsets, estimates)
                if abs(estimate) > self.threshold
            }

            captured = float(sum(v * v for v in spectrum.values()))
            hypothesis = _expansion_sign(n, spectrum)
        return LMNResult(
            hypothesis=hypothesis,
            spectrum=spectrum,
            degree=self.degree,
            examples_used=x.shape[0],
            captured_weight=captured,
        )

    def fit_oracle(self, oracle: ExampleOracle, m: int) -> LMNResult:
        """Draw ``m`` examples from the oracle and run LMN.

        The result's ``telemetry`` is a learner-local query-meter snapshot
        (the oracle draw plus nothing else); counts also forward to any
        ambient trial meter.
        """
        local = QueryMeter(parent=current_meter())
        with metered(local):
            x, y = oracle.draw(m)
            result = self.fit_sample(x, y)
        result.telemetry = local.snapshot()
        return result


def _expansion_sign(
    n: int, spectrum: Dict[Tuple[int, ...], float]
) -> BooleanFunction:
    """sign(sum fhat(S) chi_S(x)) as a BooleanFunction (ties -> +1)."""
    return _kernel_sign_of_expansion(n, spectrum, name="lmn_hypothesis")

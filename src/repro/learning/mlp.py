"""A small multilayer perceptron, trained with Adam (NumPy only).

The modern face of the improper adversary: a one-hidden-layer tanh network
can represent the pairwise/triple interactions a BR PUF has and an LTF
cannot, so it clears the proper-LTF accuracy cap of [11]/Table II the same
way the LMN low-degree expansion does — with the usual empirical-ML
trade-off (no PAC certificate, but excellent accuracy per CRP).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.telemetry import trace

FeatureMap = Callable[[np.ndarray], np.ndarray]


@dataclasses.dataclass
class MLPResult:
    """A trained one-hidden-layer network."""

    w1: np.ndarray  # (d, hidden)
    b1: np.ndarray  # (hidden,)
    w2: np.ndarray  # (hidden,)
    b2: float
    train_accuracy: float
    epochs_run: int
    final_loss: float
    feature_map: Optional[FeatureMap] = None

    def score(self, x: np.ndarray) -> np.ndarray:
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        hidden = np.tanh(feats @ self.w1 + self.b1)
        return hidden @ self.w2 + self.b2

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(self.score(x) >= 0, 1, -1).astype(np.int8)


class MLPAttack:
    """One-hidden-layer tanh MLP with logistic loss and Adam.

    Parameters
    ----------
    hidden:
        Hidden units.
    epochs:
        Full passes over the data.
    batch_size, learning_rate, l2:
        The usual knobs.
    """

    def __init__(
        self,
        hidden: int = 32,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 0.01,
        l2: float = 1e-5,
        feature_map: Optional[FeatureMap] = None,
    ) -> None:
        if hidden < 1 or epochs < 1 or batch_size < 1:
            raise ValueError("hidden, epochs, and batch_size must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.feature_map = feature_map

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> MLPResult:
        """Train on +/-1 inputs and labels."""
        x = np.asarray(x)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (m, n) and y length m")
        if x.shape[0] == 0:
            raise ValueError("need at least one example")
        rng = np.random.default_rng() if rng is None else rng
        feats = x if self.feature_map is None else self.feature_map(x)
        feats = np.asarray(feats, dtype=np.float64)
        m, d = feats.shape
        h = self.hidden

        w1 = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, h))
        b1 = np.zeros(h)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(h), size=h)
        b2 = 0.0

        params = [w1, b1, w2, np.array([b2])]
        m1 = [np.zeros_like(p) for p in params]
        m2 = [np.zeros_like(p) for p in params]
        beta1, beta2, eps_adam = 0.9, 0.999, 1e-8
        step = 0
        loss = np.inf

        # One span for the whole optimisation, not per epoch or batch.
        with trace("mlp.fit", examples=m, features=d, epochs=self.epochs):
            for epoch in range(self.epochs):
                order = rng.permutation(m)
                for start in range(0, m, self.batch_size):
                    idx = order[start : start + self.batch_size]
                    xb, yb = feats[idx], y[idx]
                    # Forward.
                    pre = xb @ params[0] + params[1]
                    hid = np.tanh(pre)
                    score = hid @ params[2] + params[3][0]
                    z = yb * score
                    loss = float(
                        np.mean(np.logaddexp(0.0, -z))
                        + 0.5 * self.l2 * (np.sum(params[0] ** 2) + np.sum(params[2] ** 2))
                    )
                    # Backward.
                    sig = 1.0 / (1.0 + np.exp(np.clip(z, -500, 500)))
                    dscore = -yb * sig / xb.shape[0]
                    grads = [
                        xb.T @ ((dscore[:, None] * params[2][None, :]) * (1 - hid**2))
                        + self.l2 * params[0],
                        np.sum((dscore[:, None] * params[2][None, :]) * (1 - hid**2), axis=0),
                        hid.T @ dscore + self.l2 * params[2],
                        np.array([np.sum(dscore)]),
                    ]
                    step += 1
                    for p, g, mm, vv in zip(params, grads, m1, m2):
                        mm *= beta1
                        mm += (1 - beta1) * g
                        vv *= beta2
                        vv += (1 - beta2) * g * g
                        m_hat = mm / (1 - beta1**step)
                        v_hat = vv / (1 - beta2**step)
                        p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps_adam)

        result = MLPResult(
            w1=params[0],
            b1=params[1],
            w2=params[2],
            b2=float(params[3][0]),
            train_accuracy=0.0,
            epochs_run=self.epochs,
            final_loss=loss,
            feature_map=self.feature_map,
        )
        result.train_accuracy = float(
            np.mean(result.predict(x) == y.astype(np.int8))
        )
        return result

"""Angluin's L* algorithm for learning DFAs [22].

The representation-choice discussion of Section V-B: a sequentially locked
circuit's FSM can be learned exactly through membership and equivalence
queries when the input alphabet is polynomial.  The equivalence oracle can
be exact (product construction, when the target machine is available for
experiments) or simulated with random words per Angluin's reduction.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.dfa import DFA

Symbol = Hashable
Word = Tuple[Symbol, ...]
MembershipFn = Callable[[Word], bool]
EquivalenceFn = Callable[[DFA], Optional[Word]]


@dataclasses.dataclass
class LStarResult:
    """Outcome of an L* run."""

    dfa: DFA
    membership_queries: int
    equivalence_queries: int
    exact: bool  # True when the final equivalence query accepted


def exact_equivalence_oracle(target: DFA) -> EquivalenceFn:
    """A perfect equivalence oracle built from a known target DFA."""

    def oracle(hypothesis: DFA) -> Optional[Word]:
        return target.find_counterexample(hypothesis)

    return oracle


def sampled_equivalence_oracle(
    membership: MembershipFn,
    alphabet: Sequence[Symbol],
    eps: float,
    delta: float,
    rng: np.random.Generator,
    max_length: int = 20,
) -> EquivalenceFn:
    """Angluin's simulated equivalence oracle over random words.

    Words are drawn with geometric length (mean ~ max_length / 2, capped)
    and uniform symbols; the sample size grows per round as in
    :func:`repro.learning.oracles.angluin_eq_sample_size`.
    """
    from repro.learning.oracles import angluin_eq_sample_size

    alphabet = tuple(alphabet)
    state = {"round": 0}

    def oracle(hypothesis: DFA) -> Optional[Word]:
        m = angluin_eq_sample_size(eps, delta, state["round"])
        state["round"] += 1
        for _ in range(m):
            length = min(int(rng.geometric(2.0 / max(1, max_length))), max_length)
            word = tuple(
                alphabet[int(rng.integers(0, len(alphabet)))] for _ in range(length)
            )
            if membership(word) != hypothesis.accepts(word):
                return word
        return None

    return oracle


class LStarLearner:
    """Classic observation-table L*.

    Counterexamples are processed by adding all their prefixes to the row
    set S (Angluin's original variant).
    """

    def __init__(self, alphabet: Sequence[Symbol], max_rounds: int = 10_000) -> None:
        self.alphabet: Tuple[Symbol, ...] = tuple(alphabet)
        if not self.alphabet:
            raise ValueError("alphabet must be non-empty")
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def fit(
        self,
        membership: MembershipFn,
        equivalence: EquivalenceFn,
    ) -> LStarResult:
        """Learn a DFA for the language answered by ``membership``."""
        self._mq_count = 0
        self._cache: Dict[Word, bool] = {}
        self._membership = membership

        prefixes: List[Word] = [()]
        suffixes: List[Word] = [()]
        eq_count = 0
        exact = False
        hypothesis = None

        for _ in range(self.max_rounds):
            self._close_and_make_consistent(prefixes, suffixes)
            hypothesis = self._build_hypothesis(prefixes, suffixes)
            counterexample = equivalence(hypothesis)
            eq_count += 1
            if counterexample is None:
                exact = True
                break
            # Add all prefixes of the counterexample to S.
            for cut in range(1, len(counterexample) + 1):
                prefix = tuple(counterexample[:cut])
                if prefix not in prefixes:
                    prefixes.append(prefix)

        assert hypothesis is not None
        return LStarResult(
            dfa=hypothesis,
            membership_queries=self._mq_count,
            equivalence_queries=eq_count,
            exact=exact,
        )

    # ------------------------------------------------------------------
    def _ask(self, word: Word) -> bool:
        if word not in self._cache:
            self._cache[word] = bool(self._membership(word))
            self._mq_count += 1
        return self._cache[word]

    def _row(self, prefix: Word, suffixes: List[Word]) -> Tuple[bool, ...]:
        return tuple(self._ask(prefix + e) for e in suffixes)

    def _close_and_make_consistent(
        self, prefixes: List[Word], suffixes: List[Word]
    ) -> None:
        while True:
            rows = {s: self._row(s, suffixes) for s in prefixes}
            row_set = set(rows.values())

            # Closedness: every one-step extension's row appears in S.
            unclosed = None
            for s in prefixes:
                for a in self.alphabet:
                    ext = s + (a,)
                    if self._row(ext, suffixes) not in row_set:
                        unclosed = ext
                        break
                if unclosed:
                    break
            if unclosed is not None:
                prefixes.append(unclosed)
                continue

            # Consistency: equal rows must have equal successor rows.
            inconsistency = None
            for s1, s2 in itertools.combinations(prefixes, 2):
                if rows[s1] != rows[s2]:
                    continue
                for a in self.alphabet:
                    r1 = self._row(s1 + (a,), suffixes)
                    r2 = self._row(s2 + (a,), suffixes)
                    if r1 != r2:
                        # Find the separating suffix and prepend the symbol.
                        for idx, e in enumerate(suffixes):
                            if r1[idx] != r2[idx]:
                                inconsistency = (a,) + e
                                break
                        break
                if inconsistency:
                    break
            if inconsistency is not None:
                if inconsistency not in suffixes:
                    suffixes.append(inconsistency)
                continue
            return

    def _build_hypothesis(
        self, prefixes: List[Word], suffixes: List[Word]
    ) -> DFA:
        rows = {s: self._row(s, suffixes) for s in prefixes}
        # One state per distinct row; representative = first prefix with it.
        state_of_row: Dict[Tuple[bool, ...], int] = {}
        representatives: List[Word] = []
        for s in prefixes:
            r = rows[s]
            if r not in state_of_row:
                state_of_row[r] = len(representatives)
                representatives.append(s)
        transitions: List[Dict[Symbol, int]] = []
        for rep in representatives:
            table = {}
            for a in self.alphabet:
                table[a] = state_of_row[self._row(rep + (a,), suffixes)]
            transitions.append(table)
        accepting = {
            state_of_row[rows[rep]]
            for rep in representatives
            if self._ask(rep)
        }
        start = state_of_row[rows[()]]
        return DFA(self.alphabet, transitions, accepting, start=start)

"""The Statistical Query (SQ) model — noise-tolerant access, formalised.

Footnote 1 of the paper points at attribute noise as a first-class
concern; the SQ model (Kearns) is the classical abstraction for it: the
learner may not see examples at all, only estimates of expectations
``E[q(x, f(x))]`` answered to within a tolerance tau.  Every SQ learner is
automatically noise-tolerant — and, famously, parities are *not* SQ
learnable, which separates the access models the paper compares:

* LTF-structure (Chow parameters) is SQ-learnable: the n+1 correlational
  queries ``q_i = y x_i`` suffice (``SQChowLearner``);
* a parity's correlational queries are all 0 except the single right one,
  so an adversarial tau-rounding oracle reveals nothing — membership
  queries (LearnPoly, KM) are strictly stronger here.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.booleanfuncs.ltf import LTF, ltf_from_chow_parameters
from repro.learning.oracles import QueryBudgetExceeded
from repro.pufs.crp import ChallengeSampler, uniform_challenges
from repro.telemetry import meter as _meter

Target = Callable[[np.ndarray], np.ndarray]
Query = Callable[[np.ndarray, np.ndarray], np.ndarray]


class SQOracle:
    """Answers statistical queries about (x, f(x)) with tolerance tau.

    Parameters
    ----------
    n, target:
        Arity and the unknown +/-1 function.
    tau:
        Tolerance: answers are within tau of the true expectation.
    mode:
        ``"adversarial"`` rounds the true expectation to the nearest
        multiple of tau (the worst legal oracle — kills parities);
        ``"sampling"`` estimates from ``ceil(4/tau^2)`` fresh examples
        (the realistic oracle induced by an example stream).
    sampler:
        The distribution D the expectations are over.
    max_queries:
        Optional SQ budget, with the shared count-then-raise semantics:
        the refused call still increments ``queries_made``, then
        :class:`~repro.learning.oracles.QueryBudgetExceeded` is raised.

    Telemetry: each answered query records one ``sq`` query into the
    ambient :class:`~repro.telemetry.meter.QueryMeter`.  In sampling mode
    the examples the oracle privately spends are recorded in the ``sq``
    counter's ``examples`` field; the adversarial oracle's reference
    sample is *not* an attacker cost (it models oracle-side omniscience)
    and records zero examples.
    """

    def __init__(
        self,
        n: int,
        target: Target,
        tau: float,
        mode: str = "adversarial",
        rng: Optional[np.random.Generator] = None,
        sampler: ChallengeSampler = uniform_challenges,
        max_queries: Optional[int] = None,
    ) -> None:
        if not 0 < tau < 1:
            raise ValueError("tau must be in (0, 1)")
        if mode not in ("adversarial", "sampling"):
            raise ValueError(f"unknown mode {mode!r}")
        if max_queries is not None and max_queries < 1:
            raise ValueError("max_queries must be positive when given")
        self.n = n
        self.target = target
        self.tau = tau
        self.mode = mode
        self.rng = np.random.default_rng() if rng is None else rng
        self.sampler = sampler
        self.max_queries = max_queries
        self.queries_made = 0
        # Exact expectations need a reference sample; large but fixed.
        self._reference_size = max(int(np.ceil(16.0 / tau**2)), 4096)

    def query(self, q: Query) -> float:
        """E[q(x, f(x))] to within tau; q must map into [-1, 1]."""
        self.queries_made += 1
        if self.max_queries is not None and self.queries_made > self.max_queries:
            raise QueryBudgetExceeded(
                f"statistical query budget of {self.max_queries} exhausted"
            )
        if self.mode == "sampling":
            m = max(int(np.ceil(4.0 / self.tau**2)), 16)
            x = self.sampler(m, self.n, self.rng)
            values = np.asarray(q(x, np.asarray(self.target(x))), dtype=np.float64)
            self._check_range(values)
            _meter.record("sq", queries=1, examples=m)
            return float(np.mean(values))
        # Adversarial: compute a high-precision estimate of the truth, then
        # round it to the tau-grid (a legal answer that leaks the least).
        x = self.sampler(self._reference_size, self.n, self.rng)
        values = np.asarray(q(x, np.asarray(self.target(x))), dtype=np.float64)
        self._check_range(values)
        _meter.record("sq", queries=1)
        truth = float(np.mean(values))
        return round(truth / self.tau) * self.tau

    @staticmethod
    def _check_range(values: np.ndarray) -> None:
        if np.any(np.abs(values) > 1.0 + 1e-9):
            raise ValueError("SQ query values must lie in [-1, 1]")


@dataclasses.dataclass
class SQChowResult:
    """Outcome of SQ-based Chow-parameter learning."""

    ltf: LTF
    chow_estimate: np.ndarray
    queries_made: int
    telemetry: Optional[dict] = None  # learner-local query-meter snapshot

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.ltf(x)


class SQChowLearner:
    """Learn an LTF from n+1 correlational statistical queries.

    The Chow parameters are exactly the answers to q_0 = y and
    q_i = y x_i, so the whole learner is n+1 SQ calls — the canonical
    noise-tolerant attack on LTF-representable PUFs.
    """

    def fit(self, oracle: SQOracle) -> SQChowResult:
        """Ask the n+1 Chow queries; ``result.telemetry`` snapshots them."""
        from repro.telemetry import QueryMeter, current_meter, metered, trace

        n = oracle.n
        local = QueryMeter(parent=current_meter())
        with metered(local), trace("sq_chow.fit", n=n):
            chow = np.empty(n + 1)
            chow[0] = oracle.query(lambda x, y: y)
            for i in range(n):
                chow[i + 1] = oracle.query(
                    lambda x, y, i=i: y * x[:, i]
                )
        return SQChowResult(
            ltf=ltf_from_chow_parameters(chow),
            chow_estimate=chow,
            queries_made=oracle.queries_made,
            telemetry=local.snapshot(),
        )


def parity_correlations_under_sq(
    oracle: SQOracle, candidate_subsets
) -> dict:
    """Correlational queries E[y chi_S(x)] for candidate parities.

    Against an adversarial oracle with tau larger than the true (single,
    +/-1-valued) coefficient's aliasing level... in fact for a parity
    target every candidate S != S* has true correlation 0 and S* has 1, so
    the adversarial oracle answers 0 for all wrong candidates and the
    attack degenerates to exhaustive search over subsets — exponentially
    many SQ calls.  This helper exists to make that failure measurable.
    """
    from repro.kernels import character_column

    results = {}
    for subset in candidate_subsets:
        subset = tuple(subset)
        results[subset] = oracle.query(
            lambda x, y, s=subset: y * character_column(x, s)
        )
    return results

"""Becker-style reliability attack on XOR Arbiter PUFs.

The access-model extension the paper's taxonomy invites: besides the
challenge-response bit, a physical attacker can measure each challenge
repeatedly and record its *reliability* — and reliability is a property of
the **individual chains** (a challenge is unstable when some chain's
margin is small), not of the XOR.  Correlating a hypothetical chain's
|margin| with measured reliability therefore singles out one chain at a
time, making the attack polynomial in k where response-only attacks fight
the full XOR.  This implementation covers the k = 2 case end to end:

1. measure CRPs R times; reliability r_i = |sum of measurements| / R;
2. evolve a weight vector maximising |corr(|phi w|, r)| (CMA-ES in the
   original; a (mu, lambda)-ES here) — converges onto one chain;
3. infer the other chain's labels from b = y * sign(phi w_A) and fit it by
   logistic regression;
4. EM-refine both chains alternately.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import parity_transform
from repro.pufs.xor_arbiter import XORArbiterPUF


@dataclasses.dataclass
class ReliabilityAttackResult:
    """Recovered 2-XOR model."""

    chain_a: np.ndarray  # (n+1,) weights over parity features
    chain_b: np.ndarray
    reliability_correlation: float  # achieved |corr| of the ES phase
    train_accuracy: float
    oracle_measurements: int  # total noisy evaluations consumed

    def predict(self, challenges: np.ndarray) -> np.ndarray:
        phi = parity_transform(challenges)
        a = np.where(phi @ self.chain_a >= 0, 1, -1)
        b = np.where(phi @ self.chain_b >= 0, 1, -1)
        return (a * b).astype(np.int8)


class ReliabilityAttack:
    """Reliability side-channel attack on 2-XOR Arbiter PUFs.

    Parameters
    ----------
    crps:
        Challenges measured.
    repetitions:
        Noisy measurements per challenge (the reliability resolution).
    generations, mu, lam:
        ES schedule for the reliability-correlation phase.
    restarts:
        Independent ES restarts (the correlation landscape has poor local
        optima; the best run is kept and the loop stops early once the
        correlation is clearly locked onto a chain).
    refinement_rounds:
        Alternating logistic refinements after the ES phase.
    """

    def __init__(
        self,
        crps: int = 6000,
        repetitions: int = 15,
        generations: int = 80,
        mu: int = 6,
        lam: int = 24,
        restarts: int = 4,
        refinement_rounds: int = 3,
    ) -> None:
        if crps < 10 or repetitions < 3:
            raise ValueError("need >= 10 CRPs and >= 3 repetitions")
        if generations < 1 or mu < 1 or lam < mu:
            raise ValueError("invalid ES schedule")
        if restarts < 1:
            raise ValueError("restarts must be positive")
        if refinement_rounds < 0:
            raise ValueError("refinement_rounds must be non-negative")
        self.crps = crps
        self.repetitions = repetitions
        self.generations = generations
        self.mu = mu
        self.lam = lam
        self.restarts = restarts
        self.refinement_rounds = refinement_rounds

    def run(
        self,
        puf: XORArbiterPUF,
        rng: Optional[np.random.Generator] = None,
    ) -> ReliabilityAttackResult:
        """Attack a noisy 2-XOR PUF through repeated measurements."""
        if puf.k != 2:
            raise ValueError("this implementation targets k = 2 XOR PUFs")
        if puf.noise_sigma <= 0:
            raise ValueError(
                "the reliability side channel needs a noisy device "
                "(noise_sigma > 0)"
            )
        rng = np.random.default_rng() if rng is None else rng
        n = puf.n
        challenges = (1 - 2 * rng.integers(0, 2, size=(self.crps, n))).astype(
            np.int8
        )
        measurements = np.stack(
            [puf.eval_noisy(challenges, rng) for _ in range(self.repetitions)]
        )
        reliability = np.abs(measurements.sum(axis=0)) / self.repetitions
        responses = np.where(measurements.sum(axis=0) >= 0, 1, -1).astype(np.int8)
        phi = parity_transform(challenges)

        rel_centred = reliability - reliability.mean()
        rel_norm = float(np.sqrt(np.sum(rel_centred**2))) or 1.0

        def fitness(w: np.ndarray) -> float:
            h = np.abs(phi @ w)
            hc = h - h.mean()
            denom = float(np.sqrt(np.sum(hc**2))) * rel_norm
            if denom == 0:
                return 0.0
            return abs(float(np.sum(hc * rel_centred)) / denom)

        # (mu, lambda)-ES on the reliability correlation, with restarts.
        best_w, best_fit = None, -1.0
        for _ in range(self.restarts):
            w, fit = self._es_phase(fitness, n, rng)
            if fit > best_fit:
                best_w, best_fit = w, fit
            if best_fit > 0.2:  # clearly locked onto a chain
                break
        assert best_w is not None

        # Divide and conquer: chain B's labels follow from chain A's signs.
        chain_a = best_w
        chain_b = np.zeros(n + 1)
        for _ in range(self.refinement_rounds + 1):
            a_pred = np.where(phi @ chain_a >= 0, 1, -1)
            b_fit = LogisticAttack().fit(
                phi, (responses * a_pred).astype(np.float64), rng
            )
            chain_b = b_fit.ltf.weights.copy()
            chain_b[-1] -= b_fit.ltf.threshold
            b_pred = np.where(phi @ chain_b >= 0, 1, -1)
            a_fit = LogisticAttack().fit(
                phi, (responses * b_pred).astype(np.float64), rng
            )
            chain_a = a_fit.ltf.weights.copy()
            chain_a[-1] -= a_fit.ltf.threshold

        result = ReliabilityAttackResult(
            chain_a=chain_a,
            chain_b=chain_b,
            reliability_correlation=best_fit,
            train_accuracy=0.0,
            oracle_measurements=self.crps * self.repetitions,
        )
        result.train_accuracy = float(
            np.mean(result.predict(challenges) == responses)
        )
        return result

    def _es_phase(self, fitness, n: int, rng: np.random.Generator):
        """One (mu, lambda)-ES run; returns (best weights, best fitness)."""
        population = [(rng.normal(size=n + 1), 0.5) for _ in range(self.mu)]
        best_w, best_fit = population[0][0], fitness(population[0][0])
        for _ in range(self.generations):
            offspring = []
            scores = []
            for _ in range(self.lam):
                w, step = population[int(rng.integers(0, self.mu))]
                new_step = step * float(np.exp(0.1 * rng.normal()))
                child = w + new_step * rng.normal(size=n + 1)
                offspring.append((child, new_step))
                scores.append(fitness(child))
            order = np.argsort(scores)[::-1][: self.mu]
            population = [offspring[int(i)] for i in order]
            if scores[int(order[0])] > best_fit:
                best_fit = scores[int(order[0])]
                best_w = population[0][0].copy()
        return best_w, best_fit

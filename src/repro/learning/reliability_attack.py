"""Becker-style reliability attack on XOR Arbiter PUFs.

The access-model extension the paper's taxonomy invites: besides the
challenge-response bit, a physical attacker can measure each challenge
repeatedly and record its *reliability* — and reliability is a property of
the **individual chains** (a challenge is unstable when some chain's
margin is small), not of the XOR.  Correlating a hypothetical chain's
|margin| with measured reliability therefore singles out one chain at a
time, making the attack polynomial in k where response-only attacks fight
the full XOR.  This implementation covers the k = 2 case end to end:

1. measure CRPs R times; reliability r_i = |sum of measurements| / R;
2. evolve a weight vector maximising |corr(|phi w|, r)| (CMA-ES in the
   original; a (mu, lambda)-ES here) — converges onto one chain;
3. infer the other chain's labels from b = y * sign(phi w_A) and fit it by
   logistic regression;
4. EM-refine both chains alternately.

The k = 2 :class:`ReliabilityAttack` is kept unchanged as the historical
baseline; :class:`CMAReliabilityAttack` below generalises it to
arbitrary k and to *multi-measurement reliability vectors* (per-batch
reliabilities instead of one pooled scalar, the Li–Zhuang
representation), with a CMA-style evolution strategy (weighted
recombination, cumulative step-size adaptation, diagonal covariance)
replacing the plain (mu, lambda)-ES, and chain peeling driven by a
distinctness penalty against already-recovered chains.  Because the
hypothetical chain is correlated through the device's
``component_features`` layout, the same attack covers plain XOR and
CDC-XOR arbiters.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import parity_transform
from repro.pufs.cdc_xor import derive_component_challenges
from repro.pufs.xor_arbiter import XORArbiterPUF


@dataclasses.dataclass
class ReliabilityAttackResult:
    """Recovered 2-XOR model."""

    chain_a: np.ndarray  # (n+1,) weights over parity features
    chain_b: np.ndarray
    reliability_correlation: float  # achieved |corr| of the ES phase
    train_accuracy: float
    oracle_measurements: int  # total noisy evaluations consumed

    def predict(self, challenges: np.ndarray) -> np.ndarray:
        """+/-1 responses of the recovered 2-XOR model (int8)."""
        phi = parity_transform(challenges)
        a = np.where(phi @ self.chain_a >= 0, 1, -1)
        b = np.where(phi @ self.chain_b >= 0, 1, -1)
        return (a * b).astype(np.int8)


class ReliabilityAttack:
    """Reliability side-channel attack on 2-XOR Arbiter PUFs.

    Parameters
    ----------
    crps:
        Challenges measured.
    repetitions:
        Noisy measurements per challenge (the reliability resolution).
    generations, mu, lam:
        ES schedule for the reliability-correlation phase.
    restarts:
        Independent ES restarts (the correlation landscape has poor local
        optima; the best run is kept and the loop stops early once the
        correlation is clearly locked onto a chain).
    refinement_rounds:
        Alternating logistic refinements after the ES phase.
    """

    def __init__(
        self,
        crps: int = 6000,
        repetitions: int = 15,
        generations: int = 80,
        mu: int = 6,
        lam: int = 24,
        restarts: int = 4,
        refinement_rounds: int = 3,
    ) -> None:
        if crps < 10 or repetitions < 3:
            raise ValueError("need >= 10 CRPs and >= 3 repetitions")
        if generations < 1 or mu < 1 or lam < mu:
            raise ValueError("invalid ES schedule")
        if restarts < 1:
            raise ValueError("restarts must be positive")
        if refinement_rounds < 0:
            raise ValueError("refinement_rounds must be non-negative")
        self.crps = crps
        self.repetitions = repetitions
        self.generations = generations
        self.mu = mu
        self.lam = lam
        self.restarts = restarts
        self.refinement_rounds = refinement_rounds

    def run(
        self,
        puf: XORArbiterPUF,
        rng: Optional[np.random.Generator] = None,
    ) -> ReliabilityAttackResult:
        """Attack a noisy 2-XOR PUF through repeated measurements."""
        if puf.k != 2:
            raise ValueError("this implementation targets k = 2 XOR PUFs")
        if puf.noise_sigma <= 0:
            raise ValueError(
                "the reliability side channel needs a noisy device "
                "(noise_sigma > 0)"
            )
        rng = np.random.default_rng() if rng is None else rng
        n = puf.n
        challenges = (1 - 2 * rng.integers(0, 2, size=(self.crps, n))).astype(
            np.int8
        )
        measurements = np.stack(
            [puf.eval_noisy(challenges, rng) for _ in range(self.repetitions)]
        )
        reliability = np.abs(measurements.sum(axis=0)) / self.repetitions
        responses = np.where(measurements.sum(axis=0) >= 0, 1, -1).astype(np.int8)
        phi = parity_transform(challenges)

        rel_centred = reliability - reliability.mean()
        rel_norm = float(np.sqrt(np.sum(rel_centred**2))) or 1.0

        def fitness(w: np.ndarray) -> float:
            h = np.abs(phi @ w)
            hc = h - h.mean()
            denom = float(np.sqrt(np.sum(hc**2))) * rel_norm
            if denom == 0:
                return 0.0
            return abs(float(np.sum(hc * rel_centred)) / denom)

        # (mu, lambda)-ES on the reliability correlation, with restarts.
        best_w, best_fit = None, -1.0
        for _ in range(self.restarts):
            w, fit = self._es_phase(fitness, n, rng)
            if fit > best_fit:
                best_w, best_fit = w, fit
            if best_fit > 0.2:  # clearly locked onto a chain
                break
        assert best_w is not None

        # Divide and conquer: chain B's labels follow from chain A's signs.
        chain_a = best_w
        chain_b = np.zeros(n + 1)
        for _ in range(self.refinement_rounds + 1):
            a_pred = np.where(phi @ chain_a >= 0, 1, -1)
            b_fit = LogisticAttack().fit(
                phi, (responses * a_pred).astype(np.float64), rng
            )
            chain_b = b_fit.ltf.weights.copy()
            chain_b[-1] -= b_fit.ltf.threshold
            b_pred = np.where(phi @ chain_b >= 0, 1, -1)
            a_fit = LogisticAttack().fit(
                phi, (responses * b_pred).astype(np.float64), rng
            )
            chain_a = a_fit.ltf.weights.copy()
            chain_a[-1] -= a_fit.ltf.threshold

        result = ReliabilityAttackResult(
            chain_a=chain_a,
            chain_b=chain_b,
            reliability_correlation=best_fit,
            train_accuracy=0.0,
            oracle_measurements=self.crps * self.repetitions,
        )
        result.train_accuracy = float(
            np.mean(result.predict(challenges) == responses)
        )
        return result

    def _es_phase(self, fitness, n: int, rng: np.random.Generator):
        """One (mu, lambda)-ES run; returns (best weights, best fitness)."""
        population = [(rng.normal(size=n + 1), 0.5) for _ in range(self.mu)]
        best_w, best_fit = population[0][0], fitness(population[0][0])
        for _ in range(self.generations):
            offspring = []
            scores = []
            for _ in range(self.lam):
                w, step = population[int(rng.integers(0, self.mu))]
                new_step = step * float(np.exp(0.1 * rng.normal()))
                child = w + new_step * rng.normal(size=n + 1)
                offspring.append((child, new_step))
                scores.append(fitness(child))
            order = np.argsort(scores)[::-1][: self.mu]
            population = [offspring[int(i)] for i in order]
            if scores[int(order[0])] > best_fit:
                best_fit = scores[int(order[0])]
                best_w = population[0][0].copy()
        return best_w, best_fit


@dataclasses.dataclass
class MultiReliabilityResult:
    """Recovered k-chain model from the generalised reliability attack."""

    chain_weights: np.ndarray  # (k, n+1) weights over parity features
    correlations: Tuple[float, ...]  # achieved |corr| per ES-peeled slot
    train_accuracy: float
    oracle_measurements: int  # total noisy evaluations consumed
    #: Per-component rotation offsets of a CDC-XOR target; None for a
    #: plain XOR arbiter (every slot sees the master challenge).
    shifts: Optional[Tuple[int, ...]] = None

    def predict(self, challenges: np.ndarray) -> np.ndarray:
        """+/-1 predictions: the product of per-slot model signs."""
        challenges = np.asarray(challenges)
        if challenges.ndim == 1:
            challenges = challenges[None, :]
        k = self.chain_weights.shape[0]
        if self.shifts is None:
            phi = parity_transform(challenges)
            phis = [phi] * k
        else:
            derived = derive_component_challenges(challenges, k, self.shifts)
            phis = [parity_transform(derived[j]) for j in range(k)]
        out = np.ones(challenges.shape[0], dtype=np.int64)
        for j in range(k):
            out = out * np.where(phis[j] @ self.chain_weights[j] >= 0, 1, -1)
        return out.astype(np.int8)


class CMAReliabilityAttack:
    """CMA-style reliability side-channel attack on k-XOR / CDC-XOR PUFs.

    Generalises :class:`ReliabilityAttack` along the three axes the atlas
    sweeps:

    * **k** — chains are peeled one component slot at a time.  Slots
      ``0 .. k-2`` are recovered by the evolution strategy (with a
      distinctness penalty against every already-recovered chain's
      |margin| profile, which is what separates identical slots of a
      plain XOR arbiter); the last slot's labels then follow from the
      product of the recovered signs and are fit by logistic regression,
      after which every slot is EM-refined in turn.
    * **reliability vectors** — the R measurements are split into
      ``batches`` groups and a per-batch reliability is computed for
      each challenge, giving an (m, batches) matrix per Li–Zhuang; the
      ES fitness is the mean |correlation| of a hypothetical chain's
      |margin| against the batch columns, which is strictly more robust
      than the pooled scalar when the noise process drifts.
    * **device family** — all per-slot features come from the target's
      ``component_features`` layout, so CDC-XOR devices (whose slot j is
      linear over the *rotated* parity features) are attacked through
      exactly the same code path as plain XOR arbiters.

    The evolution strategy itself is CMA-flavoured: log-rank weighted
    recombination of the top quarter, cumulative step-size adaptation on
    the evolution path, and a diagonal covariance (per-coordinate
    variance) update.
    """

    def __init__(
        self,
        crps: int = 4000,
        repetitions: int = 9,
        batches: int = 3,
        generations: int = 40,
        lam: int = 20,
        restarts: int = 3,
        refinement_rounds: int = 2,
        distinct_penalty: float = 1.0,
    ) -> None:
        if crps < 10 or repetitions < 3:
            raise ValueError("need >= 10 CRPs and >= 3 repetitions")
        if not 1 <= batches <= repetitions:
            raise ValueError("batches must be in [1, repetitions]")
        if generations < 1 or lam < 4:
            raise ValueError("invalid ES schedule (generations >= 1, lam >= 4)")
        if restarts < 1:
            raise ValueError("restarts must be positive")
        if refinement_rounds < 0:
            raise ValueError("refinement_rounds must be non-negative")
        if distinct_penalty < 0:
            raise ValueError("distinct_penalty must be non-negative")
        self.crps = crps
        self.repetitions = repetitions
        self.batches = batches
        self.generations = generations
        self.lam = lam
        self.restarts = restarts
        self.refinement_rounds = refinement_rounds
        self.distinct_penalty = distinct_penalty

    # ------------------------------------------------------------------
    def run(
        self,
        puf: XORArbiterPUF,
        rng: Optional[np.random.Generator] = None,
    ) -> MultiReliabilityResult:
        """Attack a noisy k-XOR (or CDC-XOR) PUF via repeated measurement."""
        if puf.noise_sigma <= 0:
            raise ValueError(
                "the reliability side channel needs a noisy device "
                "(noise_sigma > 0)"
            )
        rng = np.random.default_rng() if rng is None else rng
        n, k = puf.n, puf.k
        challenges = (1 - 2 * rng.integers(0, 2, size=(self.crps, n))).astype(
            np.int8
        )
        measurements = np.stack(
            [puf.eval_noisy(challenges, rng) for _ in range(self.repetitions)]
        )
        from repro.telemetry.meter import record as _record

        _record(
            "ex",
            queries=self.crps * self.repetitions,
            examples=self.crps * self.repetitions,
            challenges=challenges,
            response_bytes=measurements.nbytes,
        )
        responses = np.where(measurements.sum(axis=0) >= 0, 1, -1).astype(
            np.int8
        )
        # Multi-measurement reliability vectors: one column per batch of
        # repetitions, each centred for the correlation fitness.
        rel_columns = []
        for batch in np.array_split(measurements, self.batches, axis=0):
            rel = np.abs(batch.sum(axis=0)) / batch.shape[0]
            rel_columns.append(rel - rel.mean())
        rel_matrix = np.stack(rel_columns, axis=1)  # (m, batches), centred
        rel_norms = np.sqrt(np.sum(rel_matrix**2, axis=0))
        rel_norms[rel_norms == 0] = 1.0

        phis = puf.component_features(challenges)  # (k, m, n+1)
        chains = np.zeros((k, n + 1))
        correlations = []
        profiles: list = []  # centred, normalised |margin| of found chains

        def profile(phi: np.ndarray, w: np.ndarray) -> np.ndarray:
            h = np.abs(phi @ w)
            hc = h - h.mean()
            norm = float(np.sqrt(np.sum(hc**2))) or 1.0
            return hc / norm

        for slot in range(k - 1):
            phi = phis[slot]

            def fitness(w: np.ndarray) -> float:
                hc = profile(phi, w)
                corr = float(np.mean(np.abs(hc @ rel_matrix) / rel_norms))
                if profiles and self.distinct_penalty > 0:
                    overlap = max(abs(float(hc @ p)) for p in profiles)
                    corr -= self.distinct_penalty * overlap
                return corr

            best_w, best_fit = None, -np.inf
            for _ in range(self.restarts):
                w, fit = self._cma_phase(fitness, n + 1, rng)
                if fit > best_fit:
                    best_w, best_fit = w, fit
            assert best_w is not None
            chains[slot] = best_w
            correlations.append(float(best_fit))
            profiles.append(profile(phi, best_w))

        # The last slot's labels follow from the recovered signs; then
        # EM-refine every slot in turn against the others' predictions.
        signs = np.empty((k, self.crps))
        for j in range(k - 1):
            signs[j] = np.where(phis[j] @ chains[j] >= 0, 1, -1)
        order = [k - 1] + [j for r in range(self.refinement_rounds) for j in range(k)]
        for c in order:
            others = np.ones(self.crps)
            for j in range(k):
                if j != c and np.any(chains[j]):
                    others = others * np.where(phis[j] @ chains[j] >= 0, 1, -1)
            fit = LogisticAttack().fit(
                np.asarray(phis[c], dtype=np.float64),
                (responses * others).astype(np.float64),
                rng,
            )
            chains[c] = fit.ltf.weights.copy()
            chains[c][-1] -= fit.ltf.threshold
            signs[c] = np.where(phis[c] @ chains[c] >= 0, 1, -1)

        result = MultiReliabilityResult(
            chain_weights=chains,
            correlations=tuple(correlations),
            train_accuracy=0.0,
            oracle_measurements=self.crps * self.repetitions,
            shifts=getattr(puf, "shifts", None),
        )
        result.train_accuracy = float(
            np.mean(result.predict(challenges) == responses)
        )
        return result

    # ------------------------------------------------------------------
    def _cma_phase(self, fitness, dim: int, rng: np.random.Generator):
        """One CMA-style ES run; returns (best weights, best fitness).

        Weighted recombination + cumulative step-size adaptation + a
        diagonal covariance update — the separable reduction of CMA-ES,
        which is all the reliability-correlation landscape needs (the
        objective is scale-invariant in ``w``).
        """
        lam = self.lam
        mu = max(2, lam // 4)
        weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights = weights / weights.sum()
        mu_eff = 1.0 / float(np.sum(weights**2))
        c_sigma = (mu_eff + 2.0) / (dim + mu_eff + 5.0)
        d_sigma = 1.0 + c_sigma
        c_var = min(0.5, 2.0 * mu_eff / ((dim + 2.0) ** 2 + mu_eff))
        chi_n = np.sqrt(dim) * (1.0 - 1.0 / (4.0 * dim) + 1.0 / (21.0 * dim**2))

        mean = rng.normal(size=dim)
        sigma = 0.5
        var = np.ones(dim)
        p_sigma = np.zeros(dim)
        best_w, best_fit = mean.copy(), float(fitness(mean))
        for _ in range(self.generations):
            z = rng.normal(size=(lam, dim))
            x = mean + sigma * z * np.sqrt(var)
            scores = np.array([fitness(xi) for xi in x])
            order = np.argsort(scores)[::-1]
            if scores[order[0]] > best_fit:
                best_fit = float(scores[order[0]])
                best_w = x[order[0]].copy()
            z_sel = z[order[:mu]]
            x_sel = x[order[:mu]]
            mean = weights @ x_sel
            z_mean = weights @ z_sel
            p_sigma = (1.0 - c_sigma) * p_sigma + np.sqrt(
                c_sigma * (2.0 - c_sigma) * mu_eff
            ) * z_mean
            sigma *= float(
                np.exp(
                    (c_sigma / d_sigma)
                    * (np.linalg.norm(p_sigma) / chi_n - 1.0)
                )
            )
            var = (1.0 - c_var) * var + c_var * (weights @ (z_sel**2))
            var = np.maximum(var, 1e-12)
        return best_w, best_fit

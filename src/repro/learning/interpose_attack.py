"""The splitting attack on (1,1)-Interpose PUFs.

The iPUF was proposed after XOR PUFs fell, and fell in turn to *divide and
conquer*: model the lower chain pretending the interposed bit is unknown,
then use the lower model to pseudo-label the upper chain, and alternate.
Another instance of the paper's theme — the composition's security
argument implicitly assumed an adversary who attacks the whole function,
not one who exploits its structure.

Implementation (EM-style alternation for the (1,1) case):

1. initialise the upper model randomly;
2. **lower step**: extend each challenge with the upper model's current
   bit prediction and fit the lower LTF by logistic regression over the
   (n+2)-feature parity transform;
3. **upper step**: for each training challenge, check which interposed bit
   value makes the lower model agree with the observed response; where
   exactly one value works, that value is a pseudo-label for the upper
   chain — fit the upper LTF on those;
4. repeat until the joint training accuracy stops improving.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import parity_transform
from repro.pufs.interpose import InterposePUF


@dataclasses.dataclass
class InterposeAttackResult:
    """Fitted upper/lower models of a (1,1)-iPUF."""

    upper_weights: np.ndarray  # (n+1,) over parity features of c
    lower_weights: np.ndarray  # (n+2,) over parity features of c_ext
    position: int
    train_accuracy: float
    iterations_run: int

    def _upper_bit(self, challenges: np.ndarray) -> np.ndarray:
        phi = parity_transform(challenges)
        return np.where(phi @ self.upper_weights >= 0, 1, -1).astype(np.int8)

    def predict(self, challenges: np.ndarray) -> np.ndarray:
        challenges = np.atleast_2d(np.asarray(challenges, dtype=np.int8))
        bits = self._upper_bit(challenges)
        extended = np.insert(challenges, self.position, bits, axis=1)
        phi = parity_transform(extended)
        return np.where(phi @ self.lower_weights >= 0, 1, -1).astype(np.int8)


class InterposeSplittingAttack:
    """Alternating splitting attack for (1,1)-Interpose PUFs.

    Parameters
    ----------
    position:
        Interpose position of the target (the standard middle position of
        :class:`repro.pufs.interpose.InterposePUF` by default, pass the
        target's actual value).
    iterations:
        Alternation rounds.
    """

    def __init__(
        self,
        position: int,
        iterations: int = 6,
        restarts: int = 3,
        target_accuracy: float = 0.95,
    ) -> None:
        if position < 0:
            raise ValueError("position must be non-negative")
        if iterations < 1:
            raise ValueError("iterations must be positive")
        if restarts < 1:
            raise ValueError("restarts must be positive")
        self.position = position
        self.iterations = iterations
        self.restarts = restarts
        self.target_accuracy = target_accuracy

    def fit(
        self,
        challenges: np.ndarray,
        responses: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> InterposeAttackResult:
        """Fit from iPUF CRPs (+/-1 encoding); restarts guard against the
        EM alternation's local optima."""
        challenges = np.asarray(challenges)
        responses = np.asarray(responses)
        if challenges.ndim != 2 or responses.shape != (challenges.shape[0],):
            raise ValueError("challenges must be (m, n) with matching responses")
        if self.position > challenges.shape[1]:
            raise ValueError("position exceeds the challenge length")
        rng = np.random.default_rng() if rng is None else rng
        best: Optional[InterposeAttackResult] = None
        for _ in range(self.restarts):
            candidate = self._fit_once(challenges, responses, rng)
            if best is None or candidate.train_accuracy > best.train_accuracy:
                best = candidate
            if best.train_accuracy >= self.target_accuracy:
                break
        assert best is not None
        return best

    def _fit_once(
        self,
        challenges: np.ndarray,
        responses: np.ndarray,
        rng: np.random.Generator,
    ) -> InterposeAttackResult:
        n = challenges.shape[1]
        upper_w = rng.normal(0.0, 1.0, size=n + 1)
        lower_w = np.zeros(n + 2)
        best = None
        iterations_run = 0

        for iteration in range(self.iterations):
            iterations_run = iteration + 1
            # Lower step: fit the lower chain on extended challenges.
            phi_c = parity_transform(challenges)
            bits = np.where(phi_c @ upper_w >= 0, 1, -1).astype(np.int8)
            extended = np.insert(challenges, self.position, bits, axis=1)
            lower_fit = LogisticAttack(feature_map=parity_transform).fit(
                extended, responses, rng
            )
            # Fold the intercept into the constant feature column.
            lower_w = lower_fit.ltf.weights.copy()
            lower_w[-1] -= lower_fit.ltf.threshold

            # Upper step: pseudo-label the interposed bit where decisive.
            ext_plus = np.insert(challenges, self.position, 1, axis=1)
            ext_minus = np.insert(challenges, self.position, -1, axis=1)
            pred_plus = np.where(
                parity_transform(ext_plus) @ lower_w >= 0, 1, -1
            )
            pred_minus = np.where(
                parity_transform(ext_minus) @ lower_w >= 0, 1, -1
            )
            decisive = pred_plus != pred_minus
            if np.sum(decisive) > 50:
                pseudo = np.where(
                    pred_plus[decisive] == responses[decisive], 1, -1
                ).astype(np.int8)
                upper_fit = LogisticAttack(feature_map=parity_transform).fit(
                    challenges[decisive], pseudo, rng
                )
                upper_w = upper_fit.ltf.weights.copy()
                upper_w[-1] -= upper_fit.ltf.threshold

            # Track the best joint model.
            result = InterposeAttackResult(
                upper_weights=upper_w.copy(),
                lower_weights=lower_w.copy(),
                position=self.position,
                train_accuracy=0.0,
                iterations_run=iterations_run,
            )
            acc = float(np.mean(result.predict(challenges) == responses))
            result.train_accuracy = acc
            if best is None or acc > best.train_accuracy:
                best = result

        assert best is not None
        return best


def attack_interpose_puf(
    puf: InterposePUF,
    crp_count: int,
    rng: Optional[np.random.Generator] = None,
    iterations: int = 6,
) -> InterposeAttackResult:
    """Convenience wrapper: draw CRPs from ``puf`` and run the attack."""
    if puf.upper.k != 1 or puf.lower.k != 1:
        raise ValueError("the splitting attack here targets (1,1)-iPUFs")
    rng = np.random.default_rng() if rng is None else rng
    from repro.pufs.crp import generate_crps

    crps = generate_crps(puf, crp_count, rng)
    attack = InterposeSplittingAttack(puf.position, iterations)
    return attack.fit(crps.challenges, crps.responses, rng)

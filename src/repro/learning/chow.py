"""Learning LTFs from Chow parameters (De et al. [25]; paper Section V-A).

The Table II experiment: estimate the n+1 Chow parameters of the target
from CRPs, build the LTF f' they induce, and check whether training on f'
generalises back to the device.  If the device *is* (close to) an LTF this
must work with error -> 0; the paper's point is that for BR PUFs it
plateaus, exposing the representation error.

The full De-Diakonikolas-Feldman-Servedio algorithm iteratively corrects
the weight vector so that the hypothesis' Chow parameters match the
estimates; we implement that projection loop (a small number of rounds is
enough at our scale) with the plain Chow heuristic as its starting point.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.booleanfuncs.ltf import (
    LTF,
    estimate_chow_parameters,
    ltf_from_chow_parameters,
)
from repro.pufs.crp import CRPSet


@dataclasses.dataclass
class ChowResult:
    """Outcome of Chow-parameter learning."""

    ltf: LTF
    chow_estimate: np.ndarray
    rounds_run: int
    residual: float  # ||chow(hypothesis) - chow(target estimate)||_2

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.ltf(x)


class ChowLearner:
    """Reconstruct an LTF from estimated Chow parameters.

    Parameters
    ----------
    correction_rounds:
        Iterations of the Chow-parameter matching loop of [25].  0 gives
        the plain "use the Chow vector as weights" heuristic.
    step:
        Step size of the correction updates.
    estimation_sample:
        Monte-Carlo sample size used to estimate the *hypothesis'* Chow
        parameters in each correction round.
    """

    def __init__(
        self,
        correction_rounds: int = 12,
        step: float = 0.5,
        estimation_sample: int = 20_000,
    ) -> None:
        if correction_rounds < 0:
            raise ValueError("correction_rounds must be non-negative")
        if step <= 0:
            raise ValueError("step must be positive")
        if estimation_sample <= 0:
            raise ValueError("estimation_sample must be positive")
        self.correction_rounds = correction_rounds
        self.step = step
        self.estimation_sample = estimation_sample

    def fit(
        self,
        crps: CRPSet,
        rng: Optional[np.random.Generator] = None,
    ) -> ChowResult:
        """Estimate Chow parameters from ``crps`` and reconstruct an LTF."""
        rng = np.random.default_rng() if rng is None else rng
        target_chow = estimate_chow_parameters(crps.challenges, crps.responses)
        n = crps.n

        # Start from the plain Chow heuristic.
        current = target_chow.copy()
        ltf = ltf_from_chow_parameters(current)
        residual = self._residual(ltf, target_chow, rng)
        best = (ltf, residual)
        rounds = 0
        for rounds in range(1, self.correction_rounds + 1):
            hyp_chow = self._hypothesis_chow(ltf, rng)
            gap = target_chow - hyp_chow
            current = current + self.step * gap
            ltf = ltf_from_chow_parameters(current)
            residual = float(np.linalg.norm(self._hypothesis_chow(ltf, rng) - target_chow))
            if residual < best[1]:
                best = (ltf, residual)
            if residual < 2.0 / np.sqrt(self.estimation_sample) * (n + 1):
                break
        ltf, residual = best
        return ChowResult(
            ltf=ltf,
            chow_estimate=target_chow,
            rounds_run=rounds,
            residual=residual,
        )

    # ------------------------------------------------------------------
    def _hypothesis_chow(
        self, ltf: LTF, rng: np.random.Generator
    ) -> np.ndarray:
        x = (1 - 2 * rng.integers(0, 2, size=(self.estimation_sample, ltf.n))).astype(
            np.int8
        )
        return estimate_chow_parameters(x, ltf(x))

    def _residual(
        self, ltf: LTF, target_chow: np.ndarray, rng: np.random.Generator
    ) -> float:
        return float(np.linalg.norm(self._hypothesis_chow(ltf, rng) - target_chow))

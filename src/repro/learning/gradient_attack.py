"""A uniform gradient-attack protocol over the LR and MLP learners.

The atlas sweeps learners as an axis, so every gradient-trained model
must look the same from the outside: construct by name, ``train`` on
+/-1 CRPs, ``predict``/``accuracy`` on held-out challenges, with the
challenge *representation* (parity features vs raw bits) a declared
parameter instead of an ad-hoc ``feature_map`` kwarg scattered across
call sites.  This wraps :class:`~repro.learning.logistic.LogisticAttack`
(k = 1), :class:`~repro.learning.xor_logistic.XorLogisticAttack`
(k >= 2, the product-of-margins attack of Rührmair et al.), and
:class:`~repro.learning.mlp.MLPAttack` behind that one protocol.

The representation axis is itself one of the paper's pitfalls: an
arbiter chain is linear over the parity transform but *not* over the raw
challenge bits, so ``representation="raw"`` gives a well-trained model
of the wrong feature space — the atlas shows where that choice alone
moves a cell across the security boundary.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro.learning.logistic import LogisticAttack
from repro.learning.mlp import MLPAttack
from repro.learning.xor_logistic import XorLogisticAttack
from repro.pufs.arbiter import parity_transform

#: The challenge representations an attacker can train over.
REPRESENTATION_NAMES: Tuple[str, ...] = ("parity", "raw")


class GradientAttack(abc.ABC):
    """The attack protocol: ``train`` / ``predict`` / ``accuracy``.

    Subclasses own one underlying learner; this base class owns the
    representation handling and the fitted-state bookkeeping.  ``train``
    returns ``self`` so one-liners like
    ``make_attacker("lr").train(x, y, rng).accuracy(tx, ty)`` read the
    way the sweep loop uses them.
    """

    #: Registry name; subclasses override.
    name: str = "gradient"

    def __init__(self, representation: str = "parity") -> None:
        if representation not in REPRESENTATION_NAMES:
            raise ValueError(
                f"unknown representation {representation!r}; "
                f"expected one of {REPRESENTATION_NAMES}"
            )
        self.representation = representation
        self._result = None

    # ------------------------------------------------------------------
    def feature_map(self, challenges: np.ndarray) -> np.ndarray:
        """The declared representation applied to +/-1 challenges."""
        challenges = np.asarray(challenges)
        if self.representation == "parity":
            return parity_transform(challenges)
        return np.asarray(challenges, dtype=np.float64)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(
        self, feats: np.ndarray, responses: np.ndarray, rng: np.random.Generator
    ):
        """Fit the underlying learner on pre-mapped features."""

    @abc.abstractmethod
    def _score(self, feats: np.ndarray) -> np.ndarray:
        """Real-valued decision scores for pre-mapped features."""

    # ------------------------------------------------------------------
    def train(
        self,
        challenges: np.ndarray,
        responses: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "GradientAttack":
        """Fit on +/-1 CRPs under the declared representation."""
        rng = np.random.default_rng() if rng is None else rng
        feats = self.feature_map(challenges)
        self._result = self._fit(
            feats, np.asarray(responses, dtype=np.float64), rng
        )
        return self

    def predict(self, challenges: np.ndarray) -> np.ndarray:
        """+/-1 predictions (int8) for a challenge matrix."""
        if self._result is None:
            raise RuntimeError("attacker is not trained; call train() first")
        scores = self._score(self.feature_map(challenges))
        return np.where(scores >= 0, 1, -1).astype(np.int8)

    def accuracy(self, challenges: np.ndarray, responses: np.ndarray) -> float:
        """Fraction of challenges predicted correctly."""
        responses = np.asarray(responses)
        return float(np.mean(self.predict(challenges) == responses))


class LRAttacker(GradientAttack):
    """Logistic-regression attack; proper product-of-margins for k >= 2.

    ``k`` is the attacker's hypothesis-class guess: 1 fits a single LTF
    (:class:`LogisticAttack`), >= 2 fits the Rührmair product of k
    linear margins (:class:`XorLogisticAttack`).  A deliberately wrong
    ``k`` is how the atlas realises the wrong-hypothesis-class pitfall.
    """

    name = "lr"

    def __init__(
        self,
        representation: str = "parity",
        k: int = 1,
        restarts: int = 4,
        max_iter: int = 200,
        l2: float = 1e-5,
    ) -> None:
        super().__init__(representation)
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        self.restarts = restarts
        self.max_iter = max_iter
        self.l2 = l2

    def _fit(self, feats, responses, rng):
        if self.k == 1:
            return LogisticAttack(l2=self.l2, max_iter=self.max_iter).fit(
                feats, responses, rng
            )
        return XorLogisticAttack(
            self.k, restarts=self.restarts, max_iter=self.max_iter, l2=self.l2
        ).fit(feats, responses, rng)

    def _score(self, feats):
        if self.k == 1:
            weights = self._result.ltf.weights
            return feats @ weights - self._result.ltf.threshold
        return self._result.margin(feats)


class MLPAttacker(GradientAttack):
    """One-hidden-layer MLP attack (the DL modelling-attack stand-in)."""

    name = "mlp"

    def __init__(
        self,
        representation: str = "parity",
        hidden: int = 24,
        epochs: int = 40,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        l2: float = 1e-5,
    ) -> None:
        super().__init__(representation)
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2

    def _fit(self, feats, responses, rng):
        return MLPAttack(
            hidden=self.hidden,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            l2=self.l2,
        ).fit(feats, responses, rng)

    def _score(self, feats):
        return self._result.score(feats)


#: Attacker name -> class; the registry ``make_attacker`` resolves.
ATTACKERS: Dict[str, Type[GradientAttack]] = {
    LRAttacker.name: LRAttacker,
    MLPAttacker.name: MLPAttacker,
}

#: The gradient-attacker names, in registry order.
ATTACKER_NAMES: Tuple[str, ...] = tuple(ATTACKERS)


def make_attacker(
    name: str, representation: str = "parity", **options
) -> GradientAttack:
    """Construct a registered attacker by name.

    ``options`` are forwarded to the attacker's constructor, so the
    sweep layer can tune learner budgets (epochs, restarts, ...) without
    knowing which learner it is configuring.
    """
    if name not in ATTACKERS:
        raise ValueError(
            f"unknown attacker {name!r}; expected one of {ATTACKER_NAMES}"
        )
    return ATTACKERS[name](representation=representation, **options)

"""Machine-learning algorithms, implemented from scratch.

Each learner corresponds to a row of the paper's adversary-model taxonomy:

================  =====================  ==========================  ==========
Learner           Distribution           Access                      Hypothesis
================  =====================  ==========================  ==========
Perceptron        arbitrary (online)     random examples             proper (LTF)
LogisticAttack    arbitrary              random examples             proper (LTF)
ChowLearner       uniform                random examples             proper (LTF)
LMNLearner        uniform                random examples             improper
LearnPoly         uniform                membership queries          improper
LStarLearner      exact                  membership + equivalence    DFA
================  =====================  ==========================  ==========

All example-based learners consume +/-1 challenge matrices and +/-1 labels;
oracles live in :mod:`repro.learning.oracles`.
"""

from repro.learning.oracles import (
    ExampleOracle,
    MembershipOracle,
    QueryBudgetExceeded,
    SimulatedEquivalenceOracle,
    angluin_eq_sample_size,
)
from repro.learning.active import (
    STRATEGY_NAMES,
    ActiveRunResult,
    CommitteeStrategy,
    FastSlowStrategy,
    PassiveStrategy,
    Trajectory,
    UncertaintyStrategy,
    collect_trajectory,
    evaluate_trajectory,
    make_strategy,
    run_active_attack,
)
from repro.learning.metrics import accuracy, error_rate, evaluate_hypothesis
from repro.learning.perceptron import Perceptron, PerceptronResult
from repro.learning.logistic import LogisticAttack, LogisticResult
from repro.learning.lmn import LMNLearner, LMNResult
from repro.learning.chow import ChowLearner, ChowResult
from repro.learning.learn_poly import LearnPoly, LearnPolyResult
from repro.learning.angluin import LStarLearner, LStarResult
from repro.learning.boosting import AdaBoost, AdaBoostResult
from repro.learning.evolution import ESResult, EvolutionStrategiesAttack
from repro.learning.interpose_attack import (
    InterposeAttackResult,
    InterposeSplittingAttack,
    attack_interpose_puf,
)
from repro.learning.kushilevitz_mansour import KushilevitzMansour, KMResult
from repro.learning.mlp import MLPAttack, MLPResult
from repro.learning.gradient_attack import (
    ATTACKER_NAMES,
    REPRESENTATION_NAMES,
    GradientAttack,
    LRAttacker,
    MLPAttacker,
    make_attacker,
)
from repro.learning.reliability_attack import (
    CMAReliabilityAttack,
    MultiReliabilityResult,
    ReliabilityAttack,
    ReliabilityAttackResult,
)
from repro.learning.statistical_query import SQChowLearner, SQChowResult, SQOracle
from repro.learning.xor_logistic import XorLogisticAttack, XorLogisticResult

__all__ = [
    "STRATEGY_NAMES",
    "ActiveRunResult",
    "CommitteeStrategy",
    "FastSlowStrategy",
    "PassiveStrategy",
    "Trajectory",
    "UncertaintyStrategy",
    "collect_trajectory",
    "evaluate_trajectory",
    "make_strategy",
    "run_active_attack",
    "ExampleOracle",
    "MembershipOracle",
    "QueryBudgetExceeded",
    "SimulatedEquivalenceOracle",
    "angluin_eq_sample_size",
    "accuracy",
    "error_rate",
    "evaluate_hypothesis",
    "Perceptron",
    "PerceptronResult",
    "LogisticAttack",
    "LogisticResult",
    "LMNLearner",
    "LMNResult",
    "ChowLearner",
    "ChowResult",
    "LearnPoly",
    "LearnPolyResult",
    "LStarLearner",
    "LStarResult",
    "AdaBoost",
    "AdaBoostResult",
    "EvolutionStrategiesAttack",
    "ESResult",
    "InterposeSplittingAttack",
    "InterposeAttackResult",
    "attack_interpose_puf",
    "KushilevitzMansour",
    "KMResult",
    "MLPAttack",
    "MLPResult",
    "XorLogisticAttack",
    "XorLogisticResult",
    "SQOracle",
    "SQChowLearner",
    "SQChowResult",
    "ReliabilityAttack",
    "ReliabilityAttackResult",
    "CMAReliabilityAttack",
    "MultiReliabilityResult",
    "ATTACKER_NAMES",
    "REPRESENTATION_NAMES",
    "GradientAttack",
    "LRAttacker",
    "MLPAttacker",
    "make_attacker",
]

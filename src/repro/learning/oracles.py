"""Attacker access models as oracle objects (Section IV of the paper).

The paper's second pitfall axis is *what the attacker may ask*:

* :class:`ExampleOracle` — labelled examples drawn from a distribution D
  (the passive, known-plaintext-like setting).  The distribution is a
  constructor argument because "random examples" in the LL literature
  silently means *uniform* (Section III).
* :class:`MembershipOracle` — the attacker picks the challenge (the
  chosen-plaintext-like setting); query counting built in.
* :class:`SimulatedEquivalenceOracle` — Angluin's observation [22] that an
  equivalence query can be simulated by testing the hypothesis on random
  examples: if m >= (1/eps)(ln(1/delta) + i ln 2) examples agree at round
  i, accept.  This is why "EQ is unrealistic for hardware" is not a valid
  objection (Section IV).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.pufs.crp import ChallengeSampler, uniform_challenges

Target = Callable[[np.ndarray], np.ndarray]


class ExampleOracle:
    """Draws labelled examples (x, f(x)) with x ~ D.

    Parameters
    ----------
    n:
        Challenge length.
    target:
        The unknown function (vectorised, +/-1 in and out).
    rng:
        Randomness for the draws.
    sampler:
        The distribution D; defaults to uniform.
    noise_rate:
        Classification-noise rate: each label is flipped independently with
        this probability (the "attribute noise" surrogate used in noise-
        tolerance tests).
    """

    def __init__(
        self,
        n: int,
        target: Target,
        rng: Optional[np.random.Generator] = None,
        sampler: ChallengeSampler = uniform_challenges,
        noise_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= noise_rate < 0.5:
            raise ValueError("noise_rate must be in [0, 0.5)")
        self.n = n
        self.target = target
        self.rng = np.random.default_rng() if rng is None else rng
        self.sampler = sampler
        self.noise_rate = noise_rate
        self.examples_drawn = 0

    def draw(self, m: int) -> Tuple[np.ndarray, np.ndarray]:
        """``m`` fresh labelled examples."""
        if m <= 0:
            raise ValueError("example count must be positive")
        x = self.sampler(m, self.n, self.rng)
        y = np.asarray(self.target(x), dtype=np.int8)
        if self.noise_rate > 0:
            flips = self.rng.random(m) < self.noise_rate
            y = np.where(flips, -y, y).astype(np.int8)
        self.examples_drawn += m
        return x, y


class MembershipOracle:
    """Answers f(x) on attacker-chosen challenges, with query accounting."""

    def __init__(
        self,
        n: int,
        target: Target,
        max_queries: Optional[int] = None,
    ) -> None:
        self.n = n
        self.target = target
        self.max_queries = max_queries
        self.queries_made = 0

    def query(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the target on the given challenge rows."""
        x = np.asarray(x)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n:
            raise ValueError(f"expected width {self.n}, got {x.shape[1]}")
        self.queries_made += x.shape[0]
        if self.max_queries is not None and self.queries_made > self.max_queries:
            raise RuntimeError(
                f"membership query budget of {self.max_queries} exhausted"
            )
        return np.asarray(self.target(x), dtype=np.int8)

    def query_one(self, x: np.ndarray) -> int:
        """Single-point convenience wrapper."""
        return int(self.query(np.asarray(x)[None, :])[0])


def angluin_eq_sample_size(eps: float, delta: float, round_index: int) -> int:
    """Sample size for the i-th simulated equivalence query.

    From Angluin [22]: testing the i-th hypothesis on
    ``ceil((1/eps)(ln(1/delta) + (i+1) ln 2))`` random examples keeps the
    total failure probability below delta while guaranteeing every accepted
    hypothesis is an eps-approximator.
    """
    if not 0 < eps < 1 or not 0 < delta < 1:
        raise ValueError("eps and delta must be in (0, 1)")
    if round_index < 0:
        raise ValueError("round_index must be non-negative")
    return math.ceil((1.0 / eps) * (math.log(1.0 / delta) + (round_index + 1) * math.log(2.0)))


class SimulatedEquivalenceOracle:
    """Equivalence queries simulated with random examples (Angluin [22]).

    Each call to :meth:`query` tests the hypothesis on a fresh sample whose
    size grows logarithmically with the round number; a disagreement is
    returned as a counterexample, otherwise the hypothesis is accepted as
    an eps-approximator.
    """

    def __init__(
        self,
        n: int,
        target: Target,
        eps: float,
        delta: float,
        rng: Optional[np.random.Generator] = None,
        sampler: ChallengeSampler = uniform_challenges,
    ) -> None:
        self.n = n
        self.target = target
        self.eps = eps
        self.delta = delta
        self.rng = np.random.default_rng() if rng is None else rng
        self.sampler = sampler
        self.round = 0
        self.examples_used = 0

    def query(self, hypothesis: Target) -> Optional[np.ndarray]:
        """A counterexample row where hypothesis != target, or None (accept)."""
        m = angluin_eq_sample_size(self.eps, self.delta, self.round)
        self.round += 1
        x = self.sampler(m, self.n, self.rng)
        self.examples_used += m
        y_target = np.asarray(self.target(x), dtype=np.int8)
        y_hyp = np.asarray(hypothesis(x), dtype=np.int8)
        disagree = np.nonzero(y_target != y_hyp)[0]
        if disagree.size:
            return x[disagree[0]]
        return None

"""Attacker access models as oracle objects (Section IV of the paper).

The paper's second pitfall axis is *what the attacker may ask*:

* :class:`ExampleOracle` — labelled examples drawn from a distribution D
  (the passive, known-plaintext-like setting).  The distribution is a
  constructor argument because "random examples" in the LL literature
  silently means *uniform* (Section III).
* :class:`MembershipOracle` — the attacker picks the challenge (the
  chosen-plaintext-like setting); query counting built in.
* :class:`SimulatedEquivalenceOracle` — Angluin's observation [22] that an
  equivalence query can be simulated by testing the hypothesis on random
  examples: if m >= (1/eps)(ln(1/delta) + i ln 2) examples agree at round
  i, accept.  This is why "EQ is unrealistic for hardware" is not a valid
  objection (Section IV).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.pufs.crp import ChallengeSampler, uniform_challenges
from repro.telemetry import meter as _meter

Target = Callable[[np.ndarray], np.ndarray]


class QueryBudgetExceeded(RuntimeError):
    """An oracle's query budget is exhausted.

    Budget semantics (shared by every oracle here): the counter reflects
    every query *asked*, including the batch that blew the budget, but no
    answers from that batch are returned — an over-budget request fails
    loudly instead of silently truncating or recycling earlier examples.
    A subclass of ``RuntimeError`` for backward compatibility with callers
    that catch the generic exception.
    """


class ExampleOracle:
    """Draws labelled examples (x, f(x)) with x ~ D.

    Parameters
    ----------
    n:
        Challenge length.
    target:
        The unknown function (vectorised, +/-1 in and out).
    rng:
        Randomness for the draws.
    sampler:
        The distribution D; defaults to uniform.
    noise_rate:
        Classification-noise rate: each label is flipped independently with
        this probability (the "attribute noise" surrogate used in noise-
        tolerance tests).
    max_examples:
        Optional example budget.  A draw that would push
        ``examples_drawn`` past it raises :class:`QueryBudgetExceeded`
        *after* counting the refused batch and returns nothing — examples
        are never silently recycled or truncated to fit the budget.
    """

    def __init__(
        self,
        n: int,
        target: Target,
        rng: Optional[np.random.Generator] = None,
        sampler: ChallengeSampler = uniform_challenges,
        noise_rate: float = 0.0,
        max_examples: Optional[int] = None,
    ) -> None:
        if not 0.0 <= noise_rate < 0.5:
            raise ValueError("noise_rate must be in [0, 0.5)")
        if max_examples is not None and max_examples < 1:
            raise ValueError("max_examples must be positive when given")
        self.n = n
        self.target = target
        self.rng = np.random.default_rng() if rng is None else rng
        self.sampler = sampler
        self.noise_rate = noise_rate
        self.max_examples = max_examples
        self.examples_drawn = 0

    def draw(self, m: int) -> Tuple[np.ndarray, np.ndarray]:
        """``m`` fresh labelled examples (counts toward the EX budget)."""
        if m <= 0:
            raise ValueError("example count must be positive")
        self.examples_drawn += m
        if self.max_examples is not None and self.examples_drawn > self.max_examples:
            raise QueryBudgetExceeded(
                f"example budget of {self.max_examples} exhausted "
                f"({self.examples_drawn} drawn including this refused batch)"
            )
        x = self.sampler(m, self.n, self.rng)
        y = np.asarray(self.target(x), dtype=np.int8)
        if self.noise_rate > 0:
            flips = self.rng.random(m) < self.noise_rate
            y = np.where(flips, -y, y).astype(np.int8)
        _meter.record(
            "ex", queries=m, examples=m, challenges=x, response_bytes=y.nbytes
        )
        return x, y


class MembershipOracle:
    """Answers f(x) on attacker-chosen challenges, with query accounting.

    Budget semantics: ``queries_made`` counts every challenge row asked,
    including a batch that exceeds ``max_queries``; that batch raises
    :class:`QueryBudgetExceeded` and its answers are withheld.  The
    budget is therefore a hard cap on *answers*, while the counter stays
    an honest record of everything the attacker attempted.
    """

    def __init__(
        self,
        n: int,
        target: Target,
        max_queries: Optional[int] = None,
    ) -> None:
        self.n = n
        self.target = target
        self.max_queries = max_queries
        self.queries_made = 0

    def query(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the target on the given challenge rows."""
        x = np.asarray(x)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n:
            raise ValueError(f"expected width {self.n}, got {x.shape[1]}")
        self.queries_made += x.shape[0]
        if self.max_queries is not None and self.queries_made > self.max_queries:
            raise QueryBudgetExceeded(
                f"membership query budget of {self.max_queries} exhausted"
            )
        y = np.asarray(self.target(x), dtype=np.int8)
        _meter.record(
            "mq",
            queries=x.shape[0],
            challenges=x,
            response_bytes=y.nbytes,
        )
        return y

    def query_one(self, x: np.ndarray) -> int:
        """Single-point convenience wrapper."""
        return int(self.query(np.asarray(x)[None, :])[0])


def angluin_eq_sample_size(eps: float, delta: float, round_index: int) -> int:
    """Sample size for the i-th simulated equivalence query.

    From Angluin [22]: testing the i-th hypothesis on
    ``ceil((1/eps)(ln(1/delta) + (i+1) ln 2))`` random examples keeps the
    total failure probability below delta while guaranteeing every accepted
    hypothesis is an eps-approximator.
    """
    if not 0 < eps < 1 or not 0 < delta < 1:
        raise ValueError("eps and delta must be in (0, 1)")
    if round_index < 0:
        raise ValueError("round_index must be non-negative")
    return math.ceil((1.0 / eps) * (math.log(1.0 / delta) + (round_index + 1) * math.log(2.0)))


class SimulatedEquivalenceOracle:
    """Equivalence queries simulated with random examples (Angluin [22]).

    Each call to :meth:`query` tests the hypothesis on a fresh sample whose
    size grows logarithmically with the round number; a disagreement is
    returned as a counterexample, otherwise the hypothesis is accepted as
    an eps-approximator.

    Budget semantics match the other oracles: with ``max_rounds`` set, the
    over-budget call is still counted in ``round`` before
    :class:`QueryBudgetExceeded` is raised, and no sample is drawn for it.
    """

    def __init__(
        self,
        n: int,
        target: Target,
        eps: float,
        delta: float,
        rng: Optional[np.random.Generator] = None,
        sampler: ChallengeSampler = uniform_challenges,
        max_rounds: Optional[int] = None,
    ) -> None:
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be positive when given")
        self.n = n
        self.target = target
        self.eps = eps
        self.delta = delta
        self.rng = np.random.default_rng() if rng is None else rng
        self.sampler = sampler
        self.max_rounds = max_rounds
        self.round = 0
        self.examples_used = 0

    def query(self, hypothesis: Target) -> Optional[np.ndarray]:
        """A counterexample row where hypothesis != target, or None (accept)."""
        m = angluin_eq_sample_size(self.eps, self.delta, self.round)
        self.round += 1
        if self.max_rounds is not None and self.round > self.max_rounds:
            raise QueryBudgetExceeded(
                f"equivalence query budget of {self.max_rounds} rounds exhausted"
            )
        x = self.sampler(m, self.n, self.rng)
        self.examples_used += m
        y_target = np.asarray(self.target(x), dtype=np.int8)
        y_hyp = np.asarray(hypothesis(x), dtype=np.int8)
        _meter.record(
            "eq",
            queries=1,
            examples=m,
            challenges=x,
            response_bytes=y_target.nbytes,
        )
        disagree = np.nonzero(y_target != y_hyp)[0]
        if disagree.size:
            return x[disagree[0]]
        return None

"""Ledger aggregation: measured query counts vs the Table I predictions.

``python -m repro report runs/<run_id>`` reads a run directory written by
:class:`~repro.runtime.runner.TrialRunner` (via
:class:`~repro.telemetry.ledger.RunLedger`), sums the per-trial query
meters, and compares each workload's *measured* per-trial query count
against the *predicted* budget from :mod:`repro.pac.bounds` — the
empirical closing of the loop the paper asks for: a bound that is never
checked against what an attack actually spent is just a formula.

Each workload maps to one adversary setting:

===========  ======  ==================================================
workload     kind    bound checked (per trial)
===========  ======  ==================================================
``curve``    ex      ``general_vc_bound(n, k)`` — Table I row 2
``lmn``      ex      ``lmn_sample_size(n, degree)`` — the Corollary 1
                     algorithm's concrete Hoeffding+union sample size
``km``       mq      ``km_query_bound(...)`` — the poly(n, 1/theta)
                     membership-query budget (access-model row)
``sq``       sq      ``sq_chow_query_count(n)`` = n + 1, exactly
===========  ======  ==================================================

The report renders to markdown (``report.md``) and JSON (``report.json``)
inside the run directory; a measured count above its bound makes
:func:`generate_report` flag the run (non-zero CLI exit).
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.telemetry.ledger import RunLedger

#: workload -> the query kind its bound is stated in.
WORKLOAD_KIND = {
    "curve": "ex",
    "lmn": "ex",
    "km": "mq",
    "sq": "sq",
    "active": "mq",
    "atlas": "ex",
}


@dataclasses.dataclass
class BoundCheck:
    """One measured-vs-predicted comparison for a run."""

    workload: str
    kind: str
    label: str
    measured_mean: float
    measured_max: float
    bound: float
    within: bool

    @property
    def ratio(self) -> float:
        """measured_max / bound (the headroom; > 1 means a violation)."""
        if not math.isfinite(self.bound) or self.bound <= 0:
            return 0.0
        return self.measured_max / self.bound

    def as_dict(self) -> Dict[str, object]:
        """The JSON form, with the derived ``ratio`` included."""
        record = dataclasses.asdict(self)
        record["ratio"] = self.ratio
        return record


def _kind_stats(records: List[dict], kind: str, field: str = "queries") -> Dict[str, float]:
    """Per-trial mean/max/total of one kind's counter across records."""
    values = []
    for record in records:
        telemetry = record.get("telemetry") or {}
        queries = (telemetry.get("queries") or {}).get("queries") or {}
        values.append(float((queries.get(kind) or {}).get(field, 0)))
    if not values:
        return {"mean": 0.0, "max": 0.0, "total": 0.0}
    return {
        "mean": float(np.mean(values)),
        "max": float(np.max(values)),
        "total": float(np.sum(values)),
    }


def _bound_checks(meta: dict, records: List[dict]) -> List[BoundCheck]:
    """The workload's measured-vs-bound comparisons (empty when unknown)."""
    from repro.pac import PACParameters
    from repro.pac.bounds import (
        general_vc_bound,
        km_query_bound,
        sq_chow_example_bound,
        sq_chow_query_count,
    )

    workload = meta.get("workload")
    spec = meta.get("spec") or {}
    params = PACParameters(
        eps=float(meta.get("eps", 0.05)), delta=float(meta.get("delta", 0.05))
    )
    checks: List[BoundCheck] = []

    def add(kind: str, label: str, bound: float, field: str = "queries") -> None:
        stats = _kind_stats(records, kind, field)
        checks.append(
            BoundCheck(
                workload=workload,
                kind=kind,
                label=label,
                measured_mean=stats["mean"],
                measured_max=stats["max"],
                bound=float(bound),
                within=stats["max"] <= bound,
            )
        )

    if workload == "curve":
        bound = general_vc_bound(int(spec["n"]), int(spec["k"]), params)
        add("ex", "Table I row 2: general VC bound (uniform examples)", bound)
    elif workload == "active":
        # The passive sample-complexity ceiling is the bar an adaptive
        # strategy must stay under to claim a query saving: both the
        # metered membership queries (adaptive strategies) and any EX
        # draws (the passive baseline strategy) are checked against it.
        bound = general_vc_bound(int(spec["n"]), int(spec["k"]), params)
        add(
            "mq",
            "Table I row 2 ceiling: adaptive MQ budget vs passive VC bound",
            bound,
        )
        add(
            "ex",
            "Table I row 2: general VC bound (passive baseline strategy)",
            bound,
        )
    elif workload == "lmn":
        from repro.learning.lmn import lmn_sample_size

        bound = lmn_sample_size(
            int(spec["n"]), int(spec["degree"]), params.eps, params.delta
        )
        add("ex", "Corollary 1: LMN concrete sample size (uniform examples)", bound)
    elif workload == "km":
        bound = km_query_bound(
            int(spec["n"]) + 1,
            float(spec["theta"]),
            int(spec["bucket_samples"]),
            int(spec["coefficient_samples"]),
        )
        add("mq", "KM membership-query budget, poly(n, 1/theta)", bound)
    elif workload == "atlas":
        # Every atlas cell spends at most its declared budget: m examples
        # for gradient cells, m x repetitions noisy measurements for
        # reliability cells.  The grid-wide ceiling is the largest budget
        # times the repetition count — a trial above it means a learner
        # queried outside its cell's declared spend.
        budgets = [int(b) for b in (spec.get("budgets") or [0])]
        ceiling = max(budgets) * int(spec.get("repetitions", 1) or 1)
        add(
            "ex",
            "atlas grid ceiling: per-trial EX <= max budget x repetitions",
            ceiling,
        )
    elif workload == "sq":
        n = int(spec["n"])
        add("sq", "SQ Chow: n + 1 correlational queries (exact)", sq_chow_query_count(n))
        if spec.get("mode", "sampling") == "sampling":
            add(
                "sq",
                "SQ Chow: sampling-oracle example cost (exact)",
                sq_chow_example_bound(n, float(spec["tau"])),
                field="examples",
            )
    return checks


def _reliability_stats(records: List[dict]) -> Dict[str, object]:
    """Failure/retry/resume accounting across trial records.

    ``attempts_total`` counts executions including retries; a run with no
    infrastructure trouble has ``attempts_total == trials`` and zeros
    everywhere else.
    """
    stats = {
        "trials": len(records),
        "ok": 0,
        "trial_errors": 0,
        "timeouts": 0,
        "infra_failures": 0,
        "retried_trials": 0,
        "attempts_total": 0,
    }
    error_samples: List[str] = []
    for record in records:
        attempts = int(record.get("attempts", 1))
        stats["attempts_total"] += attempts
        if attempts > 1:
            stats["retried_trials"] += 1
        error = record.get("error")
        if not error:
            stats["ok"] += 1
            continue
        category = error.get("category", "trial")
        if category == "timeout":
            stats["timeouts"] += 1
        elif category == "infra":
            stats["infra_failures"] += 1
        else:
            stats["trial_errors"] += 1
        if len(error_samples) < 5:
            error_samples.append(
                f"trial {record.get('index')}: {error.get('exc_type')} "
                f"({category}): {error.get('message', '')}"
            )
    stats["error_samples"] = error_samples
    return stats


def _timing_stats(records: List[dict]) -> Dict[str, float]:
    """Aggregate wall/CPU/queue-wait timings across trial records."""
    def col(name: str) -> List[float]:
        return [float(r.get(name, 0.0)) for r in records]

    seconds = col("seconds")
    return {
        "trials": len(records),
        "wall_mean_s": float(np.mean(seconds)) if seconds else 0.0,
        "wall_max_s": float(np.max(seconds)) if seconds else 0.0,
        "cpu_total_s": float(np.sum(col("cpu_seconds"))),
        "queue_wait_mean_s": float(np.mean(col("queue_wait"))) if records else 0.0,
    }


def _merge_spans(records: List[dict]) -> Dict[str, Dict[str, float]]:
    """Sum per-name span aggregates across all trial records."""
    merged: Dict[str, Dict[str, float]] = {}
    for record in records:
        spans = (record.get("telemetry") or {}).get("spans") or {}
        for name, agg in spans.items():
            out = merged.setdefault(name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
            out["count"] += agg.get("count", 0)
            out["wall_s"] += agg.get("wall_s", 0.0)
            out["cpu_s"] += agg.get("cpu_s", 0.0)
    return merged


def _merge_counters(records: List[dict]) -> Dict[str, int]:
    """Sum free-form counters (cache hits/misses, ...) across records."""
    merged: Dict[str, int] = {}
    for record in records:
        counters = ((record.get("telemetry") or {}).get("queries") or {}).get(
            "counters"
        ) or {}
        for name, amount in counters.items():
            merged[name] = merged.get(name, 0) + int(amount)
    return merged


def build_report(run_dir: Union[str, Path]) -> Dict[str, object]:
    """Aggregate a run directory into the serialisable report payload.

    Uses the *latest* record per trial index: a resumed or retried run
    appends fresh records after the originals, and counting both would
    double-bill queries the adversary only spent once.
    """
    ledger = RunLedger.open_existing(run_dir)
    latest = ledger.read_latest()
    records = [latest[index] for index in sorted(latest)]
    meta = ledger.read_meta() or {}
    checks = _bound_checks(meta, records)

    query_stats = {
        kind: {
            "queries": _kind_stats(records, kind, "queries"),
            "examples": _kind_stats(records, kind, "examples"),
        }
        for kind in ("ex", "mq", "eq", "sq")
    }
    distinct = sum(
        int(((r.get("telemetry") or {}).get("queries") or {}).get("distinct_challenges", 0))
        for r in records
    )
    repeated = sum(
        int(((r.get("telemetry") or {}).get("queries") or {}).get("repeated_challenges", 0))
        for r in records
    )
    crp_bytes = sum(
        int(((r.get("telemetry") or {}).get("queries") or {}).get("crp_bytes", 0))
        for r in records
    )
    return {
        "run_id": ledger.run_id,
        "meta": meta,
        "trials": len(records),
        "bound_checks": [c.as_dict() for c in checks],
        "all_within_bounds": all(c.within for c in checks),
        "query_stats": query_stats,
        "distinct_challenges": distinct,
        "repeated_challenges": repeated,
        "crp_bytes": crp_bytes,
        "timings": _timing_stats(records),
        "reliability": _reliability_stats(records),
        "spans": _merge_spans(records),
        "counters": _merge_counters(records),
    }


def _fmt(value: float) -> str:
    """Compact numeric formatting for the markdown tables."""
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
        return f"{value:.3g}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:,.1f}"


def render_markdown(report: Dict[str, object]) -> str:
    """The human-readable face of :func:`build_report`."""
    meta = report.get("meta") or {}
    lines = [
        f"# Query-accounting report — `{report['run_id']}`",
        "",
        f"workload `{meta.get('workload', '?')}`, {report['trials']} trials, "
        f"workers {meta.get('workers', '?')}, master seed {meta.get('master_seed', '?')}, "
        f"eps {meta.get('eps', '?')}, delta {meta.get('delta', '?')}",
        "",
        "## Measured queries vs. `pac.bounds` predictions (per trial)",
        "",
    ]
    checks = report.get("bound_checks") or []
    if checks:
        lines += [
            "| adversary setting | kind | measured mean | measured max | bound | measured/bound | within |",
            "|---|---|---:|---:|---:|---:|---|",
        ]
        for c in checks:
            lines.append(
                f"| {c['label']} | {c['kind'].upper()} | {_fmt(c['measured_mean'])} "
                f"| {_fmt(c['measured_max'])} | {_fmt(c['bound'])} "
                f"| {c['ratio']:.3g} | {'yes' if c['within'] else '**NO**'} |"
            )
        lines.append("")
        if report.get("all_within_bounds"):
            lines.append(
                "All measured query counts are within their predicted budgets."
            )
        else:
            lines.append(
                "**BOUND VIOLATION**: at least one measured count exceeds its "
                "predicted budget — the implementation spends more queries "
                "than the adversary model it claims to run under."
            )
    else:
        lines.append(
            f"_no bound mapping for workload `{meta.get('workload', '?')}`_"
        )
    lines += ["", "## Query totals (all trials)", ""]
    lines += [
        "| kind | queries | examples |",
        "|---|---:|---:|",
    ]
    for kind in ("ex", "mq", "eq", "sq"):
        stats = report["query_stats"][kind]
        lines.append(
            f"| {kind.upper()} | {_fmt(stats['queries']['total'])} "
            f"| {_fmt(stats['examples']['total'])} |"
        )
    lines += [
        "",
        f"distinct challenges {_fmt(report['distinct_challenges'])}, "
        f"repeated {_fmt(report['repeated_challenges'])}, "
        f"CRP payload {_fmt(report['crp_bytes'])} bytes",
        "",
        "## Timings",
        "",
    ]
    t = report["timings"]
    lines.append(
        f"per-trial wall mean {t['wall_mean_s']:.3f}s (max {t['wall_max_s']:.3f}s), "
        f"CPU total {t['cpu_total_s']:.2f}s, "
        f"queue wait mean {t['queue_wait_mean_s']:.3f}s"
    )
    rel = report.get("reliability")
    if rel:
        lines += ["", "## Reliability", ""]
        lines.append(
            f"{rel['ok']} of {rel['trials']} trials completed clean; "
            f"{rel['trial_errors']} trial error(s), "
            f"{rel['timeouts']} timeout(s), "
            f"{rel['infra_failures']} infrastructure failure(s); "
            f"{rel['retried_trials']} trial(s) retried "
            f"({rel['attempts_total']} execution attempts total)"
        )
        for sample in rel.get("error_samples", []):
            lines.append(f"* `{sample}`")
    spans = report.get("spans") or {}
    if spans:
        lines += ["", "## Spans (summed over trials)", "",
                  "| span | count | wall [s] | cpu [s] |", "|---|---:|---:|---:|"]
        for name in sorted(spans, key=lambda n: -spans[n]["wall_s"]):
            agg = spans[name]
            lines.append(
                f"| {name} | {agg['count']} | {agg['wall_s']:.3f} | {agg['cpu_s']:.3f} |"
            )
    counters = report.get("counters") or {}
    if counters:
        lines += ["", "## Counters", ""]
        for name in sorted(counters):
            lines.append(f"* `{name}` = {counters[name]}")
    return "\n".join(lines) + "\n"


def generate_report(
    run_dir: Union[str, Path], write: bool = True
) -> "tuple[Dict[str, object], str]":
    """Build, render, and (optionally) persist a run's report.

    Writes ``report.json`` and ``report.md`` next to the ledger when
    ``write`` is true.  Returns ``(payload, markdown)``; callers should
    treat ``payload["all_within_bounds"] == False`` as a failure.
    """
    run_dir = Path(run_dir)
    payload = build_report(run_dir)
    markdown = render_markdown(payload)
    if write:
        (run_dir / "report.json").write_text(
            json.dumps(payload, sort_keys=True, indent=2, default=str) + "\n"
        )
        (run_dir / "report.md").write_text(markdown)
    return payload, markdown

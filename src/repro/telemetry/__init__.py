"""Observability for the reproduction: query accounting, spans, ledgers.

The paper's argument is that an attack result is only meaningful next to
its adversary model — sample counts, query budgets, representation.  This
package is that argument turned into instrumentation:

* :mod:`repro.telemetry.meter` — :class:`QueryMeter` counts EX/MQ/EQ/SQ
  queries, distinct vs repeated challenges, and bytes of CRP data; oracles
  and learners report into the ambient meter installed with
  :func:`metered` (suspend with :func:`unmetered` for test-set draws).
* :mod:`repro.telemetry.spans` — :func:`trace` timing spans with wall/CPU
  time and nesting, recorded per trial by the runtime.
* :mod:`repro.telemetry.ledger` — :class:`RunLedger`, the JSONL per-trial
  record sink under ``runs/<run_id>/``.
* :mod:`repro.telemetry.report` — aggregates a ledger and checks measured
  query counts against the :mod:`repro.pac.bounds` predictions
  (``python -m repro report runs/<run_id>``).

Everything here is stdlib + numpy; instrumented hot paths pay one
context-variable read when telemetry is off (asserted < 5% overhead by
``benchmarks/test_telemetry_overhead.py``).
"""

from repro.telemetry.ledger import RunLedger, new_run_id
from repro.telemetry.meter import (
    QUERY_KINDS,
    KindCounter,
    QueryMeter,
    current_meter,
    incr,
    metered,
    record,
    unmetered,
)
from repro.telemetry.spans import (
    Span,
    SpanRecorder,
    current_recorder,
    recording,
    trace,
)

__all__ = [
    "RunLedger",
    "new_run_id",
    "QUERY_KINDS",
    "KindCounter",
    "QueryMeter",
    "current_meter",
    "incr",
    "metered",
    "record",
    "unmetered",
    "Span",
    "SpanRecorder",
    "current_recorder",
    "recording",
    "trace",
]

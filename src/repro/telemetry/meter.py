"""Query accounting: how many questions did the adversary actually ask?

The paper's thesis is that an attack result is meaningless without the
adversary model it was obtained under — and the *measured* counterpart of
a Table I bound is the number of EX/MQ/EQ/SQ calls a trial really spent.
This module supplies that measurement: a :class:`QueryMeter` accumulates
per-kind query counts, distinct-vs-repeated challenge statistics, and the
bytes of CRP data the attacker saw, and an ambient (context-variable)
installation point lets oracles and learners report into the meter of
whatever trial happens to be running, without threading a handle through
every signature.

Query kinds
-----------
``"ex"``
    Labelled examples drawn from a distribution (the passive setting):
    :class:`repro.learning.oracles.ExampleOracle` draws and the CRP
    generators in :mod:`repro.pufs.crp` / :mod:`repro.runtime.chunking`.
``"mq"``
    Membership queries on attacker-chosen challenges:
    :class:`repro.learning.oracles.MembershipOracle`, the internal query
    paths of Kushilevitz-Mansour and LearnPoly.
``"eq"``
    (Simulated) equivalence queries; ``queries`` counts rounds and
    ``examples`` the random examples the Angluin simulation consumed.
``"sq"``
    Statistical queries (:class:`repro.learning.statistical_query.SQOracle`);
    ``examples`` counts the sample cost of ``"sampling"``-mode answers.

Meters chain: ``QueryMeter(parent=current_meter())`` forwards every record
to the ambient meter as well, so a learner can expose a per-fit snapshot
on its result while the surrounding trial still sees the full total.

Usage::

    with metered() as meter:
        oracle.draw(1000)             # recorded automatically
    meter.snapshot()["queries"]["ex"]["queries"]   # -> 1000

``record`` / ``incr`` are no-ops when no meter is installed, so
instrumented code pays one context-variable read on the cold path.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
from typing import Dict, Iterator, Optional

import numpy as np

#: The query kinds a meter tracks, in report order.
QUERY_KINDS = ("ex", "mq", "eq", "sq")

#: Rows beyond which distinct-challenge tracking stops (memory guard).
DEFAULT_DISTINCT_CAP = 1 << 21


def _row_keys(rows: np.ndarray):
    """One hashable key per challenge row.

    Rows of width <= 64 pack into uint64 bitmasks (vectorised; exact for
    any fixed alphabet since repro challenges are +/-1, or 0/1 in the F2
    learners — a single trial never mixes the two conventions).  Wider
    rows fall back to per-row bytes.
    """
    m, n = rows.shape
    if n <= 64:
        bits = (rows < 1).astype(np.uint64)
        weights = np.left_shift(np.uint64(1), np.arange(n, dtype=np.uint64))
        return bits @ weights
    return [rows[i].tobytes() for i in range(m)]


@dataclasses.dataclass
class KindCounter:
    """Counts for one query kind.

    ``queries`` is the unit the corresponding bound is stated in (rows for
    EX/MQ, rounds for EQ, calls for SQ); ``examples`` is the labelled
    examples consumed along the way (equal to ``queries`` for EX, the
    simulation sample for EQ, the per-call sample for sampling-mode SQ);
    ``batches`` counts vectorised calls and ``crp_bytes`` the challenge +
    response payload the attacker observed.
    """

    queries: int = 0
    examples: int = 0
    batches: int = 0
    crp_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (JSON-ready)."""
        return dataclasses.asdict(self)


class QueryMeter:
    """Accumulates per-kind query counts and challenge statistics.

    Parameters
    ----------
    parent:
        Optional meter every record is forwarded to (meter chaining: a
        learner-local meter forwarding to the ambient trial meter).
    track_distinct:
        Hash challenge rows to split queried challenges into distinct vs
        repeated.  Costs one bytes-hash per row; disable for very large
        sweeps.
    distinct_cap:
        Stop tracking new distinct rows past this many (the counters then
        report a saturated lower bound and ``distinct_saturated`` is set).
    """

    def __init__(
        self,
        parent: Optional["QueryMeter"] = None,
        track_distinct: bool = True,
        distinct_cap: int = DEFAULT_DISTINCT_CAP,
    ) -> None:
        self.parent = parent
        self.track_distinct = track_distinct
        self.distinct_cap = distinct_cap
        self.kinds: Dict[str, KindCounter] = {k: KindCounter() for k in QUERY_KINDS}
        self.counters: Dict[str, int] = {}
        self.challenge_rows = 0
        self.repeated_challenges = 0
        self.distinct_saturated = False
        self._seen: set = set()

    # ------------------------------------------------------------------
    @property
    def distinct_challenges(self) -> int:
        """Distinct challenge rows observed so far (lower bound if saturated)."""
        return len(self._seen)

    @property
    def total_queries(self) -> int:
        """Sum of ``queries`` over all kinds."""
        return sum(c.queries for c in self.kinds.values())

    @property
    def crp_bytes(self) -> int:
        """Total challenge + response bytes across all kinds."""
        return sum(c.crp_bytes for c in self.kinds.values())

    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        queries: int = 0,
        examples: int = 0,
        challenges: Optional[np.ndarray] = None,
        response_bytes: int = 0,
    ) -> None:
        """Record one (possibly batched) oracle interaction.

        ``challenges`` — when given — feeds the distinct/repeated split
        and the byte accounting; its rows are hashed, never stored.
        """
        if kind not in self.kinds:
            raise ValueError(f"unknown query kind {kind!r}; expected {QUERY_KINDS}")
        counter = self.kinds[kind]
        counter.queries += int(queries)
        counter.examples += int(examples)
        counter.batches += 1
        counter.crp_bytes += int(response_bytes)
        if challenges is not None:
            x = np.asarray(challenges)
            if x.ndim == 1:
                x = x[None, :]
            counter.crp_bytes += x.nbytes
            self._observe(x)
        if self.parent is not None:
            self.parent.record(
                kind,
                queries=queries,
                examples=examples,
                challenges=challenges,
                response_bytes=response_bytes,
            )

    def _observe(self, x: np.ndarray) -> None:
        """Update the distinct/repeated challenge split with a row batch.

        In the unsaturated regime the split is exact and batch-order
        independent: in-batch duplicates beyond the first occurrence count
        as repeated, as does any row already seen by this meter.  Once the
        cap is hit, ``distinct_challenges`` becomes a lower bound and
        ``distinct_saturated`` is set.
        """
        self.challenge_rows += x.shape[0]
        if not self.track_distinct or x.shape[0] == 0:
            return
        seen = self._seen
        keys = _row_keys(np.ascontiguousarray(x, dtype=np.int8))
        unique = np.unique(keys) if isinstance(keys, np.ndarray) else sorted(set(keys))
        self.repeated_challenges += x.shape[0] - len(unique)
        for key in unique:
            key = int(key) if isinstance(keys, np.ndarray) else key
            if key in seen:
                self.repeated_challenges += 1
            elif len(seen) < self.distinct_cap:
                seen.add(key)
            else:
                self.distinct_saturated = True

    def incr(self, name: str, amount: int = 1) -> None:
        """Bump a free-form named counter (cache hits, kernel blocks, ...)."""
        self.counters[name] = self.counters.get(name, 0) + int(amount)
        if self.parent is not None:
            self.parent.incr(name, amount)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A plain-dict, JSON-serialisable view of every statistic."""
        return {
            "queries": {k: c.as_dict() for k, c in self.kinds.items()},
            "total_queries": self.total_queries,
            "crp_bytes": self.crp_bytes,
            "challenge_rows": self.challenge_rows,
            "distinct_challenges": self.distinct_challenges,
            "repeated_challenges": self.repeated_challenges,
            "distinct_saturated": self.distinct_saturated,
            "counters": dict(self.counters),
        }

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict into this meter (ledger aggregation).

        Distinct/repeated counts are summed, not re-deduplicated: rows are
        not stored in snapshots, so cross-trial duplicates are invisible.
        A saturated snapshot taints the merged meter (the totals are then
        lower bounds), and partial snapshots — e.g. from a trial whose
        worker died mid-flight — merge their surviving fields.
        """
        for kind, values in (snap.get("queries") or {}).items():
            counter = self.kinds.setdefault(kind, KindCounter())
            counter.queries += values.get("queries", 0)
            counter.examples += values.get("examples", 0)
            counter.batches += values.get("batches", 0)
            counter.crp_bytes += values.get("crp_bytes", 0)
        self.challenge_rows += snap.get("challenge_rows", 0)
        self.repeated_challenges += snap.get("repeated_challenges", 0)
        self.distinct_saturated = self.distinct_saturated or bool(
            snap.get("distinct_saturated", False)
        )
        self._merged_distinct = getattr(self, "_merged_distinct", 0) + snap.get(
            "distinct_challenges", 0
        )
        for name, amount in (snap.get("counters") or {}).items():
            self.counters[name] = self.counters.get(name, 0) + amount

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k}={c.queries}" for k, c in self.kinds.items() if c.queries
        )
        return f"QueryMeter({parts or 'empty'})"


# ----------------------------------------------------------------------
# Ambient installation point.
# ----------------------------------------------------------------------
_METER: contextvars.ContextVar[Optional[QueryMeter]] = contextvars.ContextVar(
    "repro_query_meter", default=None
)


def current_meter() -> Optional[QueryMeter]:
    """The ambient meter, or None when accounting is off."""
    return _METER.get()


@contextlib.contextmanager
def metered(meter: Optional[QueryMeter] = None) -> Iterator[QueryMeter]:
    """Install ``meter`` (or a fresh one) as the ambient meter.

    Nested uses shadow the outer meter; chain explicitly with
    ``metered(QueryMeter(parent=current_meter()))`` when the outer meter
    should keep accumulating.
    """
    meter = QueryMeter() if meter is None else meter
    token = _METER.set(meter)
    try:
        yield meter
    finally:
        _METER.reset(token)


@contextlib.contextmanager
def unmetered() -> Iterator[None]:
    """Suspend accounting (e.g. while drawing a held-out test set).

    Test-set evaluation is not an adversary query; wrap its CRP draws in
    this to keep the ledger's EX counts equal to the attack budget.
    """
    token = _METER.set(None)
    try:
        yield
    finally:
        _METER.reset(token)


def record(
    kind: str,
    queries: int = 0,
    examples: int = 0,
    challenges: Optional[np.ndarray] = None,
    response_bytes: int = 0,
) -> None:
    """Record into the ambient meter; a no-op when none is installed."""
    meter = _METER.get()
    if meter is not None:
        meter.record(
            kind,
            queries=queries,
            examples=examples,
            challenges=challenges,
            response_bytes=response_bytes,
        )


def incr(name: str, amount: int = 1) -> None:
    """Bump a named counter on the ambient meter; no-op when none installed."""
    meter = _METER.get()
    if meter is not None:
        meter.incr(name, amount)

"""The JSONL run ledger: one line per trial, one directory per run.

A *run* is one invocation of an experiment (``python -m repro trials``,
or any :class:`~repro.runtime.runner.TrialRunner` call given a ledger).
Its directory, ``runs/<run_id>/`` by convention, holds:

* ``meta.json`` — the run's provenance: workload name, spec parameters,
  trial count, worker count, master seed, and the PAC parameters its
  bounds should be evaluated at;
* ``ledger.jsonl`` — one JSON record per trial, appended from the parent
  process *as each trial completes* (so a killed run keeps every finished
  trial): timings (wall/CPU/queue-wait), attempt count, the trial's
  return value or structured error, and the full query-meter +
  span-summary telemetry snapshot.  ``TrialRunner.run(...,
  resume_from=...)`` replays these records to restart a run
  bit-identically (see :func:`~repro.runtime.runner.result_from_record`).

``python -m repro report runs/<run_id>`` aggregates a ledger against the
:mod:`repro.pac.bounds` predictions (see :mod:`repro.telemetry.report`).
Records are plain dicts of JSON scalars; numpy values are converted on
write so readers need nothing but the standard library.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

#: File names inside a run directory.
LEDGER_NAME = "ledger.jsonl"
META_NAME = "meta.json"

#: Glob matching per-shard ledger files inside a run directory.
SHARD_LEDGER_GLOB = "ledger-shard*.jsonl"


def shard_ledger_name(shard_id: int) -> str:
    """The ledger filename for shard ``shard_id`` (``ledger-shard03.jsonl``).

    Two digits keep shard files lexicographically ordered by id for any
    realistic shard count, which fixes the merge order used by
    :meth:`RunLedger.read_latest`.
    """
    if shard_id < 0:
        raise ValueError(f"shard id must be non-negative, got {shard_id}")
    return f"ledger-shard{shard_id:02d}.jsonl"


def _replayable(record: Dict[str, object]) -> bool:
    """Whether a ledger record can be replayed bit-identically on resume.

    Successful trials and deterministic *trial* errors are pure functions
    of ``(master_seed, index)``; infrastructure failures and timeouts are
    not.  The shard-merge in :meth:`RunLedger.read_latest` prefers
    replayable records so a shard's infra hiccup can never shadow another
    record of the same trial that actually finished.
    """
    if record.get("status") == "ok":
        return True
    error = record.get("error")
    return isinstance(error, dict) and error.get("category") == "trial"


def _replay_digest(record: Dict[str, object]) -> str:
    """A canonical digest of a record's *replayable* payload.

    Covers exactly the fields a resumed run replays — status, value,
    value_meta, and the deterministic error identity — and excludes the
    legitimately-varying ones (timings, queue wait, telemetry, attempt
    counts).  Two replayable records for one trial index must digest
    equally: they are pure functions of ``(master_seed, index)``.  A
    mismatch means two ledger files disagree about what a trial computed
    — corruption or a mixed-provenance run directory — which
    :meth:`RunLedger.read_latest` warns about instead of silently
    letting the merge order pick a winner.
    """
    payload: Dict[str, object] = {
        "status": record.get("status"),
        "value": record.get("value"),
        "value_meta": record.get("value_meta"),
    }
    error = record.get("error")
    if isinstance(error, dict):
        payload["error"] = {
            "exc_type": error.get("exc_type"),
            "category": error.get("category"),
            "message": error.get("message"),
        }
    return json.dumps(payload, sort_keys=True, default=_json_default)


def _json_default(obj: object) -> object:
    """Convert numpy scalars/arrays so ledger writes never fail."""
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serialisable: {type(obj).__name__}")


def new_run_id(prefix: str = "run") -> str:
    """A sortable run id: ``<prefix>-YYYYmmdd-HHMMSS``.

    Collisions within one second are possible; pass an explicit
    ``--run-id`` when launching runs programmatically in a loop.
    """
    return f"{prefix}-{time.strftime('%Y%m%d-%H%M%S')}"


class RunLedger:
    """Append-only JSONL ledger plus ``meta.json`` for one run directory.

    Parameters
    ----------
    run_dir:
        The run's directory (e.g. ``runs/curve-20260806-120000``).
        Created on construction.
    filename:
        The JSONL file this handle appends to — ``ledger.jsonl`` (the
        main ledger) by default, or a per-shard file from
        :meth:`shard`.  All handles share the run directory and
        ``meta.json``.
    """

    def __init__(
        self, run_dir: Union[str, Path], filename: str = LEDGER_NAME
    ) -> None:
        self.run_dir = Path(run_dir)
        self.filename = filename
        self.run_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The JSONL file this handle appends to (main or shard)."""
        return self.run_dir / self.filename

    @property
    def meta_path(self) -> Path:
        """The ``meta.json`` path."""
        return self.run_dir / META_NAME

    @property
    def run_id(self) -> str:
        """The run id (the directory name)."""
        return self.run_dir.name

    def shard(self, shard_id: int) -> "RunLedger":
        """A ledger handle appending to this run's shard ``shard_id`` file.

        Sharded execution gives each shard its own append-only file
        (``ledger-shardNN.jsonl``) so shards never contend on one file
        handle and a torn write can only tear its own shard.  The main
        handle's :meth:`read_latest` merges every shard back by trial
        index.
        """
        return RunLedger(self.run_dir, filename=shard_ledger_name(shard_id))

    def shard_paths(self) -> List[Path]:
        """All per-shard ledger files present, sorted by shard id."""
        return sorted(self.run_dir.glob(SHARD_LEDGER_GLOB))

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        """Append one trial record as a single JSON line."""
        line = json.dumps(record, default=_json_default, sort_keys=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")

    def append_many(self, records: Iterable[Dict[str, object]]) -> None:
        """Append several records in one file open."""
        with self.path.open("a") as fh:
            for record in records:
                fh.write(
                    json.dumps(record, default=_json_default, sort_keys=True) + "\n"
                )

    def write_meta(self, meta: Dict[str, object]) -> None:
        """Write (replace) the run's ``meta.json``."""
        self.meta_path.write_text(
            json.dumps(meta, default=_json_default, sort_keys=True, indent=2) + "\n"
        )

    # ------------------------------------------------------------------
    def read(self) -> List[Dict[str, object]]:
        """All parseable trial records, in file order.

        Blank lines are skipped silently; an unparseable line — typically
        the truncated final record of a run killed mid-append — is skipped
        with a warning, so a crashed ledger stays readable and the trial
        behind the torn record simply re-executes on resume.
        """
        return self._read_file(self.path)

    def _read_file(self, path: Path) -> List[Dict[str, object]]:
        """Parse one JSONL file with the torn-line tolerance of :meth:`read`."""
        if not path.exists():
            return []
        records = []
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                warnings.warn(
                    f"{path}:{lineno}: skipping unparseable ledger line "
                    "(torn write from a killed run?)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return records

    def read_latest(self) -> Dict[int, Dict[str, object]]:
        """The winning record per trial index, merged across shard files.

        A resumed run appends fresh records for re-executed trials after
        the originals (e.g. an infrastructure failure followed by a clean
        rerun), so readers — resume itself and ``repro report`` — must
        take one record per index, never double-count.  On the main
        handle this also folds in every ``ledger-shardNN.jsonl`` present,
        making shard merge invisible to readers.

        Merge rule, per index: a *replayable* record (status ``ok`` or a
        deterministic trial error) beats a non-replayable one (infra
        failure, timeout); at equal rank the later record wins, reading
        the main file first and then shards in id order.  Replayable
        records for one index are bit-identical by construction — they
        are pure functions of ``(master_seed, index)`` — so which one
        wins is unobservable; preferring them merely stops a shard's
        infra hiccup from shadowing a completed trial.  Torn-line
        tolerance applies to *every* file read (main and each shard):
        each file drops only its own unparseable lines.  When two files
        hold replayable records for one index whose replay payloads
        *differ* — which the determinism contract forbids — the merge
        warns (naming the index) instead of silently dropping one, and
        the later record still wins.  Records without an integer
        ``index`` are ignored.
        """
        records = list(self.read())
        if self.filename == LEDGER_NAME:
            for path in self.shard_paths():
                records.extend(self._read_file(path))
        latest: Dict[int, Dict[str, object]] = {}
        rank: Dict[int, int] = {}
        for record in records:
            index = record.get("index")
            if not isinstance(index, int):
                continue
            r = 1 if _replayable(record) else 0
            if index not in latest or r >= rank[index]:
                if (
                    index in latest
                    and r == 1
                    and rank[index] == 1
                    and _replay_digest(record) != _replay_digest(latest[index])
                ):
                    warnings.warn(
                        f"{self.run_dir}: ledger files hold conflicting "
                        f"replayable records for trial {index} (replay "
                        "payload digests differ); keeping the later record "
                        "— this run directory mixes provenances or is "
                        "corrupt",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                latest[index] = record
                rank[index] = r
        return latest

    def read_meta(self) -> Optional[Dict[str, object]]:
        """The run's metadata, or None when ``meta.json`` is absent."""
        if not self.meta_path.exists():
            return None
        return json.loads(self.meta_path.read_text())

    @classmethod
    def open_existing(cls, run_dir: Union[str, Path]) -> "RunLedger":
        """Open a run directory that must already contain ledger data.

        Accepts a directory holding a main ``ledger.jsonl`` *or* only
        per-shard files — a sharded run killed before any shard merge is
        still a resumable run directory.
        """
        run_dir = Path(run_dir)
        if not (run_dir / LEDGER_NAME).exists() and not list(
            run_dir.glob(SHARD_LEDGER_GLOB)
        ):
            raise FileNotFoundError(
                f"no {LEDGER_NAME} (or shard ledgers) under {run_dir} "
                "— not a run directory"
            )
        return cls(run_dir)

    def __repr__(self) -> str:
        return f"RunLedger({str(self.run_dir)!r})"

"""The JSONL run ledger: one line per trial, one directory per run.

A *run* is one invocation of an experiment (``python -m repro trials``,
or any :class:`~repro.runtime.runner.TrialRunner` call given a ledger).
Its directory, ``runs/<run_id>/`` by convention, holds:

* ``meta.json`` — the run's provenance: workload name, spec parameters,
  trial count, worker count, master seed, and the PAC parameters its
  bounds should be evaluated at;
* ``ledger.jsonl`` — one JSON record per trial, appended from the parent
  process *as each trial completes* (so a killed run keeps every finished
  trial): timings (wall/CPU/queue-wait), attempt count, the trial's
  return value or structured error, and the full query-meter +
  span-summary telemetry snapshot.  ``TrialRunner.run(...,
  resume_from=...)`` replays these records to restart a run
  bit-identically (see :func:`~repro.runtime.runner.result_from_record`).

``python -m repro report runs/<run_id>`` aggregates a ledger against the
:mod:`repro.pac.bounds` predictions (see :mod:`repro.telemetry.report`).
Records are plain dicts of JSON scalars; numpy values are converted on
write so readers need nothing but the standard library.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

#: File names inside a run directory.
LEDGER_NAME = "ledger.jsonl"
META_NAME = "meta.json"


def _json_default(obj: object) -> object:
    """Convert numpy scalars/arrays so ledger writes never fail."""
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serialisable: {type(obj).__name__}")


def new_run_id(prefix: str = "run") -> str:
    """A sortable run id: ``<prefix>-YYYYmmdd-HHMMSS``.

    Collisions within one second are possible; pass an explicit
    ``--run-id`` when launching runs programmatically in a loop.
    """
    return f"{prefix}-{time.strftime('%Y%m%d-%H%M%S')}"


class RunLedger:
    """Append-only JSONL ledger plus ``meta.json`` for one run directory.

    Parameters
    ----------
    run_dir:
        The run's directory (e.g. ``runs/curve-20260806-120000``).
        Created on construction.
    """

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The ``ledger.jsonl`` path."""
        return self.run_dir / LEDGER_NAME

    @property
    def meta_path(self) -> Path:
        """The ``meta.json`` path."""
        return self.run_dir / META_NAME

    @property
    def run_id(self) -> str:
        """The run id (the directory name)."""
        return self.run_dir.name

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        """Append one trial record as a single JSON line."""
        line = json.dumps(record, default=_json_default, sort_keys=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")

    def append_many(self, records: Iterable[Dict[str, object]]) -> None:
        """Append several records in one file open."""
        with self.path.open("a") as fh:
            for record in records:
                fh.write(
                    json.dumps(record, default=_json_default, sort_keys=True) + "\n"
                )

    def write_meta(self, meta: Dict[str, object]) -> None:
        """Write (replace) the run's ``meta.json``."""
        self.meta_path.write_text(
            json.dumps(meta, default=_json_default, sort_keys=True, indent=2) + "\n"
        )

    # ------------------------------------------------------------------
    def read(self) -> List[Dict[str, object]]:
        """All parseable trial records, in file order.

        Blank lines are skipped silently; an unparseable line — typically
        the truncated final record of a run killed mid-append — is skipped
        with a warning, so a crashed ledger stays readable and the trial
        behind the torn record simply re-executes on resume.
        """
        if not self.path.exists():
            return []
        records = []
        for lineno, line in enumerate(self.path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                warnings.warn(
                    f"{self.path}:{lineno}: skipping unparseable ledger line "
                    "(torn write from a killed run?)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return records

    def read_latest(self) -> Dict[int, Dict[str, object]]:
        """The last record per trial index, keyed by index.

        A resumed run appends fresh records for re-executed trials after
        the originals (e.g. an infrastructure failure followed by a clean
        rerun), so readers — resume itself and ``repro report`` — must
        take the *latest* record for each index, never double-count.
        Records without an integer ``index`` are ignored.
        """
        latest: Dict[int, Dict[str, object]] = {}
        for record in self.read():
            index = record.get("index")
            if isinstance(index, int):
                latest[index] = record
        return latest

    def read_meta(self) -> Optional[Dict[str, object]]:
        """The run's metadata, or None when ``meta.json`` is absent."""
        if not self.meta_path.exists():
            return None
        return json.loads(self.meta_path.read_text())

    @classmethod
    def open_existing(cls, run_dir: Union[str, Path]) -> "RunLedger":
        """Open a run directory that must already contain a ledger."""
        run_dir = Path(run_dir)
        if not (run_dir / LEDGER_NAME).exists():
            raise FileNotFoundError(
                f"no {LEDGER_NAME} under {run_dir} — not a run directory"
            )
        return cls(run_dir)

    def __repr__(self) -> str:
        return f"RunLedger({str(self.run_dir)!r})"

"""Lightweight timing spans: ``with trace("lmn.fit"): ...``.

A span records wall and CPU time for a named region, nests (child spans
know their depth and parent), and carries free-form numeric attributes
(block counts, matrix shapes).  Recording is ambient, like
:mod:`repro.telemetry.meter`: instrumented code calls :func:`trace`,
which is a near-free no-op (one context-variable read) until a
:class:`SpanRecorder` is installed with :func:`recording`.

The kernels layer traces its GEMM/FWHT calls, learners trace their fits,
and :class:`repro.runtime.runner.TrialRunner` installs a recorder around
every trial so per-trial span summaries land in the run ledger —
including on the serial fallback path, where trials share a process but
each still gets its own recorder.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import time
from typing import Dict, Iterator, List, Optional


@dataclasses.dataclass
class Span:
    """One completed traced region."""

    name: str
    wall_s: float
    cpu_s: float
    depth: int
    index: int
    parent_index: int  # -1 for a root span
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (JSON-ready)."""
        return dataclasses.asdict(self)


class SpanRecorder:
    """Collects completed spans and aggregates them by name.

    Spans are appended on *exit* (so children precede parents in
    ``spans``); nesting structure survives via ``depth`` and
    ``parent_index``.  Not thread-safe — one recorder per trial.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_index = 0

    # ------------------------------------------------------------------
    def _enter(self) -> int:
        index = self._next_index
        self._next_index += 1
        self._stack.append(index)
        return index

    def _exit(self, span: Span) -> None:
        self._stack.pop()
        self.spans.append(span)

    @property
    def current_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: call count, total wall and CPU seconds.

        Nested same-name spans all count, so a name's total can exceed
        wall-clock; the per-span list keeps the exact structure.
        """
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            agg = out.setdefault(
                span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            agg["count"] += 1
            agg["wall_s"] += span.wall_s
            agg["cpu_s"] += span.cpu_s
        return out

    def roots(self) -> List[Span]:
        """Top-level spans, in completion order."""
        return [s for s in self.spans if s.parent_index == -1]

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
_RECORDER: contextvars.ContextVar[Optional[SpanRecorder]] = contextvars.ContextVar(
    "repro_span_recorder", default=None
)


def current_recorder() -> Optional[SpanRecorder]:
    """The ambient recorder, or None when tracing is off."""
    return _RECORDER.get()


@contextlib.contextmanager
def recording(recorder: Optional[SpanRecorder] = None) -> Iterator[SpanRecorder]:
    """Install ``recorder`` (or a fresh one) as the ambient span sink."""
    recorder = SpanRecorder() if recorder is None else recorder
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)


@contextlib.contextmanager
def trace(name: str, **attrs: object) -> Iterator[None]:
    """Time a region under ``name``; a no-op without an active recorder.

    Numeric keyword attributes (``m=25000, blocks=7``) are stored on the
    span verbatim — keep them JSON-serialisable.  A region that exits via
    an exception still records its span, with an ``"error"`` attribute
    naming the exception type — so a failed trial's ledger shows exactly
    which traced stage blew up and how long it ran first.
    """
    recorder = _RECORDER.get()
    if recorder is None:
        yield
        return
    parent = recorder._stack[-1] if recorder._stack else -1
    depth = recorder.current_depth
    index = recorder._enter()
    span_attrs = dict(attrs)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield
    except BaseException as exc:
        span_attrs["error"] = type(exc).__name__
        raise
    finally:
        recorder._exit(
            Span(
                name=name,
                wall_s=time.perf_counter() - wall0,
                cpu_s=time.process_time() - cpu0,
                depth=depth,
                index=index,
                parent_index=parent,
                attrs=span_attrs,
            )
        )

"""The lockdown PUF authentication protocol [10], and its adversary.

Protocol sketch (simplified to its ML-relevant core):

* **Enrollment**: in a secure phase the server collects a database of CRPs
  from the device's PUF.  Each database entry is used at most once.
* **Authentication round**: the server sends a fresh enrolled challenge;
  the device measures its PUF (majority-voted) and replies; the server
  accepts when the response's bit error against the enrolled value is
  below a threshold.  The *lockdown* is that the device refuses to answer
  challenges beyond its exposure budget — chosen so the total number of
  CRPs an eavesdropper can ever collect stays below a learnability bound.

The pitfall reproduced here: a budget derived from the Perceptron bound of
[9] (exponential in k) is wildly optimistic against an empirical
product-of-margins attacker, which models the PUF with orders of magnitude
fewer CRPs.  Budgets are model-relative; see
:func:`exposure_budget_from_bound`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.learning.xor_logistic import XorLogisticAttack
from repro.pac.bounds import general_vc_bound, perceptron_bound
from repro.pac.framework import PACParameters
from repro.pufs.arbiter import parity_transform
from repro.pufs.base import PUF
from repro.pufs.crp import uniform_challenges
from repro.pufs.noise import majority_vote


class CRPDatabase:
    """Server-side enrolled CRPs, each usable once."""

    def __init__(self, challenges: np.ndarray, responses: np.ndarray) -> None:
        self.challenges = np.asarray(challenges, dtype=np.int8)
        self.responses = np.asarray(responses, dtype=np.int8)
        if self.challenges.ndim != 2 or self.responses.shape != (
            self.challenges.shape[0],
        ):
            raise ValueError("challenges must be (m, n) with matching responses")
        self._next = 0

    @property
    def remaining(self) -> int:
        return self.challenges.shape[0] - self._next

    def draw(self) -> Tuple[np.ndarray, int]:
        """The next unused (challenge, expected response) pair."""
        if self.remaining <= 0:
            raise RuntimeError("CRP database exhausted; re-enrollment required")
        idx = self._next
        self._next += 1
        return self.challenges[idx], int(self.responses[idx])


class LockdownDevice:
    """The PUF-bearing token, enforcing its CRP exposure budget."""

    def __init__(
        self,
        puf: PUF,
        exposure_budget: int,
        repetitions: int = 5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if exposure_budget < 1:
            raise ValueError("exposure_budget must be positive")
        if repetitions < 1:
            raise ValueError("repetitions must be positive")
        self.puf = puf
        self.exposure_budget = exposure_budget
        self.repetitions = repetitions
        self.rng = np.random.default_rng() if rng is None else rng
        self.exposures = 0

    def respond(self, challenge: np.ndarray) -> int:
        """Measure the PUF on one challenge, enforcing the lockdown."""
        if self.exposures >= self.exposure_budget:
            raise RuntimeError(
                "lockdown: device exposure budget exhausted "
                f"({self.exposure_budget} CRPs)"
            )
        self.exposures += 1
        voted = majority_vote(
            self.puf, challenge[None, :], self.repetitions, self.rng
        )
        return int(voted[0])


class LockdownServer:
    """Verifier holding the enrolled database."""

    def __init__(self, database: CRPDatabase) -> None:
        self.database = database

    def issue_challenge(self) -> Tuple[np.ndarray, int]:
        return self.database.draw()

    @staticmethod
    def verify(expected: int, received: int) -> bool:
        # Single-bit rounds: exact match required (multi-bit variants use a
        # BER threshold; majority voting on the device does the denoising).
        return expected == received


@dataclasses.dataclass
class AuthenticationResult:
    """Outcome of a run of authentication rounds."""

    rounds_run: int
    accepted_rounds: int
    device_locked: bool  # True if the budget ran out during the run

    @property
    def acceptance_rate(self) -> float:
        if self.rounds_run == 0:
            return 0.0
        return self.accepted_rounds / self.rounds_run


class EavesdroppingAdversary:
    """Passive attacker recording every (challenge, response) on the wire."""

    def __init__(self, k_guess: int) -> None:
        if k_guess < 1:
            raise ValueError("k_guess must be positive")
        self.k_guess = k_guess
        self._challenges: List[np.ndarray] = []
        self._responses: List[int] = []

    @property
    def crps_collected(self) -> int:
        return len(self._responses)

    def observe(self, challenge: np.ndarray, response: int) -> None:
        self._challenges.append(np.asarray(challenge, dtype=np.int8))
        self._responses.append(int(response))

    def attempt_clone(
        self, rng: Optional[np.random.Generator] = None
    ) -> Optional[XorLogisticAttack]:
        """Train a model on the harvested CRPs; returns the fitted result."""
        if self.crps_collected < 10:
            return None
        rng = np.random.default_rng() if rng is None else rng
        x = np.stack(self._challenges, axis=0)
        y = np.asarray(self._responses, dtype=np.int8)
        attack = XorLogisticAttack(
            self.k_guess, feature_map=parity_transform, restarts=6
        )
        return attack.fit(x, y, rng)


def enroll(
    puf: PUF,
    m: int,
    rng: Optional[np.random.Generator] = None,
    repetitions: int = 15,
) -> CRPDatabase:
    """Secure-phase enrollment: majority-voted CRPs into the database."""
    if m < 1:
        raise ValueError("enrollment size must be positive")
    rng = np.random.default_rng() if rng is None else rng
    challenges = uniform_challenges(m, puf.n, rng)
    responses = majority_vote(puf, challenges, repetitions, rng)
    return CRPDatabase(challenges, responses)


def run_authentication_rounds(
    server: LockdownServer,
    device: LockdownDevice,
    rounds: int,
    adversary: Optional[EavesdroppingAdversary] = None,
) -> AuthenticationResult:
    """Run up to ``rounds`` rounds; the eavesdropper sees all traffic."""
    accepted = 0
    run = 0
    locked = False
    for _ in range(rounds):
        if server.database.remaining <= 0:
            break
        challenge, expected = server.issue_challenge()
        try:
            response = device.respond(challenge)
        except RuntimeError:
            locked = True
            break
        run += 1
        if adversary is not None:
            adversary.observe(challenge, response)
        if server.verify(expected, response):
            accepted += 1
    return AuthenticationResult(
        rounds_run=run, accepted_rounds=accepted, device_locked=locked
    )


def exposure_budget_from_bound(
    n: int,
    k: int,
    params: PACParameters,
    bound: str = "perceptron",
    safety_factor: float = 0.01,
) -> int:
    """Derive a lockdown budget from a learnability bound — *model-relative*.

    ``bound='perceptron'`` uses the [9] route (what [10] consumed);
    ``bound='vc'`` the algorithm-independent route.  The returned budget is
    ``safety_factor`` times the bound, capped at 2^62.

    The whole point of the paper is that this number is only meaningful
    relative to the adversary model behind the chosen bound: an empirical
    attacker outside that model may need far fewer CRPs (see
    benchmarks/test_lockdown_protocol.py).
    """
    if not 0 < safety_factor <= 1:
        raise ValueError("safety_factor must be in (0, 1]")
    if bound == "perceptron":
        value = perceptron_bound(n, k, params)
    elif bound == "vc":
        value = general_vc_bound(n, k, params)
    else:
        raise ValueError(f"unknown bound {bound!r}")
    return int(min(max(1.0, safety_factor * value), 2.0**62))

"""PUF-based protocols: the lockdown authentication scheme [10].

The paper cites [10] ("A Lockdown Technique to Prevent Machine Learning on
PUFs for Lightweight Authentication") as a design that consumed the bound
of [9] — making it the perfect composed-hardware demonstration of the
pitfall: a CRP-exposure budget that is safe against one adversary model
can be unsafe against another.
"""

from repro.protocols.lockdown import (
    CRPDatabase,
    LockdownDevice,
    LockdownServer,
    EavesdroppingAdversary,
    AuthenticationResult,
    run_authentication_rounds,
    exposure_budget_from_bound,
)

__all__ = [
    "CRPDatabase",
    "LockdownDevice",
    "LockdownServer",
    "EavesdroppingAdversary",
    "AuthenticationResult",
    "run_authentication_rounds",
    "exposure_budget_from_bound",
]

"""repro — reproduction of "Pitfalls in Machine Learning-based Adversary
Modeling for Hardware Systems" (Ganji, Amir, Tajik, Forte, Seifert — DATE
2020).

The library makes the paper's three adversary-model axes executable:

* **Distribution** (Section III): :mod:`repro.pac` carries the four Table I
  sample-complexity bounds and the assessment engine that shows security
  verdicts flipping between adversary models.
* **Access** (Section IV): :mod:`repro.learning.oracles` models random
  examples, membership queries, and Angluin-simulated equivalence queries;
  :class:`repro.learning.LearnPoly` demonstrates Corollary 2.
* **Representation** (Section V): :mod:`repro.booleanfuncs` (Fourier
  analysis, LTFs, Chow parameters), :mod:`repro.property_testing` (the
  halfspace tester of Table III), and the improper learners.

Substrates: :mod:`repro.pufs` (Arbiter, XOR Arbiter, Bistable Ring and
feed-forward PUF simulators), :mod:`repro.locking` (netlists, a CDCL SAT
solver, SAT/AppSAT attacks, FSM locking), :mod:`repro.automata` and
:mod:`repro.learning` (Perceptron, logistic regression, LMN, Chow, L*,
LearnPoly — all from scratch).

Quickstart::

    import numpy as np
    from repro.pufs import XORArbiterPUF, generate_crps
    from repro.pac import XorArbiterSpec, PACParameters, table1_rows

    rng = np.random.default_rng(0)
    puf = XORArbiterPUF(n=64, k=4, rng=rng)
    crps = generate_crps(puf, 10_000, rng)
    for row in table1_rows(XorArbiterSpec(64, 4), PACParameters(0.05, 0.05)):
        print(row.summary())
"""

__version__ = "1.0.0"

from repro import analysis, automata, booleanfuncs, learning, locking, pac, pufs
from repro import property_testing

__all__ = [
    "analysis",
    "automata",
    "booleanfuncs",
    "learning",
    "locking",
    "pac",
    "property_testing",
    "pufs",
    "__version__",
]

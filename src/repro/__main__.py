"""Command-line front end: ``python -m repro``.

Subcommands:

* ``assess`` — Table I adversary-model assessment for an XOR Arbiter PUF::

      python -m repro assess --n 64 --k 6 --eps 0.05 --delta 0.05

* ``attack-demo`` — a 30-second tour: lock c17, run the SAT attack,
  print the recovered key.

* ``trials`` — the parallel experiment runtime: fan a workload
  (``curve``/``active``/``lmn``/``km``/``sq``/``fault``/``fleet``/
  ``skew``) out over worker processes,
  report per-trial timings, speedup over serial, and the bit-identity
  check; ``--ledger`` additionally writes a query-accounting run
  directory, ``--retries``/``--trial-timeout`` configure the retry
  policy for infrastructure failures, and ``--resume`` replays a killed
  run's ledger so only missing trials re-execute.  ``--shards N`` runs
  N work-stealing process pools with per-shard mergeable ledgers;
  ``--cache-dir`` memoises workload artifacts in an ``ArtifactStore``
  (``--cache-max-bytes`` caps it, ``--cache-stats`` prints and records
  hit/miss/bytes counters); ``--smoke`` shrinks the workload to a
  seconds-fast CI tier::

      python -m repro trials --trials 32 --workers 4
      python -m repro trials --workload lmn --trials 4 --ledger
      python -m repro trials --ledger --run-id demo --resume
      python -m repro trials --workload fleet --shards 2 --smoke

* ``report`` — aggregate a run ledger into ``report.md``/``report.json``
  comparing the measured query counts against the ``pac.bounds``
  predictions (exit 1 on a bound violation)::

      python -m repro report runs/<run_id>

* ``bench-kernels`` — time the shared character kernel against the old
  per-subset loops and regenerate the machine-readable baseline::

      python -m repro bench-kernels --out benchmarks/results/BENCH_kernels.json

* ``bench-fleet`` — time the per-instance evaluation loop against the
  stacked-GEMM fleet kernels over populations of PUF instances::

      python -m repro bench-fleet --out benchmarks/results/BENCH_fleet.json
      python -m repro bench-fleet --smoke

* ``bench-store`` — time the artifact store's cold-vs-warm sweep replay
  and the work-stealing shard scaling on a skewed trial mix::

      python -m repro bench-store --out benchmarks/results/BENCH_store.json
      python -m repro bench-store --smoke

* ``bench-active`` — the adaptive-vs-passive query atlas: every query
  strategy attacks the same (n, k) cells under metered budgets and the
  baseline records where chosen-challenge access beats i.i.d. sampling::

      python -m repro bench-active --out benchmarks/results/BENCH_active.json
      python -m repro bench-active --smoke

* ``docs-bench`` — regenerate ``docs/BENCHMARKS.md`` from the committed
  ``benchmarks/results/BENCH_*.json`` baselines (``--check`` fails on
  drift; CI runs it so the page can never go stale).

* ``lint-docstrings`` — AST-based docstring-coverage gate over the
  instrumented packages (``--fail-under`` sets the CI threshold).

* ``conformance`` — run the differential + metamorphic conformance
  suite (see ``docs/TESTING.md``): every statistical relation draws its
  alpha from a family-wise error budget, every relation's exact seed is
  printed on violation, and ``--ledger`` writes one JSONL record per
  relation.  Exit 1 on any violation::

      python -m repro conformance
      python -m repro conformance --smoke --ledger
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def cmd_assess(args: argparse.Namespace) -> int:
    from repro.analysis.tables import TableBuilder
    from repro.pac import PACParameters, XorArbiterSpec, table1_rows

    params = PACParameters(eps=args.eps, delta=args.delta)
    rows = table1_rows(
        XorArbiterSpec(args.n, args.k), params, junta_size=args.junta_size
    )
    table = TableBuilder(
        ["adversary model", "log10(#CRPs)", "verdict", "rationale"],
        title=(
            f"Adversary-model assessment: {args.k}-XOR, {args.n}-bit arbiter "
            f"PUF (eps={args.eps}, delta={args.delta})"
        ),
    )
    for row in rows:
        table.add_row(
            row.adversary.name,
            f"{row.crp_bound_log10:.1f}",
            row.verdict.value,
            row.rationale,
        )
    print(table.render())
    verdicts = {row.verdict for row in rows}
    if len(verdicts) > 1:
        print(
            "\nVerdicts disagree across adversary models — quoting any single "
            "row as 'the' security level is the pitfall the paper warns about."
        )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.pac import PACParameters, XorArbiterSpec, table1_rows
    from repro.pac.audit import audit_assessments

    params = PACParameters(eps=args.eps, delta=args.delta)
    rows = table1_rows(
        XorArbiterSpec(args.n, args.k), params, junta_size=args.junta_size
    )
    print("assessments:")
    for row in rows:
        print("  " + row.summary())
    unsound = audit_assessments(rows)
    if not unsound:
        print("\nno unsound cross-quotations at this parameter point.")
        return 0
    print(f"\n{len(unsound)} UNSOUND quotations (the pitfalls):")
    for audit in unsound:
        print("  " + audit.summary())
    return 0


def cmd_attack_demo(args: argparse.Namespace) -> int:
    from repro.locking import SATAttack, c17, random_lock

    rng = np.random.default_rng(args.seed)
    locked = random_lock(c17(), args.key_length, rng)
    result = SATAttack().run(locked)
    print(f"locked c17 with {args.key_length} key bits; secret {locked.correct_key}")
    print(result.summary())
    if result.key is not None:
        print(f"recovered key: {result.key}")
        print(
            "functionally correct:",
            locked.key_is_functionally_correct(result.key),
        )
    return 0 if result.success else 1


def _resolve_workload(args: argparse.Namespace):
    """(trial_fn, spec, value column labels) for ``args.workload``.

    ``--n``/``--k``/``--test-size`` default to ``None`` in the parser so
    each workload keeps its own dataclass defaults unless overridden.
    """
    from repro.runtime import workloads as w

    def pick(value, default):
        return default if value is None else value

    name = args.workload
    if name == "curve":
        budgets = tuple(int(b) for b in args.budgets.split(","))
        spec = w.LearningCurveSpec(
            n=pick(args.n, 48),
            k=pick(args.k, 1),
            budgets=budgets,
            test_size=pick(args.test_size, 2000),
        )
        return (
            w.learning_curve_trial,
            spec,
            [f"acc @ {b}" for b in spec.sorted_budgets],
        )
    if name == "active":
        budgets = tuple(int(b) for b in args.budgets.split(","))
        spec = w.ActiveTrialSpec(
            n=pick(args.n, 32),
            k=pick(args.k, 1),
            strategy=args.strategy,
            budgets=budgets,
            batch=args.batch,
            pool_size=pick(args.pool_size, max(1024, 2 * max(budgets))),
            committee=args.committee,
            fast_fraction=args.fast_fraction,
            test_size=pick(args.test_size, 2000),
            noise_rate=args.noise_rate,
        )
        return (
            w.active_trial,
            spec,
            [f"acc @ {b}" for b in spec.sorted_budgets],
        )
    if name == "lmn":
        spec = w.LMNTrialSpec(
            n=pick(args.n, 12),
            k=pick(args.k, 2),
            degree=args.degree,
            m=args.m,
            test_size=pick(args.test_size, 5000),
        )
        return w.lmn_trial, spec, ["captured wt", "accuracy"]
    if name == "km":
        spec = w.KMTrialSpec(
            n=pick(args.n, 12),
            theta=args.theta,
            bucket_samples=args.bucket_samples,
            coefficient_samples=args.coefficient_samples,
            test_size=pick(args.test_size, 2000),
        )
        return w.km_trial, spec, ["accuracy", "MQ queries"]
    if name == "sq":
        spec = w.SQTrialSpec(
            n=pick(args.n, 32),
            tau=args.tau,
            mode=args.mode,
            test_size=pick(args.test_size, 2000),
        )
        return w.sq_trial, spec, ["accuracy", "SQ queries"]
    if name == "fleet":
        smoke = getattr(args, "smoke", False)
        spec = w.FleetEvalSpec(
            family=args.family,
            n=pick(args.n, 32 if smoke else 64),
            size=pick(args.size, 48 if smoke else 256),
            k=pick(args.k, 4),
            noise_sigma=args.noise_sigma,
            tier=args.tier,
            m=pick(args.fleet_m, 400 if smoke else 2000),
            repetitions=3 if smoke else args.repetitions,
        )
        return (
            w.fleet_eval_trial,
            spec,
            ["uniqueness", "uniformity", "reliability"],
        )
    if name == "skew":
        spec = w.SkewedSleepSpec(
            slow_count=args.slow_count,
            slow_seconds=args.slow_seconds,
            fast_seconds=args.fast_seconds,
        )
        return w.skewed_sleep_trial, spec, [f"draw {i}" for i in range(spec.size)]
    if name == "fault":
        fail_at = tuple(int(i) for i in args.fail_at.split(",") if i.strip())
        spec = w.FaultInjectionSpec(
            size=2,
            sleep_seconds=args.sleep_seconds,
            fail_indices=fail_at,
        )
        return w.fault_injection_trial, spec, ["draw 0", "draw 1"]
    raise ValueError(f"unknown workload {name!r}")


def _retry_policy(retries: int):
    """Map ``--retries`` (extra attempts after the first; 0 = no retry)
    onto :class:`~repro.runtime.RetryPolicy`, whose ``max_attempts``
    counts total executions."""
    from repro.runtime import RetryPolicy

    if retries < 0:
        raise ValueError(f"--retries must be >= 0, got {retries}")
    return RetryPolicy(max_attempts=retries + 1)


def _resume_mismatches(meta, workload: str, spec, trials: int, seed) -> list:
    """Fields where a run's ``meta.json`` disagrees with this invocation.

    The spec is canonicalised through a JSON round-trip so tuples compare
    equal to the lists ``meta.json`` stores.
    """
    import dataclasses
    import json

    current = {
        "workload": workload,
        "spec": json.loads(json.dumps(dataclasses.asdict(spec))),
        "trials": trials,
        "master_seed": seed,
    }
    return [
        f"{key}: run has {meta[key]!r}, this invocation has {value!r}"
        for key, value in current.items()
        if key in meta and meta[key] != value
    ]


def _results_match(a, b) -> bool:
    """Bit-identity for one (serial, parallel) result pair.

    Successes compare by value; deterministic failures compare by
    exception type (the traceback strings differ across processes).  An
    ok/error mismatch is a determinism violation like any value mismatch.
    """
    if a.ok and b.ok:
        return bool(np.array_equal(a.value, b.value))
    if not a.ok and not b.ok:
        return a.error.exc_type == b.error.exc_type
    return False


def _aggregate_cache_stats(results) -> dict:
    """Sum the artifact-store counters shipped back in trial telemetry.

    Every trial ran against a per-process :class:`ArtifactStore` handle,
    but each handle's hits/misses landed on that trial's ambient
    :class:`QueryMeter` and travelled home in
    ``TrialResult.telemetry["queries"]["counters"]`` — so the run-wide
    totals are a plain sum over results, regardless of worker or shard
    count.

    Trials are heterogeneous: a cached trial carries the full
    ``artifact_store.*`` counter set, an uncached one only some of it,
    and a record replayed from a pre-store resume ledger may have no
    counters (or no telemetry) at all.  Every lookup therefore defaults
    to 0 — a missing key means "this trial did none of that", never an
    error or a skewed total.
    """
    totals = {
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "corrupt": 0,
        "stores": 0,
        "bytes_served": 0,
        "bytes_stored": 0,
    }
    for result in results:
        telemetry = result.telemetry or {}
        queries = telemetry.get("queries") or {}
        counters = queries.get("counters") if isinstance(queries, dict) else None
        if not isinstance(counters, dict):
            continue
        for name in totals:
            totals[name] += int(counters.get(f"artifact_store.{name}", 0) or 0)
    return totals


def cmd_trials(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.analysis.tables import TableBuilder
    from repro.runtime import TrialRunner

    if args.resume and not args.run_id:
        print("--resume needs --run-id (the run directory to pick up)")
        return 2
    if args.resume:
        args.ledger = True
    if args.retries < 0:
        print("--retries must be >= 0 (0 disables retrying)")
        return 2

    trial_fn, spec, columns = _resolve_workload(args)
    kwargs = {"spec": spec}
    if args.cache_dir is not None:
        if args.workload not in ("fleet", "active"):
            print(f"--cache-dir is not supported by the {args.workload} workload")
            return 2
        kwargs["cache_dir"] = args.cache_dir
        kwargs["cache_max_bytes"] = args.cache_max_bytes
    retry = _retry_policy(args.retries)
    print(
        f"workload: {args.trials} {args.workload} trials ({spec!r}), "
        f"master seed {args.seed}"
    )

    ledger = None
    if args.ledger:
        from pathlib import Path

        from repro.telemetry import RunLedger, new_run_id

        run_id = args.run_id or new_run_id(args.workload)
        ledger = RunLedger(Path(args.runs_dir) / run_id)
        meta = ledger.read_meta()
        if args.resume and meta is not None:
            mismatches = _resume_mismatches(
                meta, args.workload, spec, args.trials, args.seed
            )
            if mismatches:
                print(
                    f"cannot --resume {ledger.run_dir}: its meta.json "
                    "disagrees with this invocation"
                )
                for line in mismatches:
                    print("  " + line)
                return 2
        if not (args.resume and meta is not None):
            ledger.write_meta(
                {
                    "workload": args.workload,
                    "spec": dataclasses.asdict(spec),
                    "trials": args.trials,
                    "workers": args.workers,
                    "shards": args.shards,
                    "master_seed": args.seed,
                    "eps": args.eps,
                    "delta": args.delta,
                }
            )

    serial = None
    if not args.skip_serial:
        serial = TrialRunner(workers=1).run(
            trial_fn, args.trials, args.seed, kwargs, retry=retry
        )
        print(f"serial:   {serial.summary()}")
    parallel = TrialRunner(workers=args.workers, shards=args.shards).run(
        trial_fn,
        args.trials,
        args.seed,
        kwargs,
        ledger=ledger,
        resume_from=ledger if args.resume else None,
        retry=retry,
        trial_timeout=args.trial_timeout,
    )
    print(f"parallel: {parallel.summary()}")

    table = TableBuilder(
        ["trial", "seconds"] + columns,
        title=f"per-trial timings and results (parallel run, {args.workload})",
    )
    for result in parallel.results:
        if result.ok:
            cells = [f"{a:.4f}" for a in np.atleast_1d(result.value)]
        else:
            cells = [f"ERROR: {result.error.exc_type}"] + [""] * (len(columns) - 1)
        table.add_row(result.index, f"{result.seconds:.3f}", *cells)
    print(table.render())

    failures = parallel.failures()
    for failed in failures:
        print(f"FAILED {failed.error.summary()} (attempts={failed.attempts})")
    if args.cache_stats:
        stats = _aggregate_cache_stats(parallel.results)
        print(
            "cache stats: "
            f"hits={stats['hits']} misses={stats['misses']} "
            f"evictions={stats['evictions']} corrupt={stats['corrupt']} "
            f"bytes_served={stats['bytes_served']} "
            f"bytes_stored={stats['bytes_stored']}"
        )
        if ledger is not None:
            meta = ledger.read_meta() or {}
            meta["cache_stats"] = stats
            ledger.write_meta(meta)
    if ledger is not None:
        print(f"ledger: {ledger.path}")
        print(f"next: python -m repro report {ledger.run_dir}")

    if serial is not None:
        identical = all(
            _results_match(a, b)
            for a, b in zip(serial.results, parallel.results)
        )
        speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
        print(
            f"speedup: {speedup:.2f}x at workers={args.workers} "
            f"({serial.wall_seconds:.2f}s serial vs "
            f"{parallel.wall_seconds:.2f}s parallel)"
        )
        print(f"bit-identical results across worker counts: {identical}")
        if not identical:
            print("DETERMINISM VIOLATION: parallel results differ from serial")
            return 1
    return 1 if failures else 0


def cmd_atlas(args: argparse.Namespace) -> int:
    """Run the security-boundary atlas sweep and write boundary maps."""
    import dataclasses
    import json
    from pathlib import Path

    from repro.analysis import atlas as atlas_mod

    if args.resume and not args.run_id:
        print("--resume needs --run-id (the run directory to pick up)")
        return 2
    if args.resume:
        args.ledger = True
    if args.retries < 0:
        print("--retries must be >= 0 (0 disables retrying)")
        return 2

    spec = atlas_mod.smoke_spec() if args.smoke else atlas_mod.default_spec()
    overrides = {}

    def csv(raw, conv):
        return tuple(conv(v.strip()) for v in raw.split(",") if v.strip())

    if args.families is not None:
        overrides["families"] = csv(args.families, str)
    if args.learners is not None:
        overrides["learners"] = csv(args.learners, str)
    if args.representations is not None:
        overrides["representations"] = csv(args.representations, str)
    if args.ns is not None:
        overrides["ns"] = csv(args.ns, int)
    if args.ks is not None:
        overrides["ks"] = csv(args.ks, int)
    if args.noises is not None:
        overrides["noise_sigmas"] = csv(args.noises, float)
    if args.budgets is not None:
        overrides["budgets"] = csv(args.budgets, int)
    if args.replicates is not None:
        overrides["replicates"] = args.replicates
    if args.test_size is not None:
        overrides["test_size"] = args.test_size
    if overrides:
        spec = dataclasses.replace(spec, **overrides)

    cells = atlas_mod.expand_grid(spec)
    trials = atlas_mod.num_trials(spec)
    print(
        f"atlas: {len(cells)} cells x {spec.replicates} replicate(s) = "
        f"{trials} trials, master seed {args.seed}"
    )

    ledger = None
    if args.ledger:
        from repro.telemetry import RunLedger, new_run_id

        run_id = args.run_id or new_run_id("atlas")
        ledger = RunLedger(Path(args.runs_dir) / run_id)
        meta = ledger.read_meta()
        if args.resume and meta is not None:
            mismatches = _resume_mismatches(meta, "atlas", spec, trials, args.seed)
            if mismatches:
                print(
                    f"cannot --resume {ledger.run_dir}: its meta.json "
                    "disagrees with this invocation"
                )
                for line in mismatches:
                    print("  " + line)
                return 2
        if not (args.resume and meta is not None):
            ledger.write_meta(
                {
                    "workload": "atlas",
                    "spec": dataclasses.asdict(spec),
                    "trials": trials,
                    "workers": args.workers,
                    "shards": args.shards,
                    "master_seed": args.seed,
                }
            )

    payload, report = atlas_mod.run_atlas(
        spec,
        master_seed=args.seed,
        workers=args.workers,
        shards=args.shards,
        ledger=ledger,
        resume=args.resume,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        frontier=args.frontier,
        retry=_retry_policy(args.retries),
    )
    print(f"run: {report.summary()}")
    for map_ in payload["maps"]:
        frontier_bits = ", ".join(
            f"k={k}: "
            + (
                f"broken at m={map_['frontier'][str(k)]}"
                if map_["frontier"][str(k)] is not None
                else "holds"
            )
            for k in map_["ks"]
        )
        print(
            f"  {map_['family']}/{map_['learner']}/{map_['representation']} "
            f"n={map_['n']} sigma={map_['noise_sigma']:g}: {frontier_bits}"
        )
    print(f"boundary-map digest: {payload['digest']}")

    failures = report.failures()
    for failed in failures:
        print(f"FAILED {failed.error.summary()} (attempts={failed.attempts})")

    out_dir = None
    if args.out is not None:
        out_dir = Path(args.out)
    elif ledger is not None:
        out_dir = ledger.run_dir
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        map_path = out_dir / "boundary_map.json"
        map_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        (out_dir / "atlas.md").write_text(atlas_mod.render_markdown(payload))
        print(f"boundary map: {map_path}")
        print(f"heatmaps: {out_dir / 'atlas.md'}")
    if args.bench_out is not None:
        bench = {
            "generated_by": "python -m repro atlas"
            + (" --smoke" if args.smoke else ""),
            "cases": atlas_mod.bench_cases(payload),
        }
        bench_path = Path(args.bench_out)
        bench_path.parent.mkdir(parents=True, exist_ok=True)
        bench_path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
        print(f"bench payload: {bench_path}")
    if ledger is not None:
        print(f"ledger: {ledger.path}")
        print(f"next: python -m repro report {ledger.run_dir}")
    return 1 if failures else 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.report import generate_report

    payload, markdown = generate_report(args.run_dir, write=not args.no_write)
    print(markdown)
    if not args.no_write:
        print(f"wrote {args.run_dir}/report.md and report.json")
    if not payload["all_within_bounds"]:
        return 1
    return 0


def cmd_docs_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.tooling.benchdocs import render_benchmarks_markdown

    content = render_benchmarks_markdown(args.results)
    out = Path(args.out)
    if args.check:
        current = out.read_text() if out.exists() else ""
        if current != content:
            print(
                f"DRIFT: {out} does not match benchmarks/results/ — "
                f"run `python -m repro docs-bench` and commit the result"
            )
            return 1
        print(f"{out} is up to date with {args.results}")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(content)
    print(f"wrote {out}")
    return 0


def cmd_lint_docstrings(args: argparse.Namespace) -> int:
    from repro.tooling.docscov import measure_docstring_coverage

    report = measure_docstring_coverage(
        args.paths, include_private=args.include_private
    )
    print(report.render(verbose=args.verbose))
    if report.percent < args.fail_under:
        print(
            f"FAIL: docstring coverage {report.percent:.1f}% is below the "
            f"--fail-under threshold {args.fail_under:.1f}%"
        )
        return 1
    return 0


def cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.kernels.bench import (
        default_cases,
        render_table,
        run_kernel_bench,
        smoke_cases,
        write_results,
    )

    cases = smoke_cases() if args.smoke else default_cases()
    payload = run_kernel_bench(cases)
    print(render_table(payload))
    if args.out is not None:
        from pathlib import Path

        write_results(payload, Path(args.out))
        print(f"wrote {args.out}")

    failures = []
    for rec in payload["cases"]:
        if not rec["equivalent"]:
            failures.append(f"{rec['name']}: kernel output differs from naive path")
        if args.smoke:
            timing = rec.get("fit") or rec.get("transform")
            if timing["speedup"] < 1.0:
                failures.append(
                    f"{rec['name']}: kernel slower than naive "
                    f"({timing['speedup']:.2f}x)"
                )
    for failure in failures:
        print("FAIL:", failure)
    return 1 if failures else 0


def cmd_bench_fleet(args: argparse.Namespace) -> int:
    from repro.kernels.fleet_bench import (
        default_cases,
        render_table,
        run_fleet_bench,
        smoke_cases,
        write_results,
    )

    cases = smoke_cases() if args.smoke else default_cases()
    payload = run_fleet_bench(cases)
    print(render_table(payload))
    if args.out is not None:
        from pathlib import Path

        write_results(payload, Path(args.out))
        print(f"wrote {args.out}")

    failures = []
    for rec in payload["cases"]:
        if not rec["equivalent"]:
            failures.append(
                f"{rec['name']}: fleet responses differ from the per-instance loop"
            )
        if args.smoke and rec["eval"]["speedup"] < 1.0:
            failures.append(
                f"{rec['name']}: stacked GEMM slower than the loop "
                f"({rec['eval']['speedup']:.2f}x)"
            )
    for failure in failures:
        print("FAIL:", failure)
    return 1 if failures else 0


def cmd_bench_store(args: argparse.Namespace) -> int:
    from repro.runtime.store_bench import (
        default_cases,
        render_table,
        run_store_bench,
        smoke_cases,
        write_results,
    )

    cases = smoke_cases() if args.smoke else default_cases()
    payload = run_store_bench(cases)
    print(render_table(payload))
    if args.out is not None:
        from pathlib import Path

        write_results(payload, Path(args.out))
        print(f"wrote {args.out}")

    failures = []
    for rec in payload["cases"]:
        if not rec["equivalent"]:
            failures.append(
                f"{rec['name']}: values not bit-identical across runs"
            )
        if args.smoke:
            timing = rec.get("warm_start") or rec.get("sharding")
            if timing["speedup"] < 1.0:
                failures.append(
                    f"{rec['name']}: no speedup ({timing['speedup']:.2f}x)"
                )
    for failure in failures:
        print("FAIL:", failure)
    return 1 if failures else 0


def cmd_bench_active(args: argparse.Namespace) -> int:
    from repro.learning.active_bench import (
        default_cases,
        render_table,
        run_active_bench,
        smoke_cases,
        write_results,
    )

    cases = smoke_cases() if args.smoke else default_cases()
    payload = run_active_bench(cases)
    print(render_table(payload))
    if args.out is not None:
        from pathlib import Path

        write_results(payload, Path(args.out))
        print(f"wrote {args.out}")

    failures = []
    for rec in payload["cases"]:
        if not rec["equivalent"]:
            failures.append(
                f"{rec['name']}: metered query counts differ from the "
                "nominal budget"
            )
    if not any(rec["atlas"]["adaptive_beats_passive"] for rec in payload["cases"]):
        failures.append(
            "no atlas cell shows an adaptive strategy reaching passive "
            "accuracy with fewer metered queries"
        )
    for failure in failures:
        print("FAIL:", failure)
    return 1 if failures else 0


def cmd_conformance(args: argparse.Namespace) -> int:
    from repro.analysis.tables import TableBuilder
    from repro.conformance import run_suite

    ledger = None
    if args.ledger:
        from pathlib import Path

        from repro.telemetry import RunLedger, new_run_id

        run_id = args.run_id or new_run_id("conformance")
        ledger = RunLedger(Path(args.runs_dir) / run_id)

    scale = 0.1 if args.smoke else 1.0
    suite = run_suite(
        master_seed=args.seed,
        family_alpha=args.family_alpha,
        ledger=ledger,
        scale=scale,
    )

    table = TableBuilder(
        ["status", "kind", "relation", "alpha", "seconds"],
        title=(
            f"conformance suite: {len(suite.reports)} relations, "
            f"family-wise alpha {suite.family_alpha:g}"
            + (" (smoke tier)" if args.smoke else "")
        ),
    )
    for report in suite.reports:
        table.add_row(
            "ok" if report.passed else "VIOLATED",
            report.kind,
            report.name,
            f"{report.alpha:.2e}" if report.alpha else "exact",
            f"{report.seconds:.2f}",
        )
    print(table.render())

    for report in suite.violations:
        print(f"\nVIOLATION {report.name}: {report.error}")
        print(f"  claim: {report.description}")
        print(
            "  replay: seed = np.random.SeedSequence("
            f"{report.seed['entropy']!r}, "
            f"spawn_key={tuple(report.seed['spawn_key'])!r})"
        )
    if ledger is not None:
        print(f"ledger: {ledger.path}")
    print(
        f"\n{suite.num_statistical} statistical relations share the "
        f"{suite.family_alpha:g} family-wise false-failure budget; "
        f"{len(suite.reports) - suite.num_statistical} exact relations "
        "consume none (docs/TESTING.md has the derivation)."
    )
    if suite.violations:
        print(f"FAIL: {len(suite.violations)} relation(s) violated")
        return 1
    print("all relations hold")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the assessment job server (``docs/SERVICE.md``).

    Long-running: serves until SIGINT/SIGTERM.  With ``--port 0`` the
    chosen port is printed on stdout and written (with host and pid) to
    ``<data-dir>/service.json`` so scripts can discover the server.
    """
    from repro.service import run_serve

    if args.max_concurrent < 1:
        print("--max-concurrent must be >= 1")
        return 2
    if args.default_quota is not None and args.default_quota < 0:
        print("--default-quota must be non-negative")
        return 2
    return run_serve(
        args.data_dir,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        default_quota=args.default_quota,
        resume=args.resume,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pitfalls in ML-based adversary modeling — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    assess = sub.add_parser("assess", help="Table I adversary-model assessment")
    assess.add_argument("--n", type=int, default=64, help="challenge length")
    assess.add_argument("--k", type=int, default=4, help="XOR chain count")
    assess.add_argument("--eps", type=float, default=0.05, help="accuracy parameter")
    assess.add_argument("--delta", type=float, default=0.05, help="confidence parameter")
    assess.add_argument(
        "--junta-size", type=int, default=4, help="Bourgain junta size for Corollary 2"
    )
    assess.set_defaults(func=cmd_assess)

    audit = sub.add_parser(
        "audit", help="flag unsound claim transfers between adversary models"
    )
    audit.add_argument("--n", type=int, default=64)
    audit.add_argument("--k", type=int, default=9)
    audit.add_argument("--eps", type=float, default=0.05)
    audit.add_argument("--delta", type=float, default=0.05)
    audit.add_argument("--junta-size", type=int, default=3)
    audit.set_defaults(func=cmd_audit)

    demo = sub.add_parser("attack-demo", help="SAT attack on a locked c17")
    demo.add_argument("--key-length", type=int, default=5)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_attack_demo)

    trials = sub.add_parser(
        "trials", help="parallel trial fan-out benchmark with determinism check"
    )
    trials.add_argument(
        "--workload",
        choices=("curve", "active", "lmn", "km", "sq", "fault", "fleet", "skew"),
        default="curve",
        help="which trial workload to fan out",
    )
    trials.add_argument("--trials", type=int, default=32, help="number of trials")
    trials.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for the parallel run (per shard with --shards)",
    )
    trials.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent work-stealing process pools; each writes its own "
        "ledger-shardNN.jsonl, merged transparently on read/resume",
    )
    trials.add_argument(
        "--n", type=int, default=None, help="challenge length (workload default)"
    )
    trials.add_argument(
        "--k",
        type=int,
        default=None,
        help="XOR chain count (1 = plain arbiter; workload default)",
    )
    trials.add_argument(
        "--budgets",
        type=str,
        default="100,400,1600",
        help="comma-separated CRP budgets (curve workload)",
    )
    trials.add_argument(
        "--test-size", type=int, default=None, help="held-out evaluation size"
    )
    trials.add_argument(
        "--strategy",
        choices=("passive", "uncertainty", "committee", "fastslow"),
        default="uncertainty",
        help="query-selection strategy (active workload)",
    )
    trials.add_argument(
        "--batch",
        type=int,
        default=16,
        help="queries per fit/select round (active workload)",
    )
    trials.add_argument(
        "--pool-size",
        type=int,
        default=None,
        help="candidate pool size (active workload; default covers the "
        "largest budget twice over)",
    )
    trials.add_argument(
        "--committee",
        type=int,
        default=3,
        help="committee size for --strategy committee (active workload)",
    )
    trials.add_argument(
        "--fast-fraction",
        type=float,
        default=0.5,
        help="budget fraction spent in the random fast phase for "
        "--strategy fastslow (active workload)",
    )
    trials.add_argument(
        "--noise-rate",
        type=float,
        default=0.0,
        help="per-answer flip probability on the oracle (active workload)",
    )
    trials.add_argument(
        "--degree", type=int, default=3, help="LMN spectrum degree (lmn workload)"
    )
    trials.add_argument(
        "--m", type=int, default=25_000, help="LMN training sample size (lmn workload)"
    )
    trials.add_argument(
        "--theta", type=float, default=0.25, help="KM coefficient threshold (km workload)"
    )
    trials.add_argument(
        "--bucket-samples", type=int, default=2048, help="KM bucket-weight samples"
    )
    trials.add_argument(
        "--coefficient-samples", type=int, default=8192, help="KM coefficient samples"
    )
    trials.add_argument(
        "--tau", type=float, default=0.05, help="SQ oracle tolerance (sq workload)"
    )
    trials.add_argument(
        "--mode",
        choices=("sampling", "adversarial"),
        default="sampling",
        help="SQ oracle mode (sq workload)",
    )
    trials.add_argument(
        "--family",
        choices=("arbiter", "xor", "br", "ltf"),
        default="arbiter",
        help="PUF family of the population (fleet workload)",
    )
    trials.add_argument(
        "--size",
        type=int,
        default=None,
        help="instances per fleet (fleet workload; default 256, 48 smoke)",
    )
    trials.add_argument(
        "--tier",
        choices=("float64", "float32", "int8"),
        default="float64",
        help="dtype tier for the stacked GEMM (fleet workload)",
    )
    trials.add_argument(
        "--noise-sigma",
        type=float,
        default=0.05,
        help="measurement noise on the margins (fleet workload)",
    )
    trials.add_argument(
        "--repetitions",
        type=int,
        default=5,
        help="majority-vote repetitions (fleet workload)",
    )
    trials.add_argument(
        "--fleet-m",
        type=int,
        default=None,
        help="challenges per fleet trial (fleet workload; default 2000, 400 smoke)",
    )
    trials.add_argument(
        "--fail-at",
        type=str,
        default="",
        help="comma-separated trial indices that raise (fault workload)",
    )
    trials.add_argument(
        "--sleep-seconds",
        type=float,
        default=0.2,
        help="per-trial sleep, a window for kill tests (fault workload)",
    )
    trials.add_argument(
        "--slow-count",
        type=int,
        default=4,
        help="leading trial indices that sleep --slow-seconds (skew workload)",
    )
    trials.add_argument(
        "--slow-seconds",
        type=float,
        default=0.4,
        help="sleep for the slow trials (skew workload)",
    )
    trials.add_argument(
        "--fast-seconds",
        type=float,
        default=0.01,
        help="sleep for the fast trials (skew workload)",
    )
    trials.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="memoise workload artifacts in an ArtifactStore at this "
        "directory (fleet workload); warm reruns replay instead of "
        "regenerating",
    )
    trials.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="LRU size cap for --cache-dir (default: unbounded, or "
        "$REPRO_CACHE_MAX_BYTES)",
    )
    trials.add_argument(
        "--cache-stats",
        action="store_true",
        help="print artifact-store hit/miss/eviction/bytes counters after "
        "the run and record them in the ledger meta.json",
    )
    trials.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the workload to a seconds-fast CI tier (fleet workload)",
    )
    trials.add_argument("--seed", type=int, default=0, help="master seed")
    trials.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per trial after infrastructure failures (worker "
        "death, timeout), on top of the first attempt; 0 disables "
        "retrying; trial exceptions are never retried",
    )
    trials.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        help="seconds before a pooled trial counts as hung (default: no limit)",
    )
    trials.add_argument(
        "--resume",
        action="store_true",
        help="replay completed trials from the run's ledger (needs --run-id); "
        "only missing or infra-failed indices re-execute",
    )
    trials.add_argument(
        "--skip-serial",
        action="store_true",
        help="skip the serial reference run (no speedup/identity check)",
    )
    trials.add_argument(
        "--ledger",
        action="store_true",
        help="write a run ledger under --runs-dir for `python -m repro report`",
    )
    trials.add_argument(
        "--runs-dir", type=str, default="runs", help="parent directory for run ledgers"
    )
    trials.add_argument(
        "--run-id",
        type=str,
        default=None,
        help="explicit run id (default: <workload>-<timestamp>)",
    )
    trials.add_argument(
        "--eps", type=float, default=0.05, help="PAC accuracy for the bound checks"
    )
    trials.add_argument(
        "--delta", type=float, default=0.05, help="PAC confidence for the bound checks"
    )
    trials.set_defaults(func=cmd_trials)

    report = sub.add_parser(
        "report", help="aggregate a run ledger vs the pac.bounds predictions"
    )
    report.add_argument("run_dir", type=str, help="run directory (runs/<run_id>)")
    report.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without writing report.md/report.json",
    )
    report.set_defaults(func=cmd_report)

    docs_bench = sub.add_parser(
        "docs-bench",
        help="regenerate docs/BENCHMARKS.md from benchmarks/results/BENCH_*.json",
    )
    docs_bench.add_argument(
        "--results",
        type=str,
        default="benchmarks/results",
        help="directory holding the BENCH_*.json baselines",
    )
    docs_bench.add_argument(
        "--out", type=str, default="docs/BENCHMARKS.md", help="markdown output path"
    )
    docs_bench.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if the committed page differs from a fresh render",
    )
    docs_bench.set_defaults(func=cmd_docs_bench)

    lint = sub.add_parser(
        "lint-docstrings",
        help="AST docstring-coverage gate (interrogate equivalent)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=[
            "src/repro/telemetry",
            "src/repro/kernels",
            "src/repro/runtime",
            "src/repro/conformance",
            "src/repro/learning/active.py",
            "src/repro/learning/active_bench.py",
            "src/repro/learning/gradient_attack.py",
            "src/repro/learning/reliability_attack.py",
            "src/repro/pufs/cdc_xor.py",
            "src/repro/analysis/atlas.py",
        ],
        help="files or directories to measure",
    )
    lint.add_argument(
        "--fail-under",
        type=float,
        default=90.0,
        help="minimum acceptable coverage percentage",
    )
    lint.add_argument(
        "--include-private",
        action="store_true",
        help="also require docstrings on _private definitions and __init__",
    )
    lint.add_argument(
        "--verbose", action="store_true", help="list each missing docstring"
    )
    lint.set_defaults(func=cmd_lint_docstrings)

    bench = sub.add_parser(
        "bench-kernels",
        help="time the character kernel vs the old per-subset loops",
    )
    bench.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the JSON payload here (e.g. benchmarks/results/BENCH_kernels.json)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="run the seconds-fast CI subset and fail unless the kernel is "
        "equivalent and at least as fast as the naive path",
    )
    bench.set_defaults(func=cmd_bench_kernels)

    bench_fleet = sub.add_parser(
        "bench-fleet",
        help="time the per-instance loop vs the stacked-GEMM fleet kernels",
    )
    bench_fleet.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the JSON payload here (e.g. benchmarks/results/BENCH_fleet.json)",
    )
    bench_fleet.add_argument(
        "--smoke",
        action="store_true",
        help="run the seconds-fast CI subset and fail unless the fleet path is "
        "equivalent and at least as fast as the per-instance loop",
    )
    bench_fleet.set_defaults(func=cmd_bench_fleet)

    bench_store = sub.add_parser(
        "bench-store",
        help="time warm-start sweep replay and work-stealing shard scaling",
    )
    bench_store.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the JSON payload here (e.g. benchmarks/results/BENCH_store.json)",
    )
    bench_store.add_argument(
        "--smoke",
        action="store_true",
        help="run the seconds-fast CI subset and fail unless results are "
        "bit-identical and at least as fast as the baseline",
    )
    bench_store.set_defaults(func=cmd_bench_store)

    bench_active = sub.add_parser(
        "bench-active",
        help="map the adaptive-vs-passive query atlas under metered budgets",
    )
    bench_active.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the JSON payload here (e.g. benchmarks/results/BENCH_active.json)",
    )
    bench_active.add_argument(
        "--smoke",
        action="store_true",
        help="run the seconds-fast CI subset and fail unless query accounting "
        "is exact and some adaptive strategy beats the passive baseline",
    )
    bench_active.set_defaults(func=cmd_bench_active)

    atlas_p = sub.add_parser(
        "atlas",
        help="security-boundary atlas: sweep (family, learner, "
        "representation, n, k, sigma, m) cells into boundary maps "
        "(see docs/ATLAS.md)",
    )
    atlas_p.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: the 108-cell smoke grid with tight learner schedules",
    )
    atlas_p.add_argument("--seed", type=int, default=0, help="master seed")
    atlas_p.add_argument(
        "--workers", type=int, default=1, help="worker processes per shard"
    )
    atlas_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent work-stealing pools (per-shard crash-safe ledgers)",
    )
    atlas_p.add_argument(
        "--retries", type=int, default=0, help="retries per infra failure"
    )
    atlas_p.add_argument(
        "--families",
        type=str,
        default=None,
        help="comma-separated PUF families (xor, cdc_xor)",
    )
    atlas_p.add_argument(
        "--learners",
        type=str,
        default=None,
        help="comma-separated learners (lr, mlp, reliability)",
    )
    atlas_p.add_argument(
        "--representations",
        type=str,
        default=None,
        help="comma-separated challenge representations (parity, raw)",
    )
    atlas_p.add_argument(
        "--ns", type=str, default=None, help="comma-separated challenge lengths"
    )
    atlas_p.add_argument(
        "--ks", type=str, default=None, help="comma-separated chain counts"
    )
    atlas_p.add_argument(
        "--noises",
        type=str,
        default=None,
        help="comma-separated measurement-noise sigmas",
    )
    atlas_p.add_argument(
        "--budgets",
        type=str,
        default=None,
        help="comma-separated sample budgets m",
    )
    atlas_p.add_argument(
        "--replicates", type=int, default=None, help="replicates per cell"
    )
    atlas_p.add_argument(
        "--test-size", type=int, default=None, help="held-out evaluation size"
    )
    atlas_p.add_argument(
        "--frontier",
        type=float,
        default=0.75,
        help="accuracy at which a cell counts as broken",
    )
    atlas_p.add_argument(
        "--ledger",
        action="store_true",
        help="write the crash-safe JSONL trial ledger under --runs-dir",
    )
    atlas_p.add_argument(
        "--runs-dir", type=str, default="runs", help="parent directory for runs"
    )
    atlas_p.add_argument(
        "--run-id", type=str, default=None, help="explicit run id"
    )
    atlas_p.add_argument(
        "--resume",
        action="store_true",
        help="replay completed trials from --run-id's ledger, run the rest",
    )
    atlas_p.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="ArtifactStore directory for CRP-pool warm starts",
    )
    atlas_p.add_argument(
        "--cache-max-bytes", type=int, default=None, help="cache size cap"
    )
    atlas_p.add_argument(
        "--out",
        type=str,
        default=None,
        help="directory for boundary_map.json + atlas.md "
        "(default: the run directory when --ledger is set)",
    )
    atlas_p.add_argument(
        "--bench-out",
        type=str,
        default=None,
        help="write the BENCH_atlas.json payload here",
    )
    atlas_p.set_defaults(func=cmd_atlas)

    conf = sub.add_parser(
        "conformance",
        help="run the differential + metamorphic conformance suite "
        "(exit 1 on violation)",
    )
    conf.add_argument("--seed", type=int, default=0, help="master seed")
    conf.add_argument(
        "--family-alpha",
        type=float,
        default=1e-6,
        help="family-wise false-failure probability for the whole run",
    )
    conf.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: run statistical relations at 10%% sample scale",
    )
    conf.add_argument(
        "--ledger",
        action="store_true",
        help="write one JSONL record per relation under --runs-dir",
    )
    conf.add_argument(
        "--runs-dir", type=str, default="runs", help="parent directory for run ledgers"
    )
    conf.add_argument(
        "--run-id",
        type=str,
        default=None,
        help="explicit run id (default: conformance-<timestamp>)",
    )
    conf.set_defaults(func=cmd_conformance)

    serve = sub.add_parser(
        "serve",
        help="run the assessment job server (HTTP + WebSocket over "
        "TrialRunner; see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8321, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--data-dir",
        type=str,
        default="runs/service",
        help="service state root: jobs/, quotas.json, service.json",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=1,
        help="jobs running simultaneously; the rest wait in the priority queue",
    )
    serve.add_argument(
        "--default-quota",
        type=int,
        default=None,
        help="cumulative oracle-query limit per API key "
        "(default: unlimited, usage still metered)",
    )
    serve.add_argument(
        "--no-resume",
        dest="resume",
        action="store_false",
        help="do not re-adopt incomplete persisted jobs on start",
    )
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line front end: ``python -m repro``.

Subcommands:

* ``assess`` — Table I adversary-model assessment for an XOR Arbiter PUF::

      python -m repro assess --n 64 --k 6 --eps 0.05 --delta 0.05

* ``attack-demo`` — a 30-second tour: lock c17, run the SAT attack,
  print the recovered key.

* ``trials`` — the parallel experiment runtime: fan a learning-curve
  workload out over worker processes and report per-trial timings,
  wall-clock speedup over serial, and the bit-identity check::

      python -m repro trials --trials 32 --workers 4

* ``bench-kernels`` — time the shared character kernel against the old
  per-subset loops and regenerate the machine-readable baseline::

      python -m repro bench-kernels --out benchmarks/results/BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def cmd_assess(args: argparse.Namespace) -> int:
    from repro.analysis.tables import TableBuilder
    from repro.pac import PACParameters, XorArbiterSpec, table1_rows

    params = PACParameters(eps=args.eps, delta=args.delta)
    rows = table1_rows(
        XorArbiterSpec(args.n, args.k), params, junta_size=args.junta_size
    )
    table = TableBuilder(
        ["adversary model", "log10(#CRPs)", "verdict", "rationale"],
        title=(
            f"Adversary-model assessment: {args.k}-XOR, {args.n}-bit arbiter "
            f"PUF (eps={args.eps}, delta={args.delta})"
        ),
    )
    for row in rows:
        table.add_row(
            row.adversary.name,
            f"{row.crp_bound_log10:.1f}",
            row.verdict.value,
            row.rationale,
        )
    print(table.render())
    verdicts = {row.verdict for row in rows}
    if len(verdicts) > 1:
        print(
            "\nVerdicts disagree across adversary models — quoting any single "
            "row as 'the' security level is the pitfall the paper warns about."
        )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.pac import PACParameters, XorArbiterSpec, table1_rows
    from repro.pac.audit import audit_assessments

    params = PACParameters(eps=args.eps, delta=args.delta)
    rows = table1_rows(
        XorArbiterSpec(args.n, args.k), params, junta_size=args.junta_size
    )
    print("assessments:")
    for row in rows:
        print("  " + row.summary())
    unsound = audit_assessments(rows)
    if not unsound:
        print("\nno unsound cross-quotations at this parameter point.")
        return 0
    print(f"\n{len(unsound)} UNSOUND quotations (the pitfalls):")
    for audit in unsound:
        print("  " + audit.summary())
    return 0


def cmd_attack_demo(args: argparse.Namespace) -> int:
    from repro.locking import SATAttack, c17, random_lock

    rng = np.random.default_rng(args.seed)
    locked = random_lock(c17(), args.key_length, rng)
    result = SATAttack().run(locked)
    print(f"locked c17 with {args.key_length} key bits; secret {locked.correct_key}")
    print(result.summary())
    if result.key is not None:
        print(f"recovered key: {result.key}")
        print(
            "functionally correct:",
            locked.key_is_functionally_correct(result.key),
        )
    return 0 if result.success else 1


def cmd_trials(args: argparse.Namespace) -> int:
    from repro.analysis.tables import TableBuilder
    from repro.runtime import TrialRunner
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    budgets = tuple(int(b) for b in args.budgets.split(","))
    spec = LearningCurveSpec(
        n=args.n, k=args.k, budgets=budgets, test_size=args.test_size
    )
    kwargs = {"spec": spec}
    print(
        f"workload: {args.trials} learning-curve trials "
        f"({'arbiter' if args.k == 1 else f'{args.k}-XOR arbiter'}, n={args.n}, "
        f"budgets={budgets}, test_size={args.test_size}), master seed {args.seed}"
    )

    serial = None
    if not args.skip_serial:
        serial = TrialRunner(workers=1).run(
            learning_curve_trial, args.trials, args.seed, kwargs
        )
        print(f"serial:   {serial.summary()}")
    parallel = TrialRunner(workers=args.workers).run(
        learning_curve_trial, args.trials, args.seed, kwargs
    )
    print(f"parallel: {parallel.summary()}")

    table = TableBuilder(
        ["trial", "seconds"] + [f"acc @ {b}" for b in sorted(budgets)],
        title="per-trial timings and accuracies (parallel run)",
    )
    for result in parallel.results:
        table.add_row(
            result.index,
            f"{result.seconds:.3f}",
            *[f"{a:.4f}" for a in result.value],
        )
    print(table.render())

    if serial is not None:
        identical = all(
            np.array_equal(a, b)
            for a, b in zip(serial.values(), parallel.values())
        )
        speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
        print(
            f"speedup: {speedup:.2f}x at workers={args.workers} "
            f"({serial.wall_seconds:.2f}s serial vs "
            f"{parallel.wall_seconds:.2f}s parallel)"
        )
        print(f"bit-identical results across worker counts: {identical}")
        if not identical:
            print("DETERMINISM VIOLATION: parallel results differ from serial")
            return 1
    return 0


def cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.kernels.bench import (
        default_cases,
        render_table,
        run_kernel_bench,
        smoke_cases,
        write_results,
    )

    cases = smoke_cases() if args.smoke else default_cases()
    payload = run_kernel_bench(cases)
    print(render_table(payload))
    if args.out is not None:
        from pathlib import Path

        write_results(payload, Path(args.out))
        print(f"wrote {args.out}")

    failures = []
    for rec in payload["cases"]:
        if not rec["equivalent"]:
            failures.append(f"{rec['name']}: kernel output differs from naive path")
        if args.smoke:
            timing = rec.get("fit") or rec.get("transform")
            if timing["speedup"] < 1.0:
                failures.append(
                    f"{rec['name']}: kernel slower than naive "
                    f"({timing['speedup']:.2f}x)"
                )
    for failure in failures:
        print("FAIL:", failure)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pitfalls in ML-based adversary modeling — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    assess = sub.add_parser("assess", help="Table I adversary-model assessment")
    assess.add_argument("--n", type=int, default=64, help="challenge length")
    assess.add_argument("--k", type=int, default=4, help="XOR chain count")
    assess.add_argument("--eps", type=float, default=0.05, help="accuracy parameter")
    assess.add_argument("--delta", type=float, default=0.05, help="confidence parameter")
    assess.add_argument(
        "--junta-size", type=int, default=4, help="Bourgain junta size for Corollary 2"
    )
    assess.set_defaults(func=cmd_assess)

    audit = sub.add_parser(
        "audit", help="flag unsound claim transfers between adversary models"
    )
    audit.add_argument("--n", type=int, default=64)
    audit.add_argument("--k", type=int, default=9)
    audit.add_argument("--eps", type=float, default=0.05)
    audit.add_argument("--delta", type=float, default=0.05)
    audit.add_argument("--junta-size", type=int, default=3)
    audit.set_defaults(func=cmd_audit)

    demo = sub.add_parser("attack-demo", help="SAT attack on a locked c17")
    demo.add_argument("--key-length", type=int, default=5)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_attack_demo)

    trials = sub.add_parser(
        "trials", help="parallel trial fan-out benchmark with determinism check"
    )
    trials.add_argument("--trials", type=int, default=32, help="number of trials")
    trials.add_argument(
        "--workers", type=int, default=4, help="worker processes for the parallel run"
    )
    trials.add_argument("--n", type=int, default=48, help="challenge length")
    trials.add_argument(
        "--k", type=int, default=1, help="XOR chain count (1 = plain arbiter)"
    )
    trials.add_argument(
        "--budgets",
        type=str,
        default="100,400,1600",
        help="comma-separated CRP budgets",
    )
    trials.add_argument("--test-size", type=int, default=2000)
    trials.add_argument("--seed", type=int, default=0, help="master seed")
    trials.add_argument(
        "--skip-serial",
        action="store_true",
        help="skip the serial reference run (no speedup/identity check)",
    )
    trials.set_defaults(func=cmd_trials)

    bench = sub.add_parser(
        "bench-kernels",
        help="time the character kernel vs the old per-subset loops",
    )
    bench.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the JSON payload here (e.g. benchmarks/results/BENCH_kernels.json)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="run the seconds-fast CI subset and fail unless the kernel is "
        "equivalent and at least as fast as the naive path",
    )
    bench.set_defaults(func=cmd_bench_kernels)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

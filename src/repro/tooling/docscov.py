"""AST-based docstring-coverage measurement (an ``interrogate`` stand-in).

The container has no docstring-lint package installed, so this module
implements the needed subset directly on :mod:`ast`: walk Python sources,
count the definitions that *should* carry a docstring, and report the
fraction that do.  ``python -m repro lint-docstrings`` turns the report
into a CI gate with a ``--fail-under`` threshold.

What counts as a documentable definition:

* the module itself;
* every class, regardless of name;
* every function or method whose name is public (no leading underscore) —
  plus private ones when ``include_private`` is set.

Dunder methods other than ``__init__`` are skipped (their contracts are
the language's, not ours), as are ``@overload`` stubs and functions
nested inside other functions (closures are implementation detail, not
API surface — the same default as ``interrogate``'s
``--ignore-nested-functions``).
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union


@dataclasses.dataclass
class FileCoverage:
    """Coverage of one source file."""

    path: str
    total: int
    documented: int
    missing: Tuple[str, ...]  # qualified names lacking docstrings

    @property
    def percent(self) -> float:
        """Documented fraction in percent (an empty file counts as 100)."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.documented / self.total


@dataclasses.dataclass
class CoverageReport:
    """Aggregated docstring coverage over a file set."""

    files: List[FileCoverage]

    @property
    def total(self) -> int:
        """Documentable definitions across all files."""
        return sum(f.total for f in self.files)

    @property
    def documented(self) -> int:
        """Definitions that carry a docstring."""
        return sum(f.documented for f in self.files)

    @property
    def percent(self) -> float:
        """Overall coverage in percent (empty set counts as 100)."""
        if self.total == 0:
            return 100.0
        return 100.0 * self.documented / self.total

    def render(self, verbose: bool = False) -> str:
        """A terminal summary; ``verbose`` lists every missing docstring."""
        lines = []
        for f in sorted(self.files, key=lambda f: f.path):
            lines.append(
                f"{f.path}: {f.documented}/{f.total} ({f.percent:.1f}%)"
            )
            if verbose:
                for name in f.missing:
                    lines.append(f"  missing: {name}")
        lines.append(
            f"TOTAL: {self.documented}/{self.total} ({self.percent:.1f}%)"
        )
        return "\n".join(lines)


def _is_overload_stub(node: ast.AST) -> bool:
    decorators = getattr(node, "decorator_list", [])
    for dec in decorators:
        name = dec.attr if isinstance(dec, ast.Attribute) else getattr(dec, "id", "")
        if name == "overload":
            return True
    return False


def _wants_docstring(node: ast.AST, include_private: bool) -> bool:
    if isinstance(node, ast.ClassDef):
        return include_private or not node.name.startswith("_")
    name = node.name  # FunctionDef / AsyncFunctionDef
    if name.startswith("__") and name.endswith("__"):
        return name == "__init__" and include_private
    if name.startswith("_"):
        return include_private
    return not _is_overload_stub(node)


def _walk_definitions(
    tree: ast.Module, include_private: bool
) -> Iterable[Tuple[str, ast.AST]]:
    """(qualified name, node) for every documentable definition in order."""
    stack: List[Tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qualified = f"{prefix}{child.name}"
                if _wants_docstring(child, include_private):
                    yield qualified, child
                # Methods of private classes are still documentable if
                # public themselves, so recurse into every class; but do
                # not descend into function bodies — closures are not
                # API surface.
                if isinstance(child, ast.ClassDef):
                    stack.append((f"{qualified}.", child))


def measure_file(
    path: Union[str, Path], include_private: bool = False
) -> FileCoverage:
    """Docstring coverage of a single ``.py`` file."""
    path = Path(path)
    tree = ast.parse(path.read_text(), filename=str(path))
    total = 1  # the module docstring
    documented = 1 if ast.get_docstring(tree) else 0
    missing: List[str] = [] if documented else ["<module>"]
    for qualified, node in _walk_definitions(tree, include_private):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(qualified)
    return FileCoverage(
        path=str(path), total=total, documented=documented, missing=tuple(missing)
    )


def measure_docstring_coverage(
    paths: Sequence[Union[str, Path]], include_private: bool = False
) -> CoverageReport:
    """Coverage over files and (recursively) directories of ``.py`` sources."""
    files: List[FileCoverage] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            sources = sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            sources = [entry]
        else:
            raise ValueError(f"not a Python source or directory: {entry}")
        for source in sources:
            files.append(measure_file(source, include_private))
    return CoverageReport(files=files)

"""Repository tooling: docs generation and docstring-coverage linting.

Small, dependency-free helpers behind the ``python -m repro`` maintenance
subcommands:

* :mod:`repro.tooling.docscov` — an AST-based docstring-coverage linter
  (an ``interrogate`` equivalent; nothing beyond the stdlib is assumed),
  wired into CI as ``python -m repro lint-docstrings``.
* :mod:`repro.tooling.benchdocs` — renders ``docs/BENCHMARKS.md`` from the
  machine-readable ``benchmarks/results/BENCH_*.json`` baselines
  (``python -m repro docs-bench``), with a ``--check`` mode CI uses to
  fail on drift between committed docs and committed baselines.
"""

from repro.tooling.benchdocs import render_benchmarks_markdown
from repro.tooling.docscov import CoverageReport, measure_docstring_coverage

__all__ = [
    "CoverageReport",
    "measure_docstring_coverage",
    "render_benchmarks_markdown",
]

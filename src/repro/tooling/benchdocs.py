"""Render ``docs/BENCHMARKS.md`` from the committed benchmark baselines.

The machine-readable baselines under ``benchmarks/results/BENCH_*.json``
are the source of truth; the markdown page is *generated* from them by
``python -m repro docs-bench`` and committed alongside.  CI re-renders
the page and fails on any diff (``--check``), so the docs can never
silently drift from the numbers they claim to describe.

Rendering is deterministic: files and keys are sorted, floats use fixed
formats, and nothing environment-dependent (timestamps, hostnames) is
emitted — the same JSON always produces byte-identical markdown.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

HEADER = """\
# Benchmarks

**Generated file — do not edit.**  This page is rendered from the
machine-readable baselines in `benchmarks/results/BENCH_*.json` by
`python -m repro docs-bench`; CI regenerates it and fails on drift.
To refresh after changing a kernel, rerun the producing command noted in
each section and then `python -m repro docs-bench --write`.
"""


def _fmt(value: object) -> str:
    """Deterministic cell formatting (fixed float precision)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _flatten(record: Dict[str, object], prefix: str = "") -> Dict[str, object]:
    """One level of dotted flattening: {'fit': {'speedup': 2}} -> 'fit.speedup'."""
    flat: Dict[str, object] = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            for sub, subvalue in value.items():
                if not isinstance(subvalue, (dict, list)):
                    flat[f"{name}.{sub}"] = subvalue
        elif not isinstance(value, list):
            flat[name] = value
    return flat


def _case_table(cases: List[Dict[str, object]]) -> List[str]:
    """A markdown table over the union of the cases' flattened scalar keys."""
    flats = [_flatten(case) for case in cases]
    columns: List[str] = []
    for flat in flats:
        for key in flat:
            if key not in columns:
                columns.append(key)
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for flat in flats:
        lines.append(
            "| " + " | ".join(_fmt(flat.get(c, "")) for c in columns) + " |"
        )
    return lines


def _render_payload(name: str, payload: Dict[str, object]) -> List[str]:
    lines = [f"## `{name}`", ""]
    producer = payload.get("generated_by")
    if producer:
        lines += [f"Producer: `{producer}`", ""]
    scalars = {
        k: v
        for k, v in payload.items()
        if k not in ("cases", "generated_by") and not isinstance(v, (dict, list))
    }
    for key in sorted(scalars):
        lines.append(f"* `{key}` = {_fmt(scalars[key])}")
    if scalars:
        lines.append("")
    cases = payload.get("cases")
    if isinstance(cases, list) and cases and isinstance(cases[0], dict):
        lines += _case_table(cases)
    elif isinstance(payload.get("results"), dict):
        results = payload["results"]
        lines += ["| metric | value |", "|---|---|"]
        for key in sorted(results):
            lines.append(f"| {key} | {_fmt(results[key])} |")
    lines.append("")
    return lines


def render_benchmarks_markdown(results_dir: Union[str, Path]) -> str:
    """The full BENCHMARKS.md content for every ``BENCH_*.json`` baseline."""
    results_dir = Path(results_dir)
    baselines = sorted(results_dir.glob("BENCH_*.json"))
    lines = [HEADER]
    if not baselines:
        lines.append("_No `BENCH_*.json` baselines found._\n")
    for path in baselines:
        payload = json.loads(path.read_text())
        lines += _render_payload(path.name, payload)
    return "\n".join(lines).rstrip() + "\n"

"""Compound locking: RLL plus a point-function block.

The configuration the AppSAT paper [5] actually targets: vendors combine a
high-corruption scheme (RLL, breaks quickly under the SAT attack but
really hides logic) with a SAT-resilient point-function scheme (SARLock /
Anti-SAT, low corruption).  AppSAT's observation — directly relevant to
the paper's exact-vs-approximate axis — is that an *approximate* attacker
recovers the RLL half and simply tolerates the point-function half's
2^-|key| error, reducing the compound scheme to its weak component.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.locking.combinational import LockedCircuit, random_lock
from repro.locking.netlist import Netlist
from repro.locking.sarlock import sarlock

PointScheme = Callable[..., LockedCircuit]


def compound_lock(
    netlist: Netlist,
    rll_bits: int,
    point_bits: int,
    rng: Optional[np.random.Generator] = None,
    point_scheme: PointScheme = sarlock,
) -> LockedCircuit:
    """RLL inside, a point-function scheme outside.

    The key vector is the concatenation (RLL key, point-function key).
    ``point_bits`` must not exceed the original circuit's input count (the
    comparator watches primary inputs, which come first in the locked
    netlist's input list).
    """
    if point_bits > netlist.num_inputs:
        raise ValueError(
            f"point_bits {point_bits} exceeds the {netlist.num_inputs} "
            "primary inputs"
        )
    rng = np.random.default_rng() if rng is None else rng
    inner = random_lock(netlist, rll_bits, rng, key_prefix="rllkey")
    outer = point_scheme(inner.locked, point_bits, rng, key_prefix="pfkey")
    # The outer scheme's 'oracle' is the RLL-locked circuit; rebuild the
    # compound view against the true original with the concatenated key.
    # Note: the outer scheme's notion of correctness assumed the inner key
    # inputs were primary inputs; the compound correct key pins them.
    correct_key = np.concatenate([inner.correct_key, outer.correct_key])
    return LockedCircuit(
        locked=outer.locked,
        original=netlist,
        correct_key=correct_key,
        key_inputs=inner.key_inputs + outer.key_inputs,
    )

"""CNF formulas and Tseitin encoding of netlists.

Variables are positive integers; literals are signed integers (DIMACS
convention).  :func:`tseitin_encode` maps every signal of a netlist to a
variable and emits the standard gate consistency clauses, which is what
the SAT attack builds its miters from.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.locking.netlist import GateType, Netlist


class CNF:
    """A growable CNF formula with a fresh-variable counter."""

    def __init__(self) -> None:
        self.clauses: List[Tuple[int, ...]] = []
        self.num_vars = 0

    def new_var(self) -> int:
        """Allocate a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (iterable of non-zero signed literals)."""
        clause = tuple(literals)
        if not clause:
            raise ValueError("empty clause would make the formula trivially UNSAT")
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def to_dimacs(self) -> str:
        """Serialise in DIMACS format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


def _and_clauses(out: int, ins: Sequence[int]) -> List[Tuple[int, ...]]:
    clauses = [tuple([out] + [-i for i in ins])]
    clauses.extend((-out, i) for i in ins)
    return clauses


def _or_clauses(out: int, ins: Sequence[int]) -> List[Tuple[int, ...]]:
    clauses = [tuple([-out] + list(ins))]
    clauses.extend((out, -i) for i in ins)
    return clauses


def _xor_clauses(out: int, ins: Sequence[int]) -> List[Tuple[int, ...]]:
    """out <-> XOR(ins), expanded over all sign patterns (fan-in kept small)."""
    n = len(ins)
    clauses = []
    for signs in itertools.product((1, -1), repeat=n):
        # Pattern: input i is true iff signs[i] == 1; the XOR of the
        # pattern is the parity of the number of true inputs.
        parity = sum(1 for s in signs if s == 1) % 2
        # Forbid assignments inconsistent with out = parity of true inputs.
        # If inputs match 'signs' pattern negated... derive via implication:
        # clause = (~(ins pattern) or out==xor).  Encode both polarities.
        out_lit = out if parity == 1 else -out
        clause = tuple(-s * v for s, v in zip(signs, ins)) + (out_lit,)
        clauses.append(clause)
    return clauses


def gate_clauses(
    gate_type: GateType, out: int, ins: Sequence[int]
) -> List[Tuple[int, ...]]:
    """Tseitin consistency clauses for one gate."""
    if gate_type is GateType.BUF:
        return [(-out, ins[0]), (out, -ins[0])]
    if gate_type is GateType.NOT:
        return [(-out, -ins[0]), (out, ins[0])]
    if gate_type is GateType.AND:
        return _and_clauses(out, ins)
    if gate_type is GateType.NAND:
        aux_free = _and_clauses(-out, ins)
        return aux_free
    if gate_type is GateType.OR:
        return _or_clauses(out, ins)
    if gate_type is GateType.NOR:
        return _or_clauses(-out, ins)
    if gate_type is GateType.XOR:
        return _xor_clauses(out, ins)
    if gate_type is GateType.XNOR:
        return _xor_clauses(-out, ins)
    raise AssertionError(f"unhandled gate type {gate_type}")


def tseitin_encode(
    netlist: Netlist,
    cnf: CNF,
    var_map: Dict[str, int] | None = None,
) -> Dict[str, int]:
    """Encode a netlist into ``cnf``; returns the signal -> variable map.

    Pass a partially filled ``var_map`` to share variables across several
    encodings (this is how the SAT-attack miter ties the two circuit copies
    to the same key variables).
    """
    var_map = {} if var_map is None else dict(var_map)
    for signal in netlist.signals():
        if signal not in var_map:
            var_map[signal] = cnf.new_var()
    for gate in netlist.gates:
        out = var_map[gate.output]
        ins = [var_map[s] for s in gate.inputs]
        if gate.gate_type in (GateType.XOR, GateType.XNOR) and len(ins) > 6:
            raise ValueError(
                "XOR/XNOR fan-in above 6 would blow up the Tseitin encoding; "
                "decompose the gate first"
            )
        cnf.extend(gate_clauses(gate.gate_type, out, ins))
    return var_map

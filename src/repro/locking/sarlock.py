"""SARLock-style point-function locking.

The defence that motivated the exact-vs-approximate discussion the paper
inherits from [4]/[5]: a comparator flips one output only when the applied
input equals the (wrong) key, so every wrong key errs on exactly one input
pattern.  Consequences, both reproduced in the benchmarks:

* the exact SAT attack needs ~2^|key| - 1 DIPs (each DIP eliminates one
  wrong key) — "SAT-resilient";
* AppSAT settles almost immediately on a key with 2^-|key| output error —
  approximation-resiliency is NOT implied by exact-inference-resiliency
  (Section IV-A's point, after Rivest [2]).

Construction (flip signal added to the first output):

    eq_x  = AND_i XNOR(x_i, key_i)          -- input matches applied key
    eq_k  = AND_i (key_i == k*_i)           -- applied key is correct
    flip  = AND(eq_x, NOT(eq_k))
    y_0   = y_0_orig XOR flip
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.locking.combinational import LockedCircuit
from repro.locking.netlist import Gate, GateType, Netlist


def sarlock(
    netlist: Netlist,
    key_length: int,
    rng: Optional[np.random.Generator] = None,
    key_prefix: str = "keyinput",
) -> LockedCircuit:
    """Apply SARLock with ``key_length`` key bits to ``netlist``.

    The comparator watches the first ``key_length`` primary inputs, so
    ``key_length <= num_inputs`` is required.
    """
    if key_length < 1:
        raise ValueError("key_length must be at least 1")
    if key_length > netlist.num_inputs:
        raise ValueError(
            f"key_length {key_length} exceeds the {netlist.num_inputs} inputs"
        )
    rng = np.random.default_rng() if rng is None else rng
    correct_key = rng.integers(0, 2, size=key_length).astype(np.int8)
    key_inputs = tuple(f"{key_prefix}{i}" for i in range(key_length))
    watched = netlist.inputs[:key_length]

    gates: List[Gate] = list(netlist.gates)
    # eq_x: the watched input bits equal the applied key bits.
    eq_x_bits = []
    for i, (x_sig, k_sig) in enumerate(zip(watched, key_inputs)):
        sig = f"__sar_eqx{i}"
        gates.append(Gate(sig, GateType.XNOR, (x_sig, k_sig)))
        eq_x_bits.append(sig)
    eq_x = "__sar_eqx" if len(eq_x_bits) > 1 else eq_x_bits[0]
    if len(eq_x_bits) > 1:
        gates.append(Gate(eq_x, GateType.AND, tuple(eq_x_bits)))

    # eq_k: the applied key equals the hard-wired correct key.
    eq_k_bits = []
    for i, k_sig in enumerate(key_inputs):
        sig = f"__sar_eqk{i}"
        if correct_key[i]:
            gates.append(Gate(sig, GateType.BUF, (k_sig,)))
        else:
            gates.append(Gate(sig, GateType.NOT, (k_sig,)))
        eq_k_bits.append(sig)
    eq_k = "__sar_eqk" if len(eq_k_bits) > 1 else eq_k_bits[0]
    if len(eq_k_bits) > 1:
        gates.append(Gate(eq_k, GateType.AND, tuple(eq_k_bits)))

    gates.append(Gate("__sar_neqk", GateType.NOT, (eq_k,)))
    gates.append(Gate("__sar_flip", GateType.AND, (eq_x, "__sar_neqk")))

    # XOR the flip into the first output.
    first_out = netlist.outputs[0]
    flipped = f"{first_out}__sar"
    gates.append(Gate(flipped, GateType.XOR, (first_out, "__sar_flip")))
    outputs = (flipped,) + tuple(netlist.outputs[1:])

    locked = Netlist(
        inputs=tuple(netlist.inputs) + key_inputs,
        outputs=outputs,
        gates=gates,
        name=f"{netlist.name}_sarlock{key_length}",
    )
    return LockedCircuit(
        locked=locked,
        original=netlist,
        correct_key=correct_key,
        key_inputs=key_inputs,
    )

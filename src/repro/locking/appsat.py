"""AppSAT: approximate deobfuscation [5].

AppSAT interleaves SAT-attack DIP rounds with random-query reinforcement
and terminates early once a candidate key's estimated error drops below a
threshold.  The returned key is an *eps-approximation* of the correct one —
precisely the approximate-inference notion (Rivest [2]) whose contrast
with exact inference drives Section IV-A of the paper: a locking scheme
can be provably resilient to exact recovery yet fall to AppSAT.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.locking.combinational import LockedCircuit
from repro.locking.sat_attack import _MiterEngine


@dataclasses.dataclass
class AppSATResult:
    """Outcome of an AppSAT run."""

    key: Optional[np.ndarray]
    estimated_error: float
    exact_termination: bool  # True if the miter became UNSAT (exact key)
    iterations: int
    oracle_queries: int

    def summary(self) -> str:
        kind = "exact" if self.exact_termination else "approximate"
        return (
            f"{kind} key after {self.iterations} rounds, "
            f"estimated error {self.estimated_error:.2%} "
            f"({self.oracle_queries} oracle queries)"
        )


class AppSAT:
    """Approximate SAT attack with random-query reinforcement.

    Parameters
    ----------
    error_threshold:
        Terminate once the candidate key's estimated output error rate on
        random inputs falls to or below this value.
    settlement_rounds:
        Number of consecutive low-error estimates required (AppSAT's
        "settlement" heuristic against lucky samples).
    queries_per_round:
        Random oracle queries used per error estimate; failing samples are
        added as constraints (the reinforcement step).
    max_iterations:
        Cap on DIP rounds.
    """

    def __init__(
        self,
        error_threshold: float = 0.01,
        settlement_rounds: int = 2,
        queries_per_round: int = 64,
        max_iterations: int = 2_000,
    ) -> None:
        if not 0.0 <= error_threshold < 1.0:
            raise ValueError("error_threshold must be in [0, 1)")
        if settlement_rounds < 1:
            raise ValueError("settlement_rounds must be at least 1")
        if queries_per_round < 1:
            raise ValueError("queries_per_round must be at least 1")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.error_threshold = error_threshold
        self.settlement_rounds = settlement_rounds
        self.queries_per_round = queries_per_round
        self.max_iterations = max_iterations

    def run(
        self,
        target: LockedCircuit,
        rng: Optional[np.random.Generator] = None,
    ) -> AppSATResult:
        """Run AppSAT against a locked circuit with oracle access."""
        rng = np.random.default_rng() if rng is None else rng
        engine = _MiterEngine(target)
        n = len(engine.plain_inputs)
        oracle_queries = 0
        settled = 0
        iterations = 0
        best_key: Optional[np.ndarray] = None
        best_error = 1.0

        for iterations in range(1, self.max_iterations + 1):
            dip = engine.find_dip()
            if dip is None:
                key = engine.extract_key()
                return AppSATResult(
                    key=key,
                    estimated_error=0.0,
                    exact_termination=True,
                    iterations=iterations - 1,
                    oracle_queries=oracle_queries,
                )
            outputs = target.oracle(dip[None, :])[0]
            oracle_queries += 1
            engine.add_io_constraint(dip, outputs)

            # Reinforcement + error estimation on the current candidate key.
            key = engine.extract_key()
            if key is None:
                continue
            samples = rng.integers(0, 2, size=(self.queries_per_round, n)).astype(
                np.int8
            )
            want = target.oracle(samples)
            oracle_queries += self.queries_per_round
            got = target.evaluate_locked(samples, key)
            wrong = np.any(got != want, axis=1)
            error = float(np.mean(wrong))
            if error < best_error:
                best_key, best_error = key, error
            # Reinforce with a few failing patterns.
            for idx in np.nonzero(wrong)[0][:4]:
                engine.add_io_constraint(samples[idx], want[idx])
            if error <= self.error_threshold:
                settled += 1
                if settled >= self.settlement_rounds:
                    return AppSATResult(
                        key=key,
                        estimated_error=error,
                        exact_termination=False,
                        iterations=iterations,
                        oracle_queries=oracle_queries,
                    )
            else:
                settled = 0

        return AppSATResult(
            key=best_key,
            estimated_error=best_error,
            exact_termination=False,
            iterations=iterations,
            oracle_queries=oracle_queries,
        )

"""Benchmark circuit generators.

c17 (the smallest ISCAS-85 benchmark, ubiquitous in the locking
literature), random gate-level DAGs, and two arithmetic blocks that give
the attacks structured targets.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.locking.netlist import Gate, GateType, Netlist


def c17() -> Netlist:
    """The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates."""
    gates = [
        Gate("G10", GateType.NAND, ("G1", "G3")),
        Gate("G11", GateType.NAND, ("G3", "G6")),
        Gate("G16", GateType.NAND, ("G2", "G11")),
        Gate("G19", GateType.NAND, ("G11", "G7")),
        Gate("G22", GateType.NAND, ("G10", "G16")),
        Gate("G23", GateType.NAND, ("G16", "G19")),
    ]
    return Netlist(
        inputs=("G1", "G2", "G3", "G6", "G7"),
        outputs=("G22", "G23"),
        gates=gates,
        name="c17",
    )


def random_circuit(
    num_inputs: int,
    num_gates: int,
    num_outputs: int,
    rng: Optional[np.random.Generator] = None,
    two_input_only: bool = True,
) -> Netlist:
    """A random combinational DAG.

    Each gate draws a random type and fans in from earlier signals, so the
    result is acyclic by construction.  Outputs are drawn from the last
    gates (guaranteeing non-trivial logic cones).
    """
    if num_inputs < 2 or num_gates < 1 or num_outputs < 1:
        raise ValueError("need >= 2 inputs, >= 1 gate, >= 1 output")
    if num_outputs > num_gates:
        raise ValueError("cannot have more outputs than gates")
    rng = np.random.default_rng() if rng is None else rng
    inputs = [f"I{i}" for i in range(num_inputs)]
    signals: List[str] = list(inputs)
    gates: List[Gate] = []
    binary_types = [
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    ]
    for g in range(num_gates):
        out = f"N{g}"
        if not two_input_only and rng.random() < 0.15:
            gate_type = GateType.NOT
            fanin = (signals[int(rng.integers(0, len(signals)))],)
        else:
            gate_type = binary_types[int(rng.integers(0, len(binary_types)))]
            a, b = rng.choice(len(signals), size=2, replace=False)
            fanin = (signals[int(a)], signals[int(b)])
        gates.append(Gate(out, gate_type, fanin))
        signals.append(out)
    tail = [g.output for g in gates[-max(num_outputs * 2, num_outputs) :]]
    outputs = [
        tail[int(i)]
        for i in rng.choice(len(tail), size=num_outputs, replace=False)
    ]
    return Netlist(inputs, outputs, gates, name=f"rand_{num_inputs}x{num_gates}")


def ripple_carry_adder(width: int) -> Netlist:
    """A ``width``-bit ripple-carry adder: inputs a0.., b0.., cin."""
    if width < 1:
        raise ValueError("width must be at least 1")
    inputs = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)] + ["cin"]
    gates: List[Gate] = []
    carry = "cin"
    outputs: List[str] = []
    for i in range(width):
        a, b = f"a{i}", f"b{i}"
        axb = f"axb{i}"
        gates.append(Gate(axb, GateType.XOR, (a, b)))
        s = f"sum{i}"
        gates.append(Gate(s, GateType.XOR, (axb, carry)))
        outputs.append(s)
        t1, t2 = f"and_ab{i}", f"and_axc{i}"
        gates.append(Gate(t1, GateType.AND, (a, b)))
        gates.append(Gate(t2, GateType.AND, (axb, carry)))
        cout = f"c{i + 1}"
        gates.append(Gate(cout, GateType.OR, (t1, t2)))
        carry = cout
    outputs.append(carry)
    return Netlist(inputs, outputs, gates, name=f"rca{width}")


def multiplexer_tree(select_bits: int) -> Netlist:
    """A 2^s-to-1 multiplexer: data inputs d0.., select inputs s0.. (MSB first).

    Built as a tree of 2-to-1 muxes; a classic locking target because key
    gates on select lines mimic design-hiding."""
    if select_bits < 1:
        raise ValueError("need at least one select bit")
    num_data = 2**select_bits
    data = [f"d{i}" for i in range(num_data)]
    selects = [f"s{i}" for i in range(select_bits)]
    gates: List[Gate] = []
    aux = 0

    def mux2(a: str, b: str, sel: str) -> str:
        """out = a when sel=0, b when sel=1."""
        nonlocal aux
        aux += 1
        not_sel = f"__ns{aux}"
        lo = f"__lo{aux}"
        hi = f"__hi{aux}"
        out = f"__mx{aux}"
        gates.append(Gate(not_sel, GateType.NOT, (sel,)))
        gates.append(Gate(lo, GateType.AND, (a, not_sel)))
        gates.append(Gate(hi, GateType.AND, (b, sel)))
        gates.append(Gate(out, GateType.OR, (lo, hi)))
        return out

    layer = list(data)
    for level in range(select_bits):
        sel = selects[select_bits - 1 - level]  # LSB selects first
        layer = [
            mux2(layer[2 * i], layer[2 * i + 1], sel)
            for i in range(len(layer) // 2)
        ]
    return Netlist(data + selects, [layer[0]], gates, name=f"mux{num_data}")


def array_multiplier(width: int) -> Netlist:
    """An unsigned ``width x width`` array multiplier (AND partial products
    + ripple-carry reduction).  Outputs p0 (LSB) .. p{2w-1}."""
    if width < 1:
        raise ValueError("width must be at least 1")
    a = [f"a{i}" for i in range(width)]
    b = [f"b{i}" for i in range(width)]
    gates: List[Gate] = []

    # Partial products pp[i][j] = a_i AND b_j.
    pp = [[f"pp{i}_{j}" for j in range(width)] for i in range(width)]
    for i in range(width):
        for j in range(width):
            gates.append(Gate(pp[i][j], GateType.AND, (a[i], b[j])))

    aux = 0

    def full_add(x: str, y: str, cin: str) -> Tuple[str, str]:
        nonlocal aux
        aux += 1
        s1 = f"__fs{aux}"
        s = f"__sum{aux}"
        c1 = f"__c1{aux}"
        c2 = f"__c2{aux}"
        cout = f"__co{aux}"
        gates.append(Gate(s1, GateType.XOR, (x, y)))
        gates.append(Gate(s, GateType.XOR, (s1, cin)))
        gates.append(Gate(c1, GateType.AND, (x, y)))
        gates.append(Gate(c2, GateType.AND, (s1, cin)))
        gates.append(Gate(cout, GateType.OR, (c1, c2)))
        return s, cout

    def half_add(x: str, y: str) -> Tuple[str, str]:
        nonlocal aux
        aux += 1
        s = f"__hs{aux}"
        c = f"__hc{aux}"
        gates.append(Gate(s, GateType.XOR, (x, y)))
        gates.append(Gate(c, GateType.AND, (x, y)))
        return s, c

    # Column-wise reduction (carry-save, then the columns resolve since we
    # fold carries into the next column's operand list).
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(pp[i][j])
    outputs: List[str] = []
    for col in range(2 * width):
        operands = columns[col]
        while len(operands) > 1:
            if len(operands) >= 3:
                s, c = full_add(operands[0], operands[1], operands[2])
                operands = operands[3:] + [s]
            else:
                s, c = half_add(operands[0], operands[1])
                operands = operands[2:] + [s]
            if col + 1 < 2 * width:
                columns[col + 1].append(c)
        if operands:
            outputs.append(operands[0])
        else:
            # Empty top column (no carry): tie to constant 0.
            zero = f"__zero{col}"
            gates.append(Gate(zero, GateType.XOR, (a[0], a[0])))
            outputs.append(zero)
    return Netlist(a + b, outputs, gates, name=f"mul{width}")


#: The PRESENT block cipher's 4-bit S-box (a real cryptographic nonlinear
#: block, synthesised to gates on demand).
PRESENT_SBOX = (
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
    0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
)


def present_sbox() -> Netlist:
    """The PRESENT S-box as a 4-in/4-out netlist (via two-level synthesis).

    A standard lightweight-crypto component; gives the locking attacks a
    target with real cryptographic non-linearity rather than random logic.
    """
    from repro.locking.synthesis import synthesize_truth_table

    table = np.zeros((16, 4), dtype=np.int8)
    for x, y in enumerate(PRESENT_SBOX):
        for b in range(4):
            table[x, b] = (y >> (3 - b)) & 1
    return synthesize_truth_table(
        table,
        input_names=[f"x{i}" for i in range(4)],
        output_names=[f"s{i}" for i in range(4)],
        name="present_sbox",
    )


def comparator(width: int) -> Netlist:
    """Equality comparator: output 1 iff a == b (bitwise)."""
    if width < 1:
        raise ValueError("width must be at least 1")
    inputs = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    gates: List[Gate] = []
    eq_signals: List[str] = []
    for i in range(width):
        eq = f"eq{i}"
        gates.append(Gate(eq, GateType.XNOR, (f"a{i}", f"b{i}")))
        eq_signals.append(eq)
    if width == 1:
        out = eq_signals[0]
    else:
        out = "all_eq"
        gates.append(Gate(out, GateType.AND, tuple(eq_signals)))
    return Netlist(inputs, [out], gates, name=f"cmp{width}")

"""Truth-table to netlist synthesis (two-level SOP with light optimisation).

The bridge between behavioural models (FSMs, truth tables) and the
gate-level world the locking attacks operate on.  Synthesis is two-level
sum-of-products with three cheap optimisations: constant outputs, single
literal/loner detection, and cube merging on adjacent minterms (a one-pass
Quine-McCluskey step, enough for the FSM next-state functions at our
scale).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.locking.netlist import Gate, GateType, Netlist

Cube = Tuple[int, ...]  # per input: 0 (complemented), 1 (true), 2 (don't care)


def _minterms_of(column: np.ndarray) -> List[int]:
    return [int(i) for i in np.nonzero(column)[0]]


def _merge_once(cubes: Set[Cube]) -> Set[Cube]:
    """One pass of adjacent-cube merging; returns the reduced set."""
    merged: Set[Cube] = set()
    used: Set[Cube] = set()
    cube_list = sorted(cubes)
    for i, a in enumerate(cube_list):
        for b in cube_list[i + 1 :]:
            diff = [idx for idx, (x, y) in enumerate(zip(a, b)) if x != y]
            if len(diff) == 1 and a[diff[0]] != 2 and b[diff[0]] != 2:
                c = list(a)
                c[diff[0]] = 2
                merged.add(tuple(c))
                used.add(a)
                used.add(b)
    survivors = (cubes - used) | merged
    return survivors


def minimize_cubes(minterms: Sequence[int], n: int, passes: int = 4) -> List[Cube]:
    """Minterms -> a (non-optimal but small) cube cover."""
    cubes: Set[Cube] = set()
    for m in minterms:
        cubes.add(tuple((m >> (n - 1 - i)) & 1 for i in range(n)))
    for _ in range(passes):
        reduced = _merge_once(cubes)
        if reduced == cubes:
            break
        cubes = reduced
    return sorted(cubes)


def synthesize_truth_table(
    table: np.ndarray,
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
    name: str = "synth",
) -> Netlist:
    """Synthesize a multi-output truth table into a netlist.

    ``table`` is a (2^n, outputs) 0/1 array in cube order (MSB-first row
    index, matching :func:`repro.booleanfuncs.encoding.enumerate_cube`).
    """
    table = np.asarray(table)
    if table.ndim == 1:
        table = table[:, None]
    rows, num_outputs = table.shape
    if rows == 0 or rows & (rows - 1):
        raise ValueError("truth table must have 2^n rows")
    if not np.all((table == 0) | (table == 1)):
        raise ValueError("truth table entries must be 0/1")
    n = rows.bit_length() - 1
    if n == 0:
        raise ValueError("need at least one input")
    inputs = (
        [f"x{i}" for i in range(n)] if input_names is None else list(input_names)
    )
    outputs = (
        [f"y{j}" for j in range(num_outputs)]
        if output_names is None
        else list(output_names)
    )
    if len(inputs) != n or len(outputs) != num_outputs:
        raise ValueError("name counts must match table dimensions")

    gates: List[Gate] = []
    aux = _AuxNames()
    inverted: Dict[str, str] = {}

    def inv(sig: str) -> str:
        if sig not in inverted:
            out = aux.fresh("not")
            gates.append(Gate(out, GateType.NOT, (sig,)))
            inverted[sig] = out
        return inverted[sig]

    const_zero: Optional[str] = None
    const_one: Optional[str] = None

    def zero() -> str:
        nonlocal const_zero
        if const_zero is None:
            const_zero = aux.fresh("zero")
            gates.append(Gate(const_zero, GateType.XOR, (inputs[0], inputs[0])))
        return const_zero

    def one() -> str:
        nonlocal const_one
        if const_one is None:
            const_one = aux.fresh("one")
            gates.append(Gate(const_one, GateType.XNOR, (inputs[0], inputs[0])))
        return const_one

    for j in range(num_outputs):
        column = table[:, j]
        minterms = _minterms_of(column)
        out_name = outputs[j]
        if not minterms:
            gates.append(Gate(out_name, GateType.BUF, (zero(),)))
            continue
        if len(minterms) == rows:
            gates.append(Gate(out_name, GateType.BUF, (one(),)))
            continue
        cubes = minimize_cubes(minterms, n)
        product_signals: List[str] = []
        for cube in cubes:
            literals = []
            for i, v in enumerate(cube):
                if v == 1:
                    literals.append(inputs[i])
                elif v == 0:
                    literals.append(inv(inputs[i]))
            if not literals:
                product_signals.append(one())
            elif len(literals) == 1:
                product_signals.append(literals[0])
            else:
                sig = aux.fresh("and")
                gates.append(Gate(sig, GateType.AND, tuple(literals)))
                product_signals.append(sig)
        if len(product_signals) == 1:
            gates.append(Gate(out_name, GateType.BUF, (product_signals[0],)))
        else:
            gates.append(Gate(out_name, GateType.OR, tuple(product_signals)))

    return Netlist(inputs, outputs, gates, name=name)


class _AuxNames:
    """Fresh internal signal names."""

    def __init__(self) -> None:
        self._counter = 0

    def fresh(self, hint: str) -> str:
        self._counter += 1
        return f"__{hint}{self._counter}"

"""Logic locking: circuits, locking schemes, and oracle-guided attacks.

The paper's second running example (besides PUFs) is IP logic locking
(Section II-A): combinational locking adds key-controlled gates, sequential
locking augments the FSM with obfuscation states.  Security analyses of
these schemes reduce to SAT [4], [5] — so this package provides the whole
stack from scratch:

* a gate-level netlist IR with a ``.bench`` reader/writer,
* a Tseitin CNF encoder and a CDCL SAT solver,
* random XOR/XNOR combinational locking,
* the oracle-guided SAT attack (exact key recovery) and AppSAT
  (approximate deobfuscation — the exact-vs-approximate distinction of
  Section IV-A),
* HARPOON-style sequential locking on Mealy machines, attackable with the
  L* learner of :mod:`repro.learning.angluin` (Section V-B).
"""

from repro.locking.netlist import Gate, GateType, Netlist
from repro.locking.bench_format import parse_bench, write_bench
from repro.locking.circuits import (
    array_multiplier,
    c17,
    comparator,
    multiplexer_tree,
    present_sbox,
    random_circuit,
    ripple_carry_adder,
)
from repro.locking.metrics import CorruptionReport, corruption_report
from repro.locking.cnf import CNF, tseitin_encode
from repro.locking.solver import SATSolver, Satisfiability
from repro.locking.combinational import LockedCircuit, random_lock
from repro.locking.antisat import antisat
from repro.locking.compound import compound_lock
from repro.locking.sarlock import sarlock
from repro.locking.sat_attack import SATAttack, SATAttackResult
from repro.locking.appsat import AppSAT, AppSATResult
from repro.locking.sequential import (
    LockedFSM,
    harpoon_lock,
    unlock_by_lstar,
)
from repro.locking.synthesis import synthesize_truth_table, minimize_cubes
from repro.locking.unroll import (
    LockedSequentialCircuit,
    lock_sequential,
    unroll,
)
from repro.locking.sequential_netlist import (
    SequentialCircuit,
    synthesize_mealy,
    encode_alphabet,
)

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "parse_bench",
    "write_bench",
    "c17",
    "present_sbox",
    "array_multiplier",
    "multiplexer_tree",
    "CorruptionReport",
    "corruption_report",
    "random_circuit",
    "ripple_carry_adder",
    "comparator",
    "CNF",
    "tseitin_encode",
    "SATSolver",
    "Satisfiability",
    "LockedCircuit",
    "random_lock",
    "sarlock",
    "antisat",
    "compound_lock",
    "SATAttack",
    "SATAttackResult",
    "AppSAT",
    "AppSATResult",
    "LockedFSM",
    "harpoon_lock",
    "unlock_by_lstar",
    "synthesize_truth_table",
    "minimize_cubes",
    "SequentialCircuit",
    "synthesize_mealy",
    "encode_alphabet",
    "LockedSequentialCircuit",
    "lock_sequential",
    "unroll",
]

"""A CDCL SAT solver.

Conflict-driven clause learning with two-watched-literal propagation,
1-UIP learning, non-chronological backjumping, VSIDS-style activity
decision heuristic, and Luby restarts.  Written for clarity first, but fast
enough for the locking attacks at benchmark scale (hundreds of variables,
thousands of clauses).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Satisfiability(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"


@dataclasses.dataclass
class SolverStats:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0


class SATSolver:
    """CDCL solver over clauses of signed integer literals.

    Typical use::

        solver = SATSolver(cnf.clauses, cnf.num_vars)
        status, model = solver.solve(assumptions=[5, -7])

    ``model`` maps each variable to a bool when SAT, else is None.
    Incremental use is supported through :meth:`add_clause` between
    :meth:`solve` calls (the attack loop adds DIP constraints this way).
    """

    _UNASSIGNED = 0

    def __init__(
        self, clauses: Iterable[Sequence[int]] = (), num_vars: int = 0
    ) -> None:
        self.num_vars = num_vars
        self._clauses: List[List[int]] = []
        # assignment[v]: 0 unassigned, 1 true, -1 false
        self._assign: List[int] = [0] * (num_vars + 1)
        self._level: List[int] = [0] * (num_vars + 1)
        self._reason: List[Optional[int]] = [None] * (num_vars + 1)  # clause idx
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._watches: Dict[int, List[int]] = {}
        self._activity: List[float] = [0.0] * (num_vars + 1)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self.stats = SolverStats()
        self._pending_empty = False
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    def _ensure_var(self, v: int) -> None:
        while self.num_vars < v:
            self.num_vars += 1
            self._assign.append(0)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicates and tautologies are normalised away."""
        seen = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            self._ensure_var(abs(lit))
            if -lit in seen:
                return  # tautology, always satisfied
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._pending_empty = True
            return
        self._attach(clause)

    def _attach(self, clause: List[int]) -> int:
        idx = len(self._clauses)
        self._clauses.append(clause)
        if len(clause) == 1:
            # Watch the single literal twice; handled in propagation setup.
            self._watches.setdefault(clause[0], []).append(idx)
        else:
            self._watches.setdefault(clause[0], []).append(idx)
            self._watches.setdefault(clause[1], []).append(idx)
        return idx

    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        """1 true, -1 false, 0 unassigned — of a literal."""
        v = self._assign[abs(lit)]
        return v if lit > 0 else -v

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        if self._value(lit) == -1:
            return False
        if self._value(lit) == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        head = getattr(self, "_qhead", 0)
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            self.stats.propagations += 1
            false_lit = -lit
            watch_list = self._watches.get(false_lit, [])
            new_list: List[int] = []
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                i += 1
                clause = self._clauses[ci]
                # Ensure false_lit is at position 1.
                if len(clause) >= 2:
                    if clause[0] == false_lit:
                        clause[0], clause[1] = clause[1], clause[0]
                    first = clause[0]
                    if self._value(first) == 1:
                        new_list.append(ci)
                        continue
                    # Look for a new watch.
                    found = False
                    for j in range(2, len(clause)):
                        if self._value(clause[j]) != -1:
                            clause[1], clause[j] = clause[j], clause[1]
                            self._watches.setdefault(clause[1], []).append(ci)
                            found = True
                            break
                    if found:
                        continue
                    new_list.append(ci)
                    if not self._enqueue(first, ci):
                        # Conflict: restore remaining watches and report.
                        new_list.extend(watch_list[i:])
                        self._watches[false_lit] = new_list
                        self._qhead = len(self._trail)
                        return ci
                else:
                    new_list.append(ci)
                    if not self._enqueue(clause[0], ci):
                        new_list.extend(watch_list[i:])
                        self._watches[false_lit] = new_list
                        self._qhead = len(self._trail)
                        return ci
            self._watches[false_lit] = new_list
        self._qhead = head
        return None

    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """1-UIP conflict analysis: returns (learned clause, backjump level)."""
        current_level = len(self._trail_lim)
        learned: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause = self._clauses[conflict]
        idx = len(self._trail) - 1
        while True:
            for l in clause:
                v = abs(l)
                if not seen[v] and self._level[v] > 0 and (lit is None or l != lit):
                    seen[v] = True
                    self._bump(v)
                    if self._level[v] >= current_level:
                        counter += 1
                    else:
                        learned.append(l)
            # Find the next seen literal on the trail.
            while not seen[abs(self._trail[idx])]:
                idx -= 1
            lit = self._trail[idx]
            v = abs(lit)
            seen[v] = False
            counter -= 1
            idx -= 1
            if counter == 0:
                learned.append(-lit)
                break
            reason = self._reason[v]
            assert reason is not None
            clause = self._clauses[reason]
            lit = lit  # the asserted literal itself is excluded above
        # Backjump level: second highest level in the learned clause.
        if len(learned) == 1:
            back_level = 0
        else:
            levels = sorted((self._level[abs(l)] for l in learned[:-1]), reverse=True)
            back_level = levels[0]
        # Put the asserting literal first.
        learned.reverse()
        return learned, back_level

    def _backjump(self, level: int) -> None:
        while len(self._trail_lim) > level:
            limit = self._trail_lim.pop()
            while len(self._trail) > limit:
                lit = self._trail.pop()
                var = abs(lit)
                self._assign[var] = 0
                self._reason[var] = None
        self._qhead = min(getattr(self, "_qhead", 0), len(self._trail))

    def _pick_branch(self) -> Optional[int]:
        best_var, best_act = None, -1.0
        for v in range(1, self.num_vars + 1):
            if self._assign[v] == 0 and self._activity[v] > best_act:
                best_var, best_act = v, self._activity[v]
        if best_var is None:
            return None
        return -best_var  # negative polarity first (common default)

    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> Tuple[Satisfiability, Optional[Dict[int, bool]]]:
        """Solve under optional assumptions.

        Returns (SAT, model) or (UNSAT, None).  ``max_conflicts`` raises
        RuntimeError when exhausted (a watchdog for pathological inputs).
        """
        if self._pending_empty:
            return Satisfiability.UNSAT, None
        self._backjump(0)
        self._qhead = 0
        # Re-propagate unit clauses from scratch.
        for idx, clause in enumerate(self._clauses):
            if len(clause) == 1 and self._value(clause[0]) == 0:
                if not self._enqueue(clause[0], idx):
                    return Satisfiability.UNSAT, None
        conflict = self._propagate()
        if conflict is not None:
            return Satisfiability.UNSAT, None

        # Assumptions become decisions at successive levels.
        for lit in assumptions:
            self._ensure_var(abs(lit))
            if self._value(lit) == -1:
                self._backjump(0)
                return Satisfiability.UNSAT, None
            if self._value(lit) == 0:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._backjump(0)
                    return Satisfiability.UNSAT, None
        assumption_level = len(self._trail_lim)

        luby_index = 0
        conflicts_until_restart = _luby(luby_index) * 64
        total_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                total_conflicts += 1
                if max_conflicts is not None and total_conflicts > max_conflicts:
                    self._backjump(0)
                    raise RuntimeError("conflict budget exhausted")
                if len(self._trail_lim) <= assumption_level:
                    self._backjump(0)
                    return Satisfiability.UNSAT, None
                learned, back_level = self._analyze(conflict)
                back_level = max(back_level, assumption_level)
                self._backjump(back_level)
                # Watched-literal invariant: watch the asserting literal and
                # the highest-level remaining literal.
                rest = sorted(
                    learned[1:],
                    key=lambda l: self._level[abs(l)],
                    reverse=True,
                )
                learned = [learned[0]] + rest
                idx = self._attach(list(learned))
                self.stats.learned_clauses += 1
                self._enqueue(learned[0], idx)
                self._decay()
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    self.stats.restarts += 1
                    luby_index += 1
                    conflicts_until_restart = _luby(luby_index) * 64
                    self._backjump(assumption_level)
            else:
                lit = self._pick_branch()
                if lit is None:
                    model = {
                        v: self._assign[v] == 1 for v in range(1, self.num_vars + 1)
                    }
                    self._verify_model(model)
                    self._backjump(0)
                    return Satisfiability.SAT, model
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)


    def _verify_model(self, model: Dict[int, bool]) -> None:
        """Assert every clause is satisfied (cheap final soundness check)."""
        for clause in self._clauses:
            if not any(
                model[abs(l)] == (l > 0) for l in clause
            ):
                raise AssertionError(
                    f"internal solver error: model violates clause {clause}"
                )


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (0-indexed argument)."""
    i += 1  # work 1-indexed
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1

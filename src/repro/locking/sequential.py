"""Sequential logic locking: FSM augmentation (HARPOON-style).

Sequential locking (Section II-A) adds a new set of states in front of the
functional FSM: after reset the machine sits in an *obfuscation mode* and
only a secret input sequence (the key) steers it into the functional
start state; any deviation traps it among the obfuscation states emitting
scrambled outputs.

Section V-B's point is reproduced by :func:`unlock_by_lstar`: the locked
machine is still a finite Mealy machine, so when the input alphabet is
polynomial an attacker with membership and (simulated) equivalence queries
learns its DFA representation outright — including the key path.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.mealy import MealyMachine
from repro.learning.angluin import (
    LStarLearner,
    LStarResult,
    exact_equivalence_oracle,
    sampled_equivalence_oracle,
)

Symbol = Hashable


@dataclasses.dataclass
class LockedFSM:
    """A sequentially locked Mealy machine plus its secret.

    Attributes
    ----------
    locked:
        The augmented machine (obfuscation states first, functional states
        appended after them).
    original:
        The functional machine.
    key_sequence:
        The input word that drives the locked machine from reset into the
        functional start state.
    """

    locked: MealyMachine
    original: MealyMachine
    key_sequence: Tuple[Symbol, ...]

    def unlocked_view(self) -> MealyMachine:
        """The locked machine re-rooted after applying the key sequence.

        Behaviourally equivalent to ``original`` iff the lock is sound.
        """
        state, _ = self.locked.run(self.key_sequence)
        return MealyMachine(
            self.locked.input_alphabet,
            self.locked.output_alphabet,
            self.locked.transitions,
            start=state,
        )


def harpoon_lock(
    machine: MealyMachine,
    key_sequence: Sequence[Symbol],
    rng: Optional[np.random.Generator] = None,
    decoy_output: Optional[Symbol] = None,
) -> LockedFSM:
    """Augment ``machine`` with an obfuscation-mode prefix of states.

    A chain of ``len(key_sequence)`` obfuscation states is prepended; each
    state advances along the chain on the next key symbol and falls back to
    a trap behaviour (random walk among the obfuscation states with a
    decoy output) on any other symbol.  The final key symbol transitions
    into the original start state.
    """
    key = tuple(key_sequence)
    if not key:
        raise ValueError("key_sequence must be non-empty")
    alphabet = machine.input_alphabet
    for symbol in key:
        if symbol not in alphabet:
            raise ValueError(f"key symbol {symbol!r} not in the input alphabet")
    rng = np.random.default_rng() if rng is None else rng
    outputs = machine.output_alphabet
    decoy = outputs[0] if decoy_output is None else decoy_output
    if decoy not in outputs:
        raise ValueError("decoy_output must come from the output alphabet")

    num_obf = len(key)
    offset = num_obf  # original state s becomes state s + offset
    transitions: List[Dict[Symbol, Tuple[int, Symbol]]] = []
    for i, key_symbol in enumerate(key):
        table: Dict[Symbol, Tuple[int, Symbol]] = {}
        for a in alphabet:
            if a == key_symbol:
                nxt = i + 1 if i + 1 < num_obf else machine.start + offset
                table[a] = (nxt, decoy)
            else:
                # Wrong symbol: stay lost among the obfuscation states.
                table[a] = (int(rng.integers(0, num_obf)), decoy)
        transitions.append(table)
    for state_table in machine.transitions:
        transitions.append(
            {a: (nxt + offset, out) for a, (nxt, out) in state_table.items()}
        )
    locked = MealyMachine(alphabet, outputs, transitions, start=0)
    return LockedFSM(locked=locked, original=machine, key_sequence=key)


@dataclasses.dataclass
class UnlockResult:
    """Outcome of the L*-based attack on a locked FSM."""

    lstar: LStarResult
    learned_states: int
    behaviour_matches: bool
    membership_queries: int


def unlock_by_lstar(
    locked_fsm: LockedFSM,
    target_output: Symbol,
    eps: float = 0.01,
    delta: float = 0.05,
    rng: Optional[np.random.Generator] = None,
    exact_eq: bool = True,
) -> UnlockResult:
    """Learn the locked machine's behaviour with Angluin's L* (Section V-B).

    The locked Mealy machine is reduced to the DFA of "last output equals
    ``target_output``" and learned with membership queries plus either an
    exact equivalence oracle (experiment mode) or Angluin's sampled one.
    Success means the attacker holds a complete behavioural model of the
    locked chip — obfuscation states, key path and all — without knowing
    the key.
    """
    rng = np.random.default_rng() if rng is None else rng
    target_dfa = locked_fsm.locked.to_output_dfa(target_output)
    learner = LStarLearner(locked_fsm.locked.input_alphabet)
    if exact_eq:
        eq = exact_equivalence_oracle(target_dfa)
    else:
        eq = sampled_equivalence_oracle(
            target_dfa.accepts,
            locked_fsm.locked.input_alphabet,
            eps=eps,
            delta=delta,
            rng=rng,
            max_length=2 * (locked_fsm.locked.num_states + 2),
        )
    result = learner.fit(target_dfa.accepts, eq)
    matches = result.dfa.equivalent(target_dfa.minimized()) if exact_eq else True
    return UnlockResult(
        lstar=result,
        learned_states=result.dfa.num_states,
        behaviour_matches=matches,
        membership_queries=result.membership_queries,
    )


def recover_key_sequence(
    locked_fsm: LockedFSM, max_length: Optional[int] = None
) -> Optional[Tuple[Symbol, ...]]:
    """Search for an input word that unlocks the machine (BFS).

    Uses only the locked machine and the original behaviour as reference —
    the check an attacker runs after L* to locate the functional mode.
    Returns the shortest unlocking word, or None if none exists within
    ``max_length`` (default: number of locked states).
    """
    locked = locked_fsm.locked
    limit = locked.num_states if max_length is None else max_length
    from collections import deque

    queue = deque([(locked.start, ())])
    seen = {locked.start}
    while queue:
        state, word = queue.popleft()
        if len(word) > limit:
            continue
        # Does the machine re-rooted at `state` behave like the original?
        candidate = MealyMachine(
            locked.input_alphabet, locked.output_alphabet, locked.transitions,
            start=state,
        )
        if candidate.equivalent(locked_fsm.original):
            return word
        for a in locked.input_alphabet:
            nxt, _ = locked.transitions[state][a]
            if nxt not in seen:
                seen.add(nxt)
                queue.append((nxt, word + (a,)))
    return None

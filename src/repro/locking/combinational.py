"""Combinational logic locking (random XOR/XNOR key-gate insertion).

The classic RLL scheme the SAT-attack literature [4], [5] evaluates: pick
wires, cut each one, and re-drive its loads through an XOR (key bit 0) or
XNOR (key bit 1) with a fresh key input.  With the correct key every key
gate is transparent; any wrong key corrupts some outputs on some inputs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.locking.netlist import Gate, GateType, Netlist


@dataclasses.dataclass
class LockedCircuit:
    """A locked netlist together with its secret.

    Attributes
    ----------
    locked:
        Netlist whose primary inputs are the original inputs followed by
        the key inputs (named ``key_inputs``).
    original:
        The unlocked design (the attack oracle evaluates this).
    correct_key:
        The key bit vector (0/1) that restores original functionality.
    key_inputs:
        Names of the key inputs, in key-bit order.
    """

    locked: Netlist
    original: Netlist
    correct_key: np.ndarray
    key_inputs: Tuple[str, ...]

    @property
    def key_length(self) -> int:
        return len(self.key_inputs)

    def evaluate_locked(self, inputs: np.ndarray, key: np.ndarray) -> np.ndarray:
        """Evaluate the locked circuit under a specific key.

        ``inputs`` is (m, num_original_inputs); ``key`` is (key_length,).
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.int8))
        key = np.asarray(key, dtype=np.int8)
        if key.shape != (self.key_length,):
            raise ValueError(
                f"key must have shape ({self.key_length},), got {key.shape}"
            )
        key_block = np.broadcast_to(key, (inputs.shape[0], self.key_length))
        full = np.concatenate([inputs, key_block], axis=1)
        return self.locked.evaluate(full)

    def oracle(self, inputs: np.ndarray) -> np.ndarray:
        """The unlocked-chip oracle of the SAT-attack threat model."""
        return self.original.evaluate(inputs)

    def key_is_functionally_correct(
        self,
        key: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        m: int = 4096,
        exhaustive_below: int = 14,
    ) -> bool:
        """Check a candidate key, exhaustively for small input counts."""
        n = self.original.num_inputs
        if n <= exhaustive_below:
            idx = np.arange(2**n, dtype=np.uint32)
            shifts = np.arange(n - 1, -1, -1, dtype=np.uint32)
            tests = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.int8)
        else:
            rng = np.random.default_rng() if rng is None else rng
            tests = rng.integers(0, 2, size=(m, n)).astype(np.int8)
        return bool(
            np.array_equal(self.evaluate_locked(tests, key), self.oracle(tests))
        )

    def wrong_key_error_rate(
        self,
        key: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        m: int = 4096,
    ) -> float:
        """Fraction of random inputs on which ``key`` corrupts some output."""
        rng = np.random.default_rng() if rng is None else rng
        tests = rng.integers(0, 2, size=(m, self.original.num_inputs)).astype(np.int8)
        got = self.evaluate_locked(tests, key)
        want = self.oracle(tests)
        return float(np.mean(np.any(got != want, axis=1)))


def random_lock(
    netlist: Netlist,
    key_length: int,
    rng: Optional[np.random.Generator] = None,
    key_prefix: str = "keyinput",
) -> LockedCircuit:
    """Lock ``netlist`` with ``key_length`` random XOR/XNOR key gates.

    Each key gate is inserted on a distinct gate-output wire; key bit value
    1 uses an XNOR (so the correct key is not all-zeros by construction).
    """
    if key_length < 1:
        raise ValueError("key_length must be at least 1")
    if key_length > netlist.num_gates:
        raise ValueError(
            f"cannot insert {key_length} key gates into {netlist.num_gates} gates"
        )
    rng = np.random.default_rng() if rng is None else rng
    # Lockable wires: gate outputs (cutting primary inputs is also done in
    # practice; gate outputs keep the construction simple and general).
    wires = [g.output for g in netlist.gates]
    chosen = rng.choice(len(wires), size=key_length, replace=False)
    chosen_wires = [wires[int(i)] for i in sorted(chosen)]
    key_bits = rng.integers(0, 2, size=key_length).astype(np.int8)

    key_inputs = tuple(f"{key_prefix}{i}" for i in range(key_length))
    rename: Dict[str, str] = {w: f"{w}__pre" for w in chosen_wires}

    new_gates: List[Gate] = []
    for gate in netlist.gates:
        out = rename.get(gate.output, gate.output)
        # Loads of a locked wire must read the key gate's output, i.e. the
        # *original* name; only the driver is renamed.
        new_gates.append(Gate(out, gate.gate_type, gate.inputs))
    for i, wire in enumerate(chosen_wires):
        gate_type = GateType.XNOR if key_bits[i] else GateType.XOR
        new_gates.append(Gate(wire, gate_type, (rename[wire], key_inputs[i])))

    locked = Netlist(
        inputs=tuple(netlist.inputs) + key_inputs,
        outputs=netlist.outputs,
        gates=new_gates,
        name=f"{netlist.name}_locked{key_length}",
    )
    return LockedCircuit(
        locked=locked,
        original=netlist,
        correct_key=key_bits,
        key_inputs=key_inputs,
    )

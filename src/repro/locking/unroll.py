"""Time-frame unrolling: the sequential SAT attack substrate.

A sequentially locked design with a *combinational* key (RLL on the core,
key shared across clock cycles) is attacked by unrolling ``T`` time frames
into one combinational circuit — frame t's next-state wires drive frame
t+1's state wires, the initial state is constant, and the key inputs are
shared — and then running the ordinary oracle-guided SAT attack on the
unrolled miter.  This is the standard reduction the sequential-attack
literature builds on, and it composes entirely from pieces this package
already has.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.locking.combinational import LockedCircuit, random_lock
from repro.locking.netlist import Gate, GateType, Netlist
from repro.locking.sequential_netlist import SequentialCircuit


@dataclasses.dataclass
class LockedSequentialCircuit:
    """A sequential circuit whose combinational core is RLL-locked."""

    locked_core: LockedCircuit  # core netlist locked; original = clean core
    sequential: SequentialCircuit  # the clean reference design
    key_inputs: Tuple[str, ...]
    correct_key: np.ndarray

    def step(
        self, state_bits: np.ndarray, input_bits: np.ndarray, key: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One cycle of the locked design under a key."""
        core_in = np.concatenate(
            [np.asarray(input_bits, np.int8), np.asarray(state_bits, np.int8)]
        )
        out = self.locked_core.evaluate_locked(core_in[None, :], key)[0]
        num_out = self.sequential.num_outputs
        return out[num_out:], out[:num_out]

    def run(self, input_words, key: np.ndarray):
        """Run the locked design from reset under ``key``."""
        state = self.sequential.initial_state.copy()
        outputs = []
        for word in input_words:
            state, out = self.step(state, word, key)
            outputs.append(out)
        return state, outputs


def lock_sequential(
    circuit: SequentialCircuit,
    key_length: int,
    rng: Optional[np.random.Generator] = None,
) -> LockedSequentialCircuit:
    """RLL-lock the combinational core of a sequential circuit."""
    rng = np.random.default_rng() if rng is None else rng
    locked_core = random_lock(circuit.core, key_length, rng, key_prefix="seqkey")
    return LockedSequentialCircuit(
        locked_core=locked_core,
        sequential=circuit,
        key_inputs=locked_core.key_inputs,
        correct_key=locked_core.correct_key,
    )


def unroll(
    locked: LockedSequentialCircuit,
    frames: int,
) -> LockedCircuit:
    """Unroll ``frames`` cycles into a combinational :class:`LockedCircuit`.

    The returned circuit's primary inputs are the concatenated per-frame
    inputs (frame-major); its outputs are the concatenated per-frame
    outputs; the key is shared across frames.  Its ``original`` is the
    unrolled *clean* design, so the standard SAT attack applies verbatim.
    """
    if frames < 1:
        raise ValueError("frames must be at least 1")
    seq = locked.sequential
    locked_unrolled = _unroll_netlist(
        locked.locked_core.locked,
        seq,
        frames,
        key_inputs=locked.key_inputs,
    )
    clean_unrolled = _unroll_netlist(seq.core, seq, frames, key_inputs=())
    return LockedCircuit(
        locked=locked_unrolled,
        original=clean_unrolled,
        correct_key=locked.correct_key,
        key_inputs=locked.key_inputs,
    )


def _unroll_netlist(
    core: Netlist,
    seq: SequentialCircuit,
    frames: int,
    key_inputs: Tuple[str, ...],
) -> Netlist:
    """Chain ``frames`` renamed copies of ``core``.

    ``core`` may be the clean core (no key inputs) or the locked core
    (key inputs last); key inputs are shared, everything else is renamed
    per frame.
    """
    num_in, num_out = seq.num_inputs, seq.num_outputs
    num_state = seq.num_state_bits
    plain_core_inputs = [s for s in core.inputs if s not in key_inputs]
    frame_inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []

    # Constant generators for the initial state, derived from the first
    # frame's first input wire.
    anchor = f"f0_{plain_core_inputs[0]}"
    const_one, const_zero = "__unroll_one", "__unroll_zero"
    state_feed = [
        const_one if bit else const_zero for bit in seq.initial_state
    ]

    for t in range(frames):
        prefix = f"f{t}_"
        copy = core.renamed(prefix, keep=key_inputs)
        rename_inputs = {}
        # Core inputs: primary inputs (fresh per frame) then state bits.
        for i in range(num_in):
            src = prefix + plain_core_inputs[i]
            frame_inputs.append(src)
        for b in range(num_state):
            state_sig = prefix + plain_core_inputs[num_in + b]
            rename_inputs[state_sig] = state_feed[b]
        # Re-map the copy's state-input reads onto the previous frame's
        # next-state outputs (or the constants for frame 0): emit BUFs.
        for old, new in rename_inputs.items():
            gates.append(Gate(old + "__fed", GateType.BUF, (new,)))
        replace = {old: old + "__fed" for old in rename_inputs}
        for gate in copy.gates:
            gates.append(
                Gate(
                    gate.output,
                    gate.gate_type,
                    tuple(replace.get(s, s) for s in gate.inputs),
                )
            )
        # Collect this frame's primary outputs and next-state wires.
        for j in range(num_out):
            outputs.append(prefix + core.outputs[j])
        state_feed = [
            prefix + core.outputs[num_out + b] for b in range(num_state)
        ]

    const_gates = [
        Gate(const_one, GateType.XNOR, (anchor, anchor)),
        Gate(const_zero, GateType.XOR, (anchor, anchor)),
    ]
    all_inputs = frame_inputs + list(key_inputs)
    return Netlist(
        all_inputs,
        outputs,
        const_gates + gates,
        name=f"{core.name}_unrolled{frames}",
    )

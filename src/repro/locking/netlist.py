"""Gate-level combinational netlists.

The IR for everything locking-related: a named DAG of Boolean gates with
primary inputs and outputs.  Evaluation is vectorised (NumPy bool arrays)
so oracle queries during SAT/AppSAT attacks are cheap.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class GateType(enum.Enum):
    """Supported gate primitives (matching .bench usage)."""

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"


_UNARY = {GateType.NOT, GateType.BUF}


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gate: output signal name, type, and fan-in signal names."""

    output: str
    gate_type: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.gate_type in _UNARY:
            if len(self.inputs) != 1:
                raise ValueError(
                    f"{self.gate_type.value} gate {self.output!r} needs exactly one input"
                )
        elif len(self.inputs) < 2:
            raise ValueError(
                f"{self.gate_type.value} gate {self.output!r} needs at least two inputs"
            )


class Netlist:
    """A combinational circuit as a DAG of gates.

    Parameters
    ----------
    inputs:
        Primary input signal names (order defines input-vector order).
    outputs:
        Primary output signal names (order defines output-vector order).
    gates:
        Gate list; any topological or non-topological order is accepted,
        a topological order is computed at construction.
    name:
        Circuit label (carried into .bench files).
    """

    def __init__(
        self,
        inputs: Sequence[str],
        outputs: Sequence[str],
        gates: Iterable[Gate],
        name: str = "circuit",
    ) -> None:
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self.gates: Tuple[Gate, ...] = tuple(gates)
        self.name = name
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError("duplicate primary input names")
        driver: Dict[str, Gate] = {}
        for gate in self.gates:
            if gate.output in driver:
                raise ValueError(f"signal {gate.output!r} driven twice")
            if gate.output in self.inputs:
                raise ValueError(f"signal {gate.output!r} is a primary input")
            driver[gate.output] = gate
        self._driver = driver
        known = set(self.inputs) | set(driver)
        for gate in self.gates:
            for src in gate.inputs:
                if src not in known:
                    raise ValueError(
                        f"gate {gate.output!r} reads undefined signal {src!r}"
                    )
        for out in self.outputs:
            if out not in known:
                raise ValueError(f"primary output {out!r} is undriven")
        self._topo_order = self._topological_order()

    # ------------------------------------------------------------------
    def _topological_order(self) -> List[Gate]:
        order: List[Gate] = []
        visited: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(signal: str, stack: List[str]) -> None:
            if signal in self.inputs or signal not in self._driver:
                return
            state = visited.get(signal)
            if state == 1:
                return
            if state == 0:
                cycle = " -> ".join(stack + [signal])
                raise ValueError(f"combinational cycle: {cycle}")
            visited[signal] = 0
            gate = self._driver[signal]
            for src in gate.inputs:
                visit(src, stack + [signal])
            visited[signal] = 1
            order.append(gate)

        for gate in self.gates:
            visit(gate.output, [])
        return order

    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def signals(self) -> List[str]:
        """All signal names: inputs then gate outputs in topological order."""
        return list(self.inputs) + [g.output for g in self._topo_order]

    def depth(self) -> int:
        """Logic depth: the longest input-to-output gate path.

        The ``d`` of the AC^0 analysis in Section III of the paper (with
        the caveat that AC^0 assumes unbounded fan-in; our gates mostly
        have fan-in 2, so this is the circuit-depth upper bound).
        """
        level: Dict[str, int] = {name: 0 for name in self.inputs}
        for gate in self._topo_order:
            level[gate.output] = 1 + max(level[s] for s in gate.inputs)
        if not self.gates:
            return 0
        return max(level[o] for o in self.outputs)

    def size(self) -> int:
        """Gate count (the 'size' parameter of circuit-class bounds)."""
        return self.num_gates

    # ------------------------------------------------------------------
    def evaluate(self, input_bits: np.ndarray) -> np.ndarray:
        """Evaluate on a batch of input vectors.

        ``input_bits`` is ``(m, num_inputs)`` of {0,1}; returns
        ``(m, num_outputs)`` of {0,1} (int8).  A single vector is accepted
        and returns a single row.
        """
        x = np.asarray(input_bits)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self.num_inputs:
            raise ValueError(
                f"{self.name} has {self.num_inputs} inputs, got {x.shape[1]}"
            )
        values: Dict[str, np.ndarray] = {
            name: x[:, i].astype(bool) for i, name in enumerate(self.inputs)
        }
        for gate in self._topo_order:
            values[gate.output] = _apply_gate(gate.gate_type, [values[s] for s in gate.inputs])
        out = np.stack([values[o] for o in self.outputs], axis=1).astype(np.int8)
        return out[0] if single else out

    def evaluate_all_signals(self, input_bits: np.ndarray) -> Dict[str, np.ndarray]:
        """Evaluate and return every internal signal (for debugging/attacks)."""
        x = np.atleast_2d(np.asarray(input_bits))
        values: Dict[str, np.ndarray] = {
            name: x[:, i].astype(bool) for i, name in enumerate(self.inputs)
        }
        for gate in self._topo_order:
            values[gate.output] = _apply_gate(gate.gate_type, [values[s] for s in gate.inputs])
        return {k: v.astype(np.int8) for k, v in values.items()}

    # ------------------------------------------------------------------
    def with_inputs_fixed(self, assignment: Dict[str, int]) -> "Netlist":
        """Partially evaluate: replace some primary inputs with constants.

        Constants are modelled by rewriting each fixed input i as a BUF of
        a fresh XNOR(i', i') = 1 / XOR trick-free approach: we instead
        substitute during evaluation by adding constant-generator gates.
        """
        for name in assignment:
            if name not in self.inputs:
                raise ValueError(f"{name!r} is not a primary input")
        remaining = [i for i in self.inputs if i not in assignment]
        if not remaining:
            raise ValueError("cannot fix every input; keep at least one free")
        anchor = remaining[0]
        const_gates: List[Gate] = []
        # one = anchor XNOR anchor, zero = anchor XOR anchor.
        one_sig, zero_sig = "__const_one", "__const_zero"
        need_one = any(v == 1 for v in assignment.values())
        need_zero = any(v == 0 for v in assignment.values())
        if need_one:
            const_gates.append(Gate(one_sig, GateType.XNOR, (anchor, anchor)))
        if need_zero:
            const_gates.append(Gate(zero_sig, GateType.XOR, (anchor, anchor)))
        rename = {
            name: (one_sig if value else zero_sig)
            for name, value in assignment.items()
        }
        new_gates = const_gates + [
            Gate(
                g.output,
                g.gate_type,
                tuple(rename.get(s, s) for s in g.inputs),
            )
            for g in self.gates
        ]
        new_outputs = tuple(rename.get(o, o) for o in self.outputs)
        return Netlist(remaining, new_outputs, new_gates, name=self.name)

    def renamed(self, prefix: str, keep: Optional[Iterable[str]] = None) -> "Netlist":
        """A copy with every signal (except ``keep``) prefixed.

        Used to build miters from two copies of the same circuit.
        """
        keep_set = set(keep or ())

        def rn(s: str) -> str:
            return s if s in keep_set else prefix + s

        gates = [
            Gate(rn(g.output), g.gate_type, tuple(rn(s) for s in g.inputs))
            for g in self.gates
        ]
        return Netlist(
            [rn(i) for i in self.inputs],
            [rn(o) for o in self.outputs],
            gates,
            name=f"{prefix}{self.name}",
        )

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, gates={self.num_gates})"
        )


def _apply_gate(gate_type: GateType, fanins: List[np.ndarray]) -> np.ndarray:
    if gate_type is GateType.NOT:
        return ~fanins[0]
    if gate_type is GateType.BUF:
        return fanins[0]
    acc = fanins[0]
    if gate_type in (GateType.AND, GateType.NAND):
        for v in fanins[1:]:
            acc = acc & v
        return ~acc if gate_type is GateType.NAND else acc
    if gate_type in (GateType.OR, GateType.NOR):
        for v in fanins[1:]:
            acc = acc | v
        return ~acc if gate_type is GateType.NOR else acc
    if gate_type in (GateType.XOR, GateType.XNOR):
        for v in fanins[1:]:
            acc = acc ^ v
        return ~acc if gate_type is GateType.XNOR else acc
    raise AssertionError(f"unhandled gate type {gate_type}")

"""Reader/writer for the ISCAS ``.bench`` netlist format.

The format the logic-locking literature distributes benchmarks in::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

from repro.locking.netlist import Gate, GateType, Netlist

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^\s=]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*?)\s*\)$"
)


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a :class:`Netlist`."""
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _INPUT_RE.match(line)
        if m:
            inputs.append(m.group(1))
            continue
        m = _OUTPUT_RE.match(line)
        if m:
            outputs.append(m.group(1))
            continue
        m = _GATE_RE.match(line)
        if m:
            out, type_name, arg_text = m.groups()
            try:
                gate_type = GateType[type_name.upper()]
            except KeyError as exc:
                raise ValueError(
                    f"line {lineno}: unknown gate type {type_name!r}"
                ) from exc
            args = tuple(a.strip() for a in arg_text.split(",") if a.strip())
            gates.append(Gate(out, gate_type, args))
            continue
        raise ValueError(f"line {lineno}: cannot parse {raw!r}")
    return Netlist(inputs, outputs, gates, name=name)


def load_bench(path: Union[str, Path]) -> Netlist:
    """Load a ``.bench`` file."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialise a :class:`Netlist` to ``.bench`` text."""
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({i})" for i in netlist.inputs)
    lines.extend(f"OUTPUT({o})" for o in netlist.outputs)
    for gate in netlist.gates:
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write a ``.bench`` file."""
    Path(path).write_text(write_bench(netlist))

"""Quality metrics for locking schemes.

The locking literature's standard figures of merit, used to compare RLL
against the point-function schemes:

* **output corruption** — how wrong is the circuit under a random wrong
  key?  RLL corrupts about half the input space per wrong key; SARLock /
  Anti-SAT corrupt a 2^-|key| sliver (which is *why* they resist the exact
  SAT attack and *why* AppSAT doesn't care).
* **wrong-key coverage** — the fraction of wrong keys that corrupt at
  least one sampled input (keys indistinguishable from the correct one on
  the sample are effective key collisions).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.locking.combinational import LockedCircuit


@dataclasses.dataclass
class CorruptionReport:
    """Output-corruption statistics over sampled wrong keys."""

    mean_error_rate: float  # avg over wrong keys of Pr_x[output wrong]
    min_error_rate: float
    max_error_rate: float
    wrong_key_coverage: float  # fraction of wrong keys with any error
    keys_sampled: int
    inputs_per_key: int

    def summary(self) -> str:
        return (
            f"corruption over {self.keys_sampled} wrong keys: "
            f"mean {self.mean_error_rate:.4f}, min {self.min_error_rate:.4f}, "
            f"max {self.max_error_rate:.4f}; coverage "
            f"{self.wrong_key_coverage:.2%}"
        )


def corruption_report(
    locked: LockedCircuit,
    keys_sampled: int = 32,
    inputs_per_key: int = 1024,
    rng: Optional[np.random.Generator] = None,
    exhaustive_inputs_below: int = 12,
) -> CorruptionReport:
    """Measure output corruption over random wrong keys.

    For circuits with few primary inputs the input space is enumerated
    exhaustively, making the per-key error rates exact.
    """
    if keys_sampled < 1 or inputs_per_key < 1:
        raise ValueError("sample counts must be positive")
    rng = np.random.default_rng() if rng is None else rng
    n = locked.original.num_inputs
    if n <= exhaustive_inputs_below:
        idx = np.arange(2**n, dtype=np.uint32)
        shifts = np.arange(n - 1, -1, -1, dtype=np.uint32)
        inputs = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.int8)
    else:
        inputs = rng.integers(0, 2, size=(inputs_per_key, n)).astype(np.int8)
    reference = locked.oracle(inputs)

    error_rates = []
    covered = 0
    seen = 0
    attempts = 0
    while seen < keys_sampled and attempts < 50 * keys_sampled:
        attempts += 1
        key = rng.integers(0, 2, size=locked.key_length).astype(np.int8)
        if np.array_equal(key, locked.correct_key):
            continue
        seen += 1
        got = locked.evaluate_locked(inputs, key)
        rate = float(np.mean(np.any(got != reference, axis=1)))
        error_rates.append(rate)
        covered += rate > 0
    if not error_rates:
        raise RuntimeError("could not sample any wrong key (key space too small?)")
    rates = np.asarray(error_rates)
    return CorruptionReport(
        mean_error_rate=float(rates.mean()),
        min_error_rate=float(rates.min()),
        max_error_rate=float(rates.max()),
        wrong_key_coverage=covered / len(error_rates),
        keys_sampled=len(error_rates),
        inputs_per_key=inputs.shape[0],
    )

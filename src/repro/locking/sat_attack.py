"""The oracle-guided SAT attack on combinational logic locking.

The attack of Subramanyan et al. that [4], [5] build on: repeatedly ask a
SAT solver for a *distinguishing input pattern* (DIP) — an input on which
two different keys make the locked circuit disagree — query the unlocked
oracle on it, and constrain both key copies to reproduce the observed
output.  When no DIP exists, any remaining consistent key is functionally
correct; the attack is exact identification in Rivest's sense (the
distinction Section IV-A of the paper turns on).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.locking.cnf import CNF, gate_clauses, tseitin_encode
from repro.locking.combinational import LockedCircuit
from repro.locking.netlist import GateType, Netlist
from repro.locking.solver import SATSolver, Satisfiability


@dataclasses.dataclass
class SATAttackResult:
    """Outcome of a SAT attack run."""

    key: Optional[np.ndarray]
    success: bool
    iterations: int  # number of DIPs used
    dips: List[np.ndarray]
    oracle_queries: int

    def summary(self) -> str:
        status = "exact key recovered" if self.success else "attack incomplete"
        return f"{status} after {self.iterations} DIPs ({self.oracle_queries} oracle queries)"


class _MiterEngine:
    """Shared incremental-miter machinery for SATAttack and AppSAT."""

    def __init__(self, target: LockedCircuit) -> None:
        self.target = target
        locked = target.locked
        self.plain_inputs: Tuple[str, ...] = tuple(
            i for i in locked.inputs if i not in target.key_inputs
        )
        self.key_inputs = target.key_inputs
        self.cnf = CNF()
        self.solver: Optional[SATSolver] = None

        # Shared variables: plain inputs, key copy A, key copy B.
        self.input_vars = {name: self.cnf.new_var() for name in self.plain_inputs}
        self.key_a_vars = [self.cnf.new_var() for _ in self.key_inputs]
        self.key_b_vars = [self.cnf.new_var() for _ in self.key_inputs]

        out_a = self._encode_copy("mA_", self.input_vars, self.key_a_vars)
        out_b = self._encode_copy("mB_", self.input_vars, self.key_b_vars)

        # Miter: act -> (some output differs).
        self.act_var = self.cnf.new_var()
        diff_vars = []
        for a, b in zip(out_a, out_b):
            d = self.cnf.new_var()
            self.cnf.extend(gate_clauses(GateType.XOR, d, [a, b]))
            diff_vars.append(d)
        self.cnf.add_clause([-self.act_var] + diff_vars)
        self._copy_counter = 0

    # ------------------------------------------------------------------
    def _encode_copy(
        self,
        prefix: str,
        input_vars: Dict[str, int],
        key_vars: List[int],
    ) -> List[int]:
        """Encode one renamed copy of the locked circuit; returns output vars."""
        locked = self.target.locked
        copy = locked.renamed(prefix)
        var_map: Dict[str, int] = {}
        for name in self.plain_inputs:
            var_map[prefix + name] = input_vars[name]
        for key_name, var in zip(self.key_inputs, key_vars):
            var_map[prefix + key_name] = var
        var_map = tseitin_encode(copy, self.cnf, var_map)
        return [var_map[prefix + o] for o in locked.outputs]

    def _sync_solver(self) -> SATSolver:
        """(Re)build the incremental solver lazily; append new clauses."""
        if self.solver is None:
            self.solver = SATSolver(self.cnf.clauses, self.cnf.num_vars)
            self._clauses_loaded = len(self.cnf.clauses)
        else:
            for clause in self.cnf.clauses[self._clauses_loaded :]:
                self.solver.add_clause(clause)
            self._clauses_loaded = len(self.cnf.clauses)
        return self.solver

    # ------------------------------------------------------------------
    def find_dip(self) -> Optional[np.ndarray]:
        """A distinguishing input pattern, or None when keys are pinned."""
        solver = self._sync_solver()
        status, model = solver.solve(assumptions=[self.act_var])
        if status is Satisfiability.UNSAT:
            return None
        assert model is not None
        return np.array(
            [int(model[self.input_vars[name]]) for name in self.plain_inputs],
            dtype=np.int8,
        )

    def add_io_constraint(self, dip: np.ndarray, outputs: np.ndarray) -> None:
        """Constrain both key copies to reproduce oracle(dip) = outputs."""
        self._copy_counter += 1
        for tag, key_vars in (("A", self.key_a_vars), ("B", self.key_b_vars)):
            prefix = f"c{self._copy_counter}{tag}_"
            in_vars = {name: self.cnf.new_var() for name in self.plain_inputs}
            out_vars = self._encode_copy(prefix, in_vars, key_vars)
            for name, bit in zip(self.plain_inputs, dip):
                var = in_vars[name]
                self.cnf.add_clause([var if bit else -var])
            for var, bit in zip(out_vars, outputs):
                self.cnf.add_clause([var if bit else -var])

    def extract_key(self) -> Optional[np.ndarray]:
        """Any key consistent with all recorded IO constraints."""
        solver = self._sync_solver()
        status, model = solver.solve(assumptions=[-self.act_var])
        if status is Satisfiability.UNSAT:
            return None
        assert model is not None
        return np.array([int(model[v]) for v in self.key_a_vars], dtype=np.int8)


class SATAttack:
    """Exact oracle-guided SAT attack.

    Parameters
    ----------
    max_iterations:
        Safety cap on the number of DIP rounds (2^key_length always
        suffices; real runs finish in far fewer).
    """

    def __init__(self, max_iterations: int = 10_000) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.max_iterations = max_iterations

    def run(self, target: LockedCircuit) -> SATAttackResult:
        """Run the attack against a locked circuit with oracle access."""
        engine = _MiterEngine(target)
        dips: List[np.ndarray] = []
        oracle_queries = 0
        for _ in range(self.max_iterations):
            dip = engine.find_dip()
            if dip is None:
                key = engine.extract_key()
                return SATAttackResult(
                    key=key,
                    success=key is not None,
                    iterations=len(dips),
                    dips=dips,
                    oracle_queries=oracle_queries,
                )
            outputs = target.oracle(dip[None, :])[0]
            oracle_queries += 1
            engine.add_io_constraint(dip, outputs)
            dips.append(dip)
        return SATAttackResult(
            key=None,
            success=False,
            iterations=len(dips),
            dips=dips,
            oracle_queries=oracle_queries,
        )

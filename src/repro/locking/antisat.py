"""Anti-SAT locking.

The other canonical SAT-attack countermeasure besides SARLock: two
complementary blocks ``g(x XOR k_a)`` and ``NOT g(x XOR k_b)`` are ANDed
into a flip signal.  With the correct key (k_a = k_b = k*) the two blocks
are complementary for every input and the flip is constantly 0; with a
wrong key the flip fires on a small input set (for g = AND, exactly the
inputs matching one pattern), so each DIP eliminates only a few keys and
the exact SAT attack needs exponentially many iterations — while AppSAT
again settles for an approximate key immediately.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.locking.combinational import LockedCircuit
from repro.locking.netlist import Gate, GateType, Netlist


def antisat(
    netlist: Netlist,
    key_length: int,
    rng: Optional[np.random.Generator] = None,
    key_prefix: str = "keyinput",
) -> LockedCircuit:
    """Apply an Anti-SAT block (g = AND) over the first ``key_length`` inputs.

    The public key input vector is the concatenation (k_a, k_b), so the
    locked circuit has ``2 * key_length`` key bits; the correct key sets
    k_a = k_b = k* for a random secret k*.
    """
    if key_length < 1:
        raise ValueError("key_length must be at least 1")
    if key_length > netlist.num_inputs:
        raise ValueError(
            f"key_length {key_length} exceeds the {netlist.num_inputs} inputs"
        )
    rng = np.random.default_rng() if rng is None else rng
    secret = rng.integers(0, 2, size=key_length).astype(np.int8)
    correct_key = np.concatenate([secret, secret])
    key_a = tuple(f"{key_prefix}{i}" for i in range(key_length))
    key_b = tuple(f"{key_prefix}{key_length + i}" for i in range(key_length))
    watched = netlist.inputs[:key_length]

    gates: List[Gate] = list(netlist.gates)
    # Block A: g(x xor k_a) with g = AND.
    a_bits = []
    for i, (x_sig, k_sig) in enumerate(zip(watched, key_a)):
        sig = f"__as_a{i}"
        gates.append(Gate(sig, GateType.XOR, (x_sig, k_sig)))
        a_bits.append(sig)
    block_a = "__as_ga" if key_length > 1 else a_bits[0]
    if key_length > 1:
        gates.append(Gate(block_a, GateType.AND, tuple(a_bits)))

    # Block B: NOT g(x xor k_b).
    b_bits = []
    for i, (x_sig, k_sig) in enumerate(zip(watched, key_b)):
        sig = f"__as_b{i}"
        gates.append(Gate(sig, GateType.XOR, (x_sig, k_sig)))
        b_bits.append(sig)
    if key_length > 1:
        gates.append(Gate("__as_gb", GateType.NAND, tuple(b_bits)))
        block_b = "__as_gb"
    else:
        gates.append(Gate("__as_gb", GateType.NOT, (b_bits[0],)))
        block_b = "__as_gb"

    gates.append(Gate("__as_flip", GateType.AND, (block_a, block_b)))
    first_out = netlist.outputs[0]
    flipped = f"{first_out}__as"
    gates.append(Gate(flipped, GateType.XOR, (first_out, "__as_flip")))
    outputs = (flipped,) + tuple(netlist.outputs[1:])

    locked = Netlist(
        inputs=tuple(netlist.inputs) + key_a + key_b,
        outputs=outputs,
        gates=gates,
        name=f"{netlist.name}_antisat{key_length}",
    )
    return LockedCircuit(
        locked=locked,
        original=netlist,
        correct_key=correct_key,
        key_inputs=key_a + key_b,
    )

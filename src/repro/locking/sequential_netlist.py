"""Gate-level sequential circuits: a combinational core plus flip-flops.

This closes the loop between the behavioural FSM world
(:mod:`repro.automata`) and the netlist world: a Mealy machine can be
*synthesised* to gates (binary state encoding + two-level next-state and
output logic), simulated cycle by cycle, and *extracted* back by state
exploration — which is how the paper's Section V-B attack surface looks
on a real locked chip: the attacker drives primary inputs, observes
outputs, and L* reconstructs the machine without ever seeing flip-flops.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.mealy import MealyMachine
from repro.locking.netlist import Netlist
from repro.locking.synthesis import synthesize_truth_table

Symbol = Hashable


class SequentialCircuit:
    """A synchronous sequential circuit.

    The combinational ``core`` computes, from the primary inputs and the
    current state bits, the outputs and the next state bits:

        core inputs  = [primary inputs..., state bits...]
        core outputs = [primary outputs..., next-state bits...]

    A reset drives the registers to ``initial_state``.
    """

    def __init__(
        self,
        core: Netlist,
        num_inputs: int,
        num_outputs: int,
        num_state_bits: int,
        initial_state: Sequence[int],
    ) -> None:
        if num_inputs < 1 or num_outputs < 1 or num_state_bits < 1:
            raise ValueError("need at least one input, output, and state bit")
        if core.num_inputs != num_inputs + num_state_bits:
            raise ValueError(
                f"core has {core.num_inputs} inputs, expected "
                f"{num_inputs}+{num_state_bits}"
            )
        if core.num_outputs != num_outputs + num_state_bits:
            raise ValueError(
                f"core has {core.num_outputs} outputs, expected "
                f"{num_outputs}+{num_state_bits}"
            )
        self.core = core
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.num_state_bits = num_state_bits
        self.initial_state = np.asarray(initial_state, dtype=np.int8)
        if self.initial_state.shape != (num_state_bits,):
            raise ValueError("initial_state length must equal num_state_bits")

    # ------------------------------------------------------------------
    def step(
        self, state_bits: np.ndarray, input_bits: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One clock cycle: (state, inputs) -> (next state, outputs)."""
        state_bits = np.asarray(state_bits, dtype=np.int8)
        input_bits = np.asarray(input_bits, dtype=np.int8)
        core_in = np.concatenate([input_bits, state_bits])
        core_out = self.core.evaluate(core_in)
        outputs = core_out[: self.num_outputs]
        next_state = core_out[self.num_outputs :]
        return next_state, outputs

    def run(
        self, input_words: Sequence[np.ndarray]
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Apply a sequence of input vectors from reset; return final
        state bits and the per-cycle output vectors."""
        state = self.initial_state.copy()
        outputs = []
        for word in input_words:
            state, out = self.step(state, np.asarray(word, dtype=np.int8))
            outputs.append(out)
        return state, outputs

    # ------------------------------------------------------------------
    def extract_mealy(self, max_states: int = 4096) -> MealyMachine:
        """Recover the reachable Mealy machine by state-space exploration.

        Input symbols are tuples of input bits; output symbols are tuples
        of output bits.  This is the white-box reference extraction used
        to validate the black-box L* attack.
        """
        from collections import deque

        input_symbols = [
            tuple((idx >> (self.num_inputs - 1 - b)) & 1 for b in range(self.num_inputs))
            for idx in range(2**self.num_inputs)
        ]
        index: Dict[Tuple[int, ...], int] = {}
        transitions: List[Dict[Symbol, Tuple[int, Symbol]]] = []
        outputs_seen = set()

        def state_id(bits: Tuple[int, ...]) -> int:
            if bits not in index:
                if len(index) >= max_states:
                    raise RuntimeError(
                        f"state explosion: more than {max_states} states"
                    )
                index[bits] = len(index)
                transitions.append({})
            return index[bits]

        start_bits = tuple(int(b) for b in self.initial_state)
        queue = deque([start_bits])
        state_id(start_bits)
        visited = {start_bits}
        while queue:
            bits = queue.popleft()
            sid = index[bits]
            for symbol in input_symbols:
                next_state, out = self.step(
                    np.asarray(bits, dtype=np.int8),
                    np.asarray(symbol, dtype=np.int8),
                )
                nbits = tuple(int(b) for b in next_state)
                out_symbol = tuple(int(b) for b in out)
                outputs_seen.add(out_symbol)
                nid = state_id(nbits)
                transitions[sid][symbol] = (nid, out_symbol)
                if nbits not in visited:
                    visited.add(nbits)
                    queue.append(nbits)
        return MealyMachine(
            input_symbols, sorted(outputs_seen), transitions, start=0
        )

    def __repr__(self) -> str:
        return (
            f"SequentialCircuit(inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, state_bits={self.num_state_bits}, "
            f"core_gates={self.core.num_gates})"
        )


def synthesize_mealy(
    machine: MealyMachine,
    name: str = "fsm",
) -> SequentialCircuit:
    """Synthesise a Mealy machine to a gate-level sequential circuit.

    Requirements: the input alphabet must be exactly the 2^i bit-tuples of
    some width i (use :func:`encode_alphabet` first otherwise); output
    symbols are assigned a dense binary code.  States get a dense binary
    encoding with the start state at code 0.
    """
    in_symbols = sorted(machine.input_alphabet)
    num_in = max(1, math.ceil(math.log2(max(2, len(in_symbols)))))
    expected = [
        tuple((idx >> (num_in - 1 - b)) & 1 for b in range(num_in))
        for idx in range(2**num_in)
    ]
    if in_symbols != expected:
        raise ValueError(
            "input alphabet must be the full set of bit-tuples of some "
            "width; re-encode symbols first (see encode_alphabet)"
        )

    out_symbols = sorted(set(machine.output_alphabet))
    num_out = max(1, math.ceil(math.log2(max(2, len(out_symbols)))))
    out_code = {sym: idx for idx, sym in enumerate(out_symbols)}

    # State encoding: start state first.
    order = [machine.start] + [
        s for s in range(machine.num_states) if s != machine.start
    ]
    state_code = {s: idx for idx, s in enumerate(order)}
    num_state = max(1, math.ceil(math.log2(max(2, machine.num_states))))

    # Build the core truth table over (inputs, state bits).
    total_in = num_in + num_state
    rows = 2**total_in
    table = np.zeros((rows, num_out + num_state), dtype=np.int8)
    for row in range(rows):
        bits = [(row >> (total_in - 1 - b)) & 1 for b in range(total_in)]
        in_bits = tuple(bits[:num_in])
        state_idx = 0
        for b in bits[num_in:]:
            state_idx = (state_idx << 1) | b
        if state_idx < machine.num_states:
            state = order[state_idx]
            next_state, out_sym = machine.transitions[state][in_bits]
            next_code = state_code[next_state]
            out_idx = out_code[out_sym]
        else:
            # Unreachable encodings: park in the start state, output 0.
            next_code = 0
            out_idx = 0
        for b in range(num_out):
            table[row, b] = (out_idx >> (num_out - 1 - b)) & 1
        for b in range(num_state):
            table[row, num_out + b] = (next_code >> (num_state - 1 - b)) & 1

    input_names = [f"in{b}" for b in range(num_in)] + [
        f"state{b}" for b in range(num_state)
    ]
    output_names = [f"out{b}" for b in range(num_out)] + [
        f"next{b}" for b in range(num_state)
    ]
    core = synthesize_truth_table(
        table, input_names, output_names, name=f"{name}_core"
    )
    return SequentialCircuit(
        core,
        num_inputs=num_in,
        num_outputs=num_out,
        num_state_bits=num_state,
        initial_state=[0] * num_state,
    )


def encode_alphabet(machine: MealyMachine) -> MealyMachine:
    """Re-encode an arbitrary input alphabet as full-width bit tuples.

    The alphabet is padded to the next power of two by self-loop symbols
    that emit the machine's first output symbol (a conventional 'unused
    opcode' treatment), so :func:`synthesize_mealy` accepts the result.
    """
    symbols = sorted(machine.input_alphabet, key=repr)
    width = max(1, math.ceil(math.log2(max(2, len(symbols)))))
    codes = [
        tuple((idx >> (width - 1 - b)) & 1 for b in range(width))
        for idx in range(2**width)
    ]
    default_out = machine.output_alphabet[0]
    transitions: List[Dict[Symbol, Tuple[int, Symbol]]] = []
    for state_table in machine.transitions:
        table: Dict[Symbol, Tuple[int, Symbol]] = {}
        for idx, code in enumerate(codes):
            if idx < len(symbols):
                table[code] = state_table[symbols[idx]]
            else:
                table[code] = (machine.start, default_out)
        transitions.append(table)
    # Unused codes self-loop... to the start state; keep behaviour of used
    # codes identical.
    return MealyMachine(
        codes, machine.output_alphabet, transitions, start=machine.start
    )
